//! Per-tenant identity and admission limits.
//!
//! A [`TenantRegistry`] maps tenant names to API keys and limits.
//! Limits are enforced **per tenant, across all of that tenant's
//! connections**: one [`TenantCell`] is shared by every connection
//! that authenticated as the tenant, so the in-flight count and the
//! token bucket see the tenant's aggregate traffic, not one socket's.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Admission limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLimits {
    /// Jobs the tenant may have in flight (accepted, response not yet
    /// delivered) across all its connections.
    pub max_inflight: u32,
    /// Sustained submissions per second, `0.0` for unlimited. Enforced
    /// by a token bucket refilled continuously.
    pub rate_per_sec: f64,
    /// Bucket depth: how far above the sustained rate a burst may go.
    pub burst: u32,
}

impl Default for TenantLimits {
    fn default() -> Self {
        TenantLimits {
            max_inflight: 4096,
            rate_per_sec: 0.0,
            burst: 256,
        }
    }
}

/// Why a tenant-level admission check refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantRefusal {
    /// Token bucket empty; a token accrues in roughly `retry_after`,
    /// clamped to [`MAX_RETRY_AFTER`].
    RateLimited { retry_after: Duration },
    /// At [`TenantLimits::max_inflight`]; capacity frees when
    /// responses are delivered. When a tenant is at both limits this
    /// refusal wins: retrying on a timer is pointless while every
    /// slot is occupied.
    InflightFull,
}

/// Ceiling on [`TenantRefusal::RateLimited`]'s `retry_after`. A
/// pathologically tiny [`TenantLimits::rate_per_sec`] (down to
/// `f64::MIN_POSITIVE`) makes the deficit division produce hours,
/// infinities, or NaN — all of which `Duration::from_secs_f64` would
/// panic on or faithfully report as a useless multi-year backoff.
/// Clamping here keeps the advice honest: "not before an hour" is as
/// much as a retry hint can usefully say.
pub const MAX_RETRY_AFTER: Duration = Duration::from_secs(3600);

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// One authenticated tenant's shared admission state.
pub struct TenantCell {
    name: String,
    key: u64,
    limits: TenantLimits,
    inflight: AtomicU64,
    bucket: Mutex<Bucket>,
}

// The API key stays out of Debug output on purpose.
impl std::fmt::Debug for TenantCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantCell")
            .field("name", &self.name)
            .field("limits", &self.limits)
            .field("inflight", &self.inflight())
            .finish()
    }
}

impl TenantCell {
    fn new(name: String, key: u64, limits: TenantLimits) -> Self {
        TenantCell {
            name,
            key,
            limits,
            inflight: AtomicU64::new(0),
            bucket: Mutex::new(Bucket {
                tokens: limits.burst.max(1) as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// The tenant's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's limits as registered.
    pub fn limits(&self) -> TenantLimits {
        self.limits
    }

    /// Jobs currently in flight for this tenant.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Claims one admission slot: takes an in-flight slot, then
    /// charges the token bucket. On `Ok(())` the caller **must** pair
    /// the claim with [`TenantCell::end_job`] once the job's terminal
    /// response is delivered.
    ///
    /// The in-flight cap is checked first so a refusal at the cap
    /// never touches the bucket — there is no token refund path, and
    /// therefore no refund/refill race to under-admit a bursty
    /// tenant. A rate refusal releases the slot it just claimed;
    /// releasing an `AcqRel` increment is exact, unlike refunding a
    /// token into a bucket a concurrent refill may have topped up.
    pub fn begin_job(&self) -> Result<(), TenantRefusal> {
        // The CAS loop (rather than optimistic fetch_add + rollback)
        // means `inflight` can never transiently exceed the cap:
        // a reader always sees `inflight() <= max_inflight`, and a
        // peer arriving at exactly the cap is never refused by a
        // doomed increment that was about to roll back.
        let cap = u64::from(self.limits.max_inflight);
        let mut seen = self.inflight.load(Ordering::Relaxed);
        loop {
            if seen >= cap {
                return Err(TenantRefusal::InflightFull);
            }
            match self.inflight.compare_exchange_weak(
                seen,
                seen + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
        if self.limits.rate_per_sec > 0.0 {
            let mut bucket = self.bucket.lock().unwrap_or_else(PoisonError::into_inner);
            let now = Instant::now();
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * self.limits.rate_per_sec)
                .min(self.limits.burst.max(1) as f64);
            bucket.last_refill = now;
            if bucket.tokens < 1.0 {
                let deficit = 1.0 - bucket.tokens;
                drop(bucket);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                // `deficit / rate` overflows Duration's range (or
                // divides to inf/NaN) for tiny rates; clamp rather
                // than panic.
                let secs = deficit / self.limits.rate_per_sec;
                let retry_after = if secs.is_finite() && secs < MAX_RETRY_AFTER.as_secs_f64() {
                    Duration::from_secs_f64(secs.max(0.001))
                } else {
                    MAX_RETRY_AFTER
                };
                return Err(TenantRefusal::RateLimited { retry_after });
            }
            bucket.tokens -= 1.0;
        }
        Ok(())
    }

    /// Releases the in-flight slot claimed by [`TenantCell::begin_job`].
    pub fn end_job(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Why a `Hello` was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// No tenant registered under the presented name.
    UnknownTenant,
    /// The name exists but the key does not match.
    BadKey,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::UnknownTenant => write!(f, "unknown tenant"),
            AuthError::BadKey => write!(f, "bad API key"),
        }
    }
}

/// The tenant directory a [`crate::server::WireServer`] authenticates
/// against. Registration is allowed while the server runs.
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<HashMap<String, Arc<TenantCell>>>,
}

impl TenantRegistry {
    /// An empty registry (every `Hello` is refused until tenants are
    /// registered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a tenant under `name` with API `key`.
    pub fn register(&self, name: &str, key: u64, limits: TenantLimits) -> Arc<TenantCell> {
        let cell = Arc::new(TenantCell::new(name.to_string(), key, limits));
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    /// Authenticates a `Hello`; constant shape regardless of which
    /// check fails so the reply doesn't oracle tenant existence any
    /// more than its typed variant admits.
    pub fn authenticate(&self, name: &str, key: u64) -> Result<Arc<TenantCell>, AuthError> {
        let tenants = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        let cell = tenants.get(name).ok_or(AuthError::UnknownTenant)?;
        if cell.key != key {
            return Err(AuthError::BadKey);
        }
        Ok(Arc::clone(cell))
    }

    /// Registered tenant names, sorted (for stats rendering).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authenticate_checks_name_and_key() {
        let registry = TenantRegistry::new();
        registry.register("alice", 42, TenantLimits::default());
        assert!(registry.authenticate("alice", 42).is_ok());
        assert_eq!(
            registry.authenticate("alice", 41).unwrap_err(),
            AuthError::BadKey
        );
        assert_eq!(
            registry.authenticate("bob", 42).unwrap_err(),
            AuthError::UnknownTenant
        );
    }

    #[test]
    fn inflight_cap_is_claimed_and_released() {
        let registry = TenantRegistry::new();
        let cell = registry.register(
            "t",
            1,
            TenantLimits {
                max_inflight: 2,
                ..Default::default()
            },
        );
        cell.begin_job().unwrap();
        cell.begin_job().unwrap();
        assert_eq!(cell.begin_job().unwrap_err(), TenantRefusal::InflightFull);
        cell.end_job();
        cell.begin_job().unwrap();
        assert_eq!(cell.inflight(), 2);
    }

    #[test]
    fn token_bucket_limits_sustained_rate() {
        let registry = TenantRegistry::new();
        let cell = registry.register(
            "t",
            1,
            TenantLimits {
                max_inflight: 100,
                rate_per_sec: 5.0,
                burst: 2,
            },
        );
        cell.begin_job().unwrap();
        cell.begin_job().unwrap();
        let refusal = cell.begin_job().unwrap_err();
        let TenantRefusal::RateLimited { retry_after } = refusal else {
            panic!("expected rate refusal, got {refusal:?}");
        };
        assert!(retry_after > Duration::ZERO);
        assert!(retry_after <= Duration::from_millis(250));
        // Tokens accrue with time: after a full token's worth of wait
        // the tenant is admitted again.
        std::thread::sleep(Duration::from_millis(220));
        cell.begin_job().unwrap();
    }

    #[test]
    fn refused_inflight_does_not_eat_a_token() {
        let registry = TenantRegistry::new();
        let cell = registry.register(
            "t",
            1,
            TenantLimits {
                max_inflight: 1,
                rate_per_sec: 1000.0,
                burst: 2,
            },
        );
        cell.begin_job().unwrap();
        assert_eq!(cell.begin_job().unwrap_err(), TenantRefusal::InflightFull);
        cell.end_job();
        // The inflight refusal never touched the bucket, so this
        // immediate retry still has a token available.
        cell.begin_job().unwrap();
    }

    #[test]
    fn at_both_limits_the_inflight_refusal_wins_and_costs_nothing() {
        // Regression: the old rate-first ordering charged (then
        // refunded) a token for a job that was doomed at the in-flight
        // cap, and reported `RateLimited` — telling the client to back
        // off on a timer when the real wait is for a response slot.
        let registry = TenantRegistry::new();
        let cell = registry.register(
            "t",
            1,
            TenantLimits {
                max_inflight: 1,
                rate_per_sec: 5.0,
                burst: 1,
            },
        );
        // Takes the only slot AND the only token: both limits are now
        // simultaneously exhausted.
        cell.begin_job().unwrap();
        assert_eq!(cell.begin_job().unwrap_err(), TenantRefusal::InflightFull);
        assert_eq!(cell.inflight(), 1, "a refusal holds no slot");
    }

    #[test]
    fn contended_begin_jobs_never_overshoot_the_cap() {
        // Regression for the optimistic fetch_add/fetch_sub window:
        // with the cap fully held, hammering `begin_job` from several
        // threads must never let a reader observe `inflight()` above
        // `max_inflight` (the old rollback left a transient overshoot
        // that also refused a peer arriving at exactly the cap).
        let registry = TenantRegistry::new();
        let cell = registry.register(
            "t",
            1,
            TenantLimits {
                max_inflight: 2,
                rate_per_sec: 0.0,
                burst: 256,
            },
        );
        cell.begin_job().unwrap();
        cell.begin_job().unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..20_000 {
                        assert_eq!(cell.begin_job().unwrap_err(), TenantRefusal::InflightFull);
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..100_000 {
                    let seen = cell.inflight();
                    assert!(seen <= 2, "inflight overshot the cap: {seen}");
                }
            });
        });
        assert_eq!(cell.inflight(), 2);
    }

    #[test]
    fn tiny_rates_clamp_retry_after_instead_of_panicking() {
        // Regression: `deficit / f64::MIN_POSITIVE` is ~4.5e307
        // seconds, far past `Duration::from_secs_f64`'s panic
        // threshold. The refusal must clamp to MAX_RETRY_AFTER and
        // release the in-flight slot it claimed.
        let registry = TenantRegistry::new();
        let cell = registry.register(
            "t",
            1,
            TenantLimits {
                max_inflight: 4,
                rate_per_sec: f64::MIN_POSITIVE,
                burst: 1,
            },
        );
        // The bucket starts at burst (one token); eat it.
        cell.begin_job().unwrap();
        let refusal = cell.begin_job().unwrap_err();
        let TenantRefusal::RateLimited { retry_after } = refusal else {
            panic!("expected rate refusal, got {refusal:?}");
        };
        assert_eq!(retry_after, MAX_RETRY_AFTER);
        assert_eq!(cell.inflight(), 1, "the rate refusal released its slot");
    }
}
