//! ECDH key agreement over secp256k1 — the "encryption" side of the
//! paper's §1 PKC motivation (ECIES-style shared-secret derivation).

use modsram_bigint::UBig;
use modsram_ecc::curve::Curve;
use modsram_ecc::curves::secp256k1_fast;
use modsram_ecc::scalar::mul_scalar_ladder;
use modsram_ecc::{FieldCtx, Fp256Ctx};

use crate::ecdsa::EcdsaError;
use crate::sha256::sha256;

/// One party's ECDH key pair.
pub struct EcdhKey {
    curve: Curve<Fp256Ctx>,
    d: UBig,
    /// Public point x-coordinate.
    pub px: UBig,
    /// Public point y parity.
    pub py_odd: bool,
}

impl core::fmt::Debug for EcdhKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EcdhKey {{ px: {} }}", self.px)
    }
}

impl EcdhKey {
    /// Creates a key pair from a private scalar `d ∈ [1, n)`.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPrivateKey`] when out of range.
    pub fn new(d: &UBig) -> Result<Self, EcdsaError> {
        let curve = secp256k1_fast();
        if d.is_zero() || d >= curve.order() {
            return Err(EcdsaError::InvalidPrivateKey);
        }
        // Secret-dependent scalar multiplications use the Montgomery
        // ladder: one add + one double per bit regardless of d's bit
        // pattern (see `modsram_ecc::scalar::mul_scalar_ladder`).
        let bits = curve.order().bit_len();
        let p = curve.to_affine(&mul_scalar_ladder(&curve, &curve.generator(), d, bits));
        let (px, py_odd) = curve.compress(&p).expect("d != 0 so P is finite");
        Ok(EcdhKey {
            curve,
            d: d.clone(),
            px,
            py_odd,
        })
    }

    /// Derives the 32-byte shared secret with a peer's compressed public
    /// key: `SHA-256(x(d·Q))`.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPublicKey`] when the peer's point is not on
    /// the curve.
    pub fn shared_secret(&self, peer_x: &UBig, peer_y_odd: bool) -> Result<[u8; 32], EcdsaError> {
        let peer = self
            .curve
            .decompress(peer_x, peer_y_odd)
            .ok_or(EcdsaError::InvalidPublicKey)?;
        let bits = self.curve.order().bit_len();
        let shared = mul_scalar_ladder(&self.curve, &self.curve.from_affine(&peer), &self.d, bits);
        let aff = self.curve.to_affine(&shared);
        if aff.infinity {
            // Only reachable with a malicious low-order-ish input; the
            // group is prime order so this means peer == identity-adjacent.
            return Err(EcdsaError::InvalidPublicKey);
        }
        let x = self.curve.ctx().to_ubig(&aff.x);
        let mut bytes = [0u8; 32];
        for (i, slot) in bytes.iter_mut().enumerate() {
            *slot = ((&x >> (8 * (31 - i))).low_u64() & 0xff) as u8;
        }
        Ok(sha256(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsram_ecc::scalar::mul_scalar_wnaf;

    #[test]
    fn both_parties_derive_the_same_secret() {
        let alice = EcdhKey::new(&UBig::from_hex("a11cea11cea11ce").unwrap()).unwrap();
        let bob = EcdhKey::new(&UBig::from_hex("b0bb0bb0bb0b").unwrap()).unwrap();
        let s1 = alice.shared_secret(&bob.px, bob.py_odd).unwrap();
        let s2 = bob.shared_secret(&alice.px, alice.py_odd).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_peers_give_different_secrets() {
        let alice = EcdhKey::new(&UBig::from(111_111u64)).unwrap();
        let bob = EcdhKey::new(&UBig::from(222_222u64)).unwrap();
        let carol = EcdhKey::new(&UBig::from(333_333u64)).unwrap();
        let s_ab = alice.shared_secret(&bob.px, bob.py_odd).unwrap();
        let s_ac = alice.shared_secret(&carol.px, carol.py_odd).unwrap();
        assert_ne!(s_ab, s_ac);
    }

    #[test]
    fn ladder_public_key_matches_wnaf() {
        // The hardened path and the fast path must agree on P = d·G.
        let d = UBig::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let key = EcdhKey::new(&d).unwrap();
        let curve = secp256k1_fast();
        let fast = curve.to_affine(&mul_scalar_wnaf(&curve, &curve.generator(), &d));
        let (px, _) = curve.compress(&fast).unwrap();
        assert_eq!(key.px, px);
    }

    #[test]
    fn off_curve_peer_rejected() {
        let alice = EcdhKey::new(&UBig::from(5u64)).unwrap();
        // x = 5 has no square root for x³+7 on secp256k1? Use a known
        // non-residue probe: iterate until decompress fails.
        let mut x = UBig::from(5u64);
        loop {
            if alice.curve.decompress(&x, false).is_none() {
                break;
            }
            x = &x + &UBig::one();
        }
        assert_eq!(
            alice.shared_secret(&x, false),
            Err(EcdsaError::InvalidPublicKey)
        );
    }
}
