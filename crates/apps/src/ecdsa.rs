//! ECDSA over secp256k1 — the paper's §1 "digital signature"
//! application, built entirely on the workspace substrate.
//!
//! Nonces are derived deterministically from the key and message digest
//! (in the spirit of RFC 6979, via SHA-256 with a retry counter; not
//! bit-compatible with the RFC's HMAC-DRBG construction — documented
//! simplification, signatures remain standard and verifiable).

use core::fmt;
use std::sync::Arc;

use modsram_bigint::{mod_inv, UBig};
use modsram_core::dispatch::{ContextPool, Dispatcher};
use modsram_core::service::ExecBackend;
use modsram_core::CoreError;
use modsram_ecc::curve::Curve;
use modsram_ecc::curves::{secp256k1_fast, secp256k1_via, SECP256K1_N};
use modsram_ecc::scalar::{mul_double_scalar, mul_scalar_wnaf};
use modsram_ecc::{FieldCtx, Fp256Ctx};
use modsram_modmul::{DirectEngine, ModMulEngine, PreparedModMul};

use crate::sha256::sha256;

/// Prepares a scalar-field (mod `n`) context, defaulting to the direct
/// engine; any engine accepted — the group order is odd, so even the
/// Montgomery family qualifies.
fn scalar_ctx(order: &UBig, engine: &dyn ModMulEngine) -> Arc<dyn PreparedModMul> {
    Arc::from(
        engine
            .prepare(order)
            .expect("group order is a fixed odd prime"),
    )
}

/// An ECDSA signature `(r, s)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// The x-coordinate residue.
    pub r: UBig,
    /// The proof scalar.
    pub s: UBig,
}

/// Errors from signing/verification setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdsaError {
    /// The private scalar must be in `[1, n)`.
    InvalidPrivateKey,
    /// The public point must be on the curve and not the identity.
    InvalidPublicKey,
    /// Signature components must be in `[1, n)`.
    InvalidSignature,
}

impl fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdsaError::InvalidPrivateKey => write!(f, "private key out of range"),
            EcdsaError::InvalidPublicKey => write!(f, "public key not a valid curve point"),
            EcdsaError::InvalidSignature => write!(f, "signature component out of range"),
        }
    }
}

impl std::error::Error for EcdsaError {}

/// A secp256k1 signing key.
///
/// Scalar arithmetic mod the group order runs through a prepared engine
/// context ([`PreparedModMul`]), prepared once at key construction.
pub struct SigningKey {
    curve: Curve<Fp256Ctx>,
    scalar: Arc<dyn PreparedModMul>,
    d: UBig,
}

/// A secp256k1 verifying (public) key.
pub struct VerifyingKey {
    curve: Curve<Fp256Ctx>,
    scalar: Arc<dyn PreparedModMul>,
    /// Affine public point coordinates (canonical integers).
    pub x: UBig,
    /// Affine y-coordinate.
    pub y: UBig,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningKey {{ d: <redacted> }}")
    }
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey {{ x: {}, y: {} }}", self.x, self.y)
    }
}

/// Digest → scalar: interpret the SHA-256 digest as a big-endian
/// integer reduced mod the group order (bit lengths match, so no
/// truncation step is needed).
fn message_scalar(msg: &[u8], order: &UBig) -> UBig {
    let digest = sha256(msg);
    let mut z = UBig::zero();
    for byte in digest {
        z = &(&z << 8) + &UBig::from(byte as u64);
    }
    &z % order
}

impl SigningKey {
    /// Creates a key from a private scalar `d ∈ [1, n)`.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPrivateKey`] when out of range.
    pub fn new(d: &UBig) -> Result<Self, EcdsaError> {
        Self::with_scalar_engine(d, &DirectEngine::new())
    }

    /// Creates a key whose mod-`n` scalar arithmetic runs through the
    /// given engine (prepared once for the group order here).
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPrivateKey`] when `d` is out of range.
    pub fn with_scalar_engine(d: &UBig, engine: &dyn ModMulEngine) -> Result<Self, EcdsaError> {
        let curve = secp256k1_fast();
        if d.is_zero() || d >= curve.order() {
            return Err(EcdsaError::InvalidPrivateKey);
        }
        let scalar = scalar_ctx(curve.order(), engine);
        Ok(SigningKey {
            curve,
            scalar,
            d: d.clone(),
        })
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        let q = mul_scalar_wnaf(&self.curve, &self.curve.generator(), &self.d);
        let aff = self.curve.to_affine(&q);
        VerifyingKey {
            x: self.curve.ctx().to_ubig(&aff.x),
            y: self.curve.ctx().to_ubig(&aff.y),
            curve: secp256k1_fast(),
            // Verification shares the signing key's prepared context,
            // so the configured engine carries over.
            scalar: Arc::clone(&self.scalar),
        }
    }

    /// Deterministic nonce: `SHA256(d_be ∥ z_be ∥ counter) mod n`,
    /// retried until non-zero and until the resulting `r, s` are
    /// non-zero.
    fn nonce(&self, z: &UBig, counter: u8) -> UBig {
        let mut input = Vec::with_capacity(65);
        input.extend_from_slice(&to_be32(&self.d));
        input.extend_from_slice(&to_be32(z));
        input.push(counter);
        let mut k = UBig::zero();
        for byte in sha256(&input) {
            k = &(&k << 8) + &UBig::from(byte as u64);
        }
        &k % self.curve.order()
    }

    /// Signs a message (its SHA-256 digest).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let n = self.curve.order().clone();
        let z = message_scalar(msg, &n);
        for counter in 0..=u8::MAX {
            let k = self.nonce(&z, counter);
            if k.is_zero() {
                continue;
            }
            let point = mul_scalar_wnaf(&self.curve, &self.curve.generator(), &k);
            let aff = self.curve.to_affine(&point);
            let r = &self.curve.ctx().to_ubig(&aff.x) % &n;
            if r.is_zero() {
                continue;
            }
            let k_inv = mod_inv(&k, &n).expect("prime order");
            // s = k⁻¹ (z + r·d) mod n, through the prepared scalar ctx.
            let rd = self.scalar.mod_mul(&r, &self.d).expect("prepared for n");
            let s = self
                .scalar
                .mod_mul(&k_inv, &(&z + &rd))
                .expect("prepared for n");
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
        unreachable!("256 nonce retries cannot all collide");
    }
}

impl VerifyingKey {
    /// Builds a verifying key from affine coordinates.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPublicKey`] when the point is off-curve.
    pub fn new(x: &UBig, y: &UBig) -> Result<Self, EcdsaError> {
        Self::with_scalar_engine(x, y, &DirectEngine::new())
    }

    /// Builds a verifying key whose mod-`n` arithmetic runs through the
    /// given engine.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPublicKey`] when the point is off-curve.
    pub fn with_scalar_engine(
        x: &UBig,
        y: &UBig,
        engine: &dyn ModMulEngine,
    ) -> Result<Self, EcdsaError> {
        let curve = secp256k1_fast();
        let aff = modsram_ecc::Affine {
            x: curve.ctx().from_ubig(x),
            y: curve.ctx().from_ubig(y),
            infinity: false,
        };
        if !curve.is_on_curve(&aff) {
            return Err(EcdsaError::InvalidPublicKey);
        }
        let scalar = scalar_ctx(curve.order(), engine);
        Ok(VerifyingKey {
            curve,
            scalar,
            x: x.clone(),
            y: y.clone(),
        })
    }

    /// Verifies a signature over `msg`.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidSignature`] for out-of-range `r`/`s`; a
    /// well-formed but wrong signature returns `Ok(false)`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<bool, EcdsaError> {
        verify_parts(
            &self.curve,
            self.scalar.as_ref(),
            &self.x,
            &self.y,
            msg,
            sig,
        )
    }
}

/// The verification equation over any field backend: assumes `(x, y)`
/// was already validated as an on-curve, non-identity point.
fn verify_parts<C: FieldCtx>(
    curve: &Curve<C>,
    scalar: &dyn PreparedModMul,
    x: &UBig,
    y: &UBig,
    msg: &[u8],
    sig: &Signature,
) -> Result<bool, EcdsaError> {
    let n = curve.order().clone();
    if sig.r.is_zero() || sig.r >= n || sig.s.is_zero() || sig.s >= n {
        return Err(EcdsaError::InvalidSignature);
    }
    let z = message_scalar(msg, &n);
    let w = mod_inv(&sig.s, &n).expect("prime order");
    let u1 = scalar.mod_mul(&z, &w).expect("prepared for n");
    let u2 = scalar.mod_mul(&sig.r, &w).expect("prepared for n");
    let q = curve.from_affine(&modsram_ecc::Affine {
        x: curve.ctx().from_ubig(x),
        y: curve.ctx().from_ubig(y),
        infinity: false,
    });
    // u1·G + u2·Q in one shared pass (Shamir's trick).
    let point = mul_double_scalar(curve, &curve.generator(), &u1, &q, &u2);
    if curve.is_identity(&point) {
        return Ok(false);
    }
    let aff = curve.to_affine(&point);
    Ok(&curve.ctx().to_ubig(&aff.x) % &n == sig.r)
}

/// One request in a batch verification: raw public-key coordinates, the
/// message, and the claimed signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyRequest {
    /// Public point affine x.
    pub x: UBig,
    /// Public point affine y.
    pub y: UBig,
    /// The signed message.
    pub msg: Vec<u8>,
    /// The signature to check.
    pub sig: Signature,
}

/// Verifies a batch of independent signatures, fanned out over a
/// [`Dispatcher`]'s workers with both secp256k1 moduli — the group
/// order `n` (scalar arithmetic) and the field prime `p` (curve
/// arithmetic) — resolved through one shared [`ContextPool`], so the
/// per-modulus preparation is paid once for the whole batch.
///
/// This is the one-shot staged entry point; see [`verify_batch_via`]
/// for the backend-generic form that also accepts a shared streaming
/// service.
///
/// Returns one verdict per request, in order: `Ok(true)`/`Ok(false)`
/// for well-formed requests, `Err` for malformed keys or signatures.
///
/// # Errors
///
/// The outer `Err` is a pool preparation failure (e.g. a backend that
/// rejects one of the curve moduli); per-request failures land in the
/// inner results.
pub fn verify_batch(
    requests: &[VerifyRequest],
    pool: &ContextPool,
    dispatcher: &Dispatcher,
) -> Result<Vec<Result<bool, EcdsaError>>, CoreError> {
    verify_batch_via(
        requests,
        &ExecBackend::Staged { dispatcher, pool },
        dispatcher,
    )
}

/// Verifies a batch of independent signatures over either execution
/// backend: a one-shot staged dispatcher+pool, or a shared
/// [`modsram_core::ModSramService`] whose queue then interleaves these
/// verifications' modular multiplications with every other tenant's
/// (Pedersen, NTT, raw batches) on one tile.
///
/// Request-level fan-out always runs on `fanout`'s workers; what the
/// backend decides is where the *field and scalar multiplications*
/// execute.
///
/// # Errors
///
/// The outer `Err` is a context/preparation failure; per-request
/// failures land in the inner results.
pub fn verify_batch_via(
    requests: &[VerifyRequest],
    backend: &ExecBackend<'_>,
    fanout: &Dispatcher,
) -> Result<Vec<Result<bool, EcdsaError>>, CoreError> {
    let n = UBig::from_hex(SECP256K1_N).expect("const");
    let scalar = backend.context(&n)?;
    // Warm the field-prime context so per-worker curve construction
    // below cannot fail on a cold pool (the service path defers
    // preparation to execution and cannot fail here).
    let _ = secp256k1_via(backend)?;
    let (verdicts, _) = fanout
        .run_items(
            requests.len(),
            |_| secp256k1_via(backend).expect("field context warmed above"),
            |curve, i| {
                let req = &requests[i];
                let aff = modsram_ecc::Affine {
                    x: curve.ctx().from_ubig(&req.x),
                    y: curve.ctx().from_ubig(&req.y),
                    infinity: false,
                };
                if !curve.is_on_curve(&aff) {
                    return Ok(Err(EcdsaError::InvalidPublicKey));
                }
                Ok::<_, core::convert::Infallible>(verify_parts(
                    curve, &*scalar, &req.x, &req.y, &req.msg, &req.sig,
                ))
            },
        )
        .expect("verification tasks are infallible");
    Ok(verdicts)
}

/// Big-endian 32-byte encoding of a value < 2²⁵⁶.
fn to_be32(v: &UBig) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((v >> (8 * (31 - i))).low_u64() & 0xff) as u8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SigningKey {
        SigningKey::new(
            &UBig::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"sample message");
        assert_eq!(vk.verify(b"sample message", &sig), Ok(true));
    }

    #[test]
    fn wrong_message_rejected() {
        let sk = key();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"message one");
        assert_eq!(vk.verify(b"message two", &sig), Ok(false));
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = key();
        let vk = sk.verifying_key();
        let mut sig = sk.sign(b"message");
        sig.s = &sig.s + &UBig::one();
        assert_eq!(vk.verify(b"message", &sig), Ok(false));
    }

    #[test]
    fn signatures_are_deterministic() {
        let sk = key();
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m"), sk.sign(b"m2"));
    }

    #[test]
    fn out_of_range_components_error() {
        let sk = key();
        let vk = sk.verifying_key();
        let sig = Signature {
            r: UBig::zero(),
            s: UBig::one(),
        };
        assert_eq!(vk.verify(b"m", &sig), Err(EcdsaError::InvalidSignature));
    }

    #[test]
    fn invalid_keys_rejected() {
        assert_eq!(
            SigningKey::new(&UBig::zero()).err(),
            Some(EcdsaError::InvalidPrivateKey)
        );
        assert_eq!(
            VerifyingKey::new(&UBig::from(1u64), &UBig::from(1u64)).err(),
            Some(EcdsaError::InvalidPublicKey)
        );
    }

    #[test]
    fn scalar_engine_choice_does_not_change_signatures() {
        use modsram_modmul::{BarrettEngine, MontgomeryEngine};
        let d = UBig::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
            .unwrap();
        let reference = SigningKey::new(&d).unwrap().sign(b"engine-agnostic");
        for engine in [
            &MontgomeryEngine::new() as &dyn ModMulEngine,
            &BarrettEngine::new(),
        ] {
            let sk = SigningKey::with_scalar_engine(&d, engine).unwrap();
            let sig = sk.sign(b"engine-agnostic");
            assert_eq!(sig, reference);
            let vk = sk.verifying_key();
            let vk2 = VerifyingKey::with_scalar_engine(&vk.x, &vk.y, engine).unwrap();
            assert_eq!(vk2.verify(b"engine-agnostic", &sig), Ok(true));
        }
    }

    #[test]
    fn batch_verify_over_shared_pool() {
        let sk1 = key();
        let sk2 = SigningKey::new(&UBig::from(987_654_321u64)).unwrap();
        let (vk1, vk2) = (sk1.verifying_key(), sk2.verifying_key());
        let mut requests: Vec<VerifyRequest> = [
            (&sk1, &vk1, b"first message".to_vec()),
            (&sk2, &vk2, b"second message".to_vec()),
            (&sk1, &vk1, b"third message".to_vec()),
        ]
        .iter()
        .map(|(sk, vk, msg)| VerifyRequest {
            x: vk.x.clone(),
            y: vk.y.clone(),
            msg: msg.clone(),
            sig: sk.sign(msg),
        })
        .collect();
        // A wrong-message request, a tampered signature, an off-curve
        // key, and an out-of-range signature.
        requests.push(VerifyRequest {
            msg: b"not what was signed".to_vec(),
            ..requests[0].clone()
        });
        let mut tampered = requests[1].clone();
        tampered.sig.s = &tampered.sig.s + &UBig::one();
        requests.push(tampered);
        requests.push(VerifyRequest {
            x: UBig::from(1u64),
            y: UBig::from(1u64),
            ..requests[0].clone()
        });
        requests.push(VerifyRequest {
            sig: Signature {
                r: UBig::zero(),
                s: UBig::one(),
            },
            ..requests[0].clone()
        });

        let pool = modsram_core::ContextPool::for_engine_name("montgomery").unwrap();
        for workers in [1usize, 4] {
            let dispatcher = Dispatcher::new(workers);
            let verdicts = verify_batch(&requests, &pool, &dispatcher).unwrap();
            assert_eq!(
                verdicts,
                vec![
                    Ok(true),
                    Ok(true),
                    Ok(true),
                    Ok(false),
                    Ok(false),
                    Err(EcdsaError::InvalidPublicKey),
                    Err(EcdsaError::InvalidSignature),
                ],
                "workers={workers}"
            );
        }
        // The mixed-modulus pool holds exactly n and p.
        assert_eq!(pool.len(), 2);
        assert!(pool.hits() > 0, "the second dispatch reuses both contexts");
    }

    #[test]
    fn batch_verify_agrees_with_per_key_verify() {
        let sk = key();
        let vk = sk.verifying_key();
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![b'm', i]).collect();
        let requests: Vec<VerifyRequest> = msgs
            .iter()
            .map(|m| VerifyRequest {
                x: vk.x.clone(),
                y: vk.y.clone(),
                msg: m.clone(),
                sig: sk.sign(m),
            })
            .collect();
        let pool = modsram_core::ContextPool::for_engine_name("barrett").unwrap();
        let verdicts = verify_batch(&requests, &pool, &Dispatcher::new(2)).unwrap();
        for (req, verdict) in requests.iter().zip(&verdicts) {
            assert_eq!(*verdict, vk.verify(&req.msg, &req.sig));
        }
    }

    #[test]
    fn verify_batch_via_service_matches_staged() {
        use modsram_core::service::{ExecBackend, ModSramService, ServiceConfig};

        let sk = key();
        let vk = sk.verifying_key();
        let mut requests: Vec<VerifyRequest> = (0..3u8)
            .map(|i| {
                let msg = vec![b's', i];
                VerifyRequest {
                    x: vk.x.clone(),
                    y: vk.y.clone(),
                    sig: sk.sign(&msg),
                    msg,
                }
            })
            .collect();
        requests.push(VerifyRequest {
            msg: b"wrong message".to_vec(),
            ..requests[0].clone()
        });
        requests.push(VerifyRequest {
            x: UBig::from(1u64),
            y: UBig::from(1u64),
            ..requests[0].clone()
        });

        let pool = ContextPool::for_engine_name("montgomery").unwrap();
        let fanout = Dispatcher::new(2);
        let staged = verify_batch_via(
            &requests,
            &ExecBackend::Staged {
                dispatcher: &fanout,
                pool: &pool,
            },
            &fanout,
        )
        .unwrap();

        let service = ModSramService::for_engine_name(
            "montgomery",
            ServiceConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let streamed =
            verify_batch_via(&requests, &ExecBackend::Service(&service), &fanout).unwrap();
        assert_eq!(streamed, staged);
        assert_eq!(
            streamed,
            vec![
                Ok(true),
                Ok(true),
                Ok(true),
                Ok(false),
                Err(EcdsaError::InvalidPublicKey),
            ]
        );
        let stats = service.shutdown();
        assert_eq!(stats.failed, 0);
        assert!(
            stats.completed > 0,
            "scalar muls streamed through the service"
        );
    }

    #[test]
    fn verify_batch_via_cluster_matches_staged() {
        use modsram_core::cluster::{ClusterConfig, ServiceCluster};
        use modsram_core::service::ExecBackend;

        let sk = key();
        let vk = sk.verifying_key();
        let requests: Vec<VerifyRequest> = (0..2u8)
            .map(|i| {
                let msg = vec![b'k', i];
                VerifyRequest {
                    x: vk.x.clone(),
                    y: vk.y.clone(),
                    sig: sk.sign(&msg),
                    msg,
                }
            })
            .collect();

        let pool = ContextPool::for_engine_name("montgomery").unwrap();
        let fanout = Dispatcher::new(2);
        let staged = verify_batch_via(
            &requests,
            &ExecBackend::Staged {
                dispatcher: &fanout,
                pool: &pool,
            },
            &fanout,
        )
        .unwrap();

        // The same verification fanned across a 2-tile cluster: the
        // curve's p and n home on their rendezvous tiles and every
        // scalar/field multiplication streams through the router.
        let cluster =
            ServiceCluster::for_engine_name("montgomery", 2, ClusterConfig::default()).unwrap();
        let routed = verify_batch_via(&requests, &ExecBackend::Cluster(&cluster), &fanout).unwrap();
        assert_eq!(routed, staged);
        assert_eq!(routed, vec![Ok(true), Ok(true)]);
        let stats = cluster.shutdown();
        assert_eq!(stats.failed, 0);
        assert!(stats.completed > 0, "muls streamed through the cluster");
        assert_eq!(stats.spilled, 0, "uncontended cluster keeps affinity");
    }

    #[test]
    fn cross_key_verification_fails() {
        let sk1 = key();
        let sk2 = SigningKey::new(&UBig::from(12345u64)).unwrap();
        let sig = sk1.sign(b"msg");
        assert_eq!(sk2.verifying_key().verify(b"msg", &sig), Ok(false));
    }
}
