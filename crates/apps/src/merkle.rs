//! SHA-256 Merkle trees with membership proofs.
//!
//! The remaining §1 application primitive: Bitcoin (the paper's
//! motivating user of secp256k1) authenticates transactions against a
//! block header through a Merkle root, and ZKP systems commit to
//! witness vectors the same way. Built on the workspace's own
//! [`crate::sha256`].
//!
//! Leaves and interior nodes are domain-separated (`0x00` / `0x01`
//! prefixes), which blocks the classic second-preimage trick of
//! re-interpreting an interior node as a leaf. An odd node at any
//! level is promoted unpaired (no Bitcoin-style duplication, which is
//! what enabled CVE-2012-2459); the proof records each sibling's side
//! explicitly.

use crate::sha256::sha256;

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

fn leaf_hash(data: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(0x00);
    buf.extend_from_slice(data);
    sha256(&buf)
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut buf = [0u8; 65];
    buf[0] = 0x01;
    buf[1..33].copy_from_slice(left);
    buf[33..].copy_from_slice(right);
    sha256(&buf)
}

/// One step of a membership proof: the sibling digest and which side
/// it sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling's digest.
    pub sibling: Digest,
    /// `true` if the sibling is the *right* child at this level.
    pub sibling_is_right: bool,
}

/// A Merkle membership proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Bottom-up sibling path (may skip levels where the node was
    /// promoted unpaired).
    pub steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verifies that `leaf_data` at this proof's index hashes up to
    /// `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        let mut acc = leaf_hash(leaf_data);
        for step in &self.steps {
            acc = if step.sibling_is_right {
                node_hash(&acc, &step.sibling)
            } else {
                node_hash(&step.sibling, &acc)
            };
        }
        acc == *root
    }
}

/// A SHA-256 Merkle tree over byte-string leaves.
///
/// # Examples
///
/// ```
/// use modsram_apps::merkle::MerkleTree;
///
/// let leaves: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 8]).collect();
/// let tree = MerkleTree::from_leaves(&leaves);
/// let proof = tree.prove(3).expect("index in range");
/// assert!(proof.verify(tree.root(), &leaves[3]));
/// assert!(!proof.verify(tree.root(), b"someone else's data"));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf digests, last level = [root].
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds the tree. An empty leaf set gets the conventional
    /// all-zero root (distinguishable from any real root because leaf
    /// hashing is domain-separated).
    pub fn from_leaves<L: AsRef<[u8]>>(leaves: &[L]) -> Self {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![[0u8; 32]]],
            };
        }
        let mut levels = vec![leaves
            .iter()
            .map(|l| leaf_hash(l.as_ref()))
            .collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let mut level = Vec::with_capacity(below.len().div_ceil(2));
            for pair in below.chunks(2) {
                match pair {
                    [l, r] => level.push(node_hash(l, r)),
                    [odd] => level.push(*odd), // promoted unpaired
                    _ => unreachable!("chunks(2)"),
                }
            }
            levels.push(level);
        }
        MerkleTree { levels }
    }

    /// The Merkle root.
    pub fn root(&self) -> &Digest {
        &self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0][0] == [0u8; 32] {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// Produces a membership proof for leaf `index`, or `None` when
    /// out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut steps = Vec::new();
        let mut pos = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_pos = pos ^ 1;
            if sibling_pos < level.len() {
                steps.push(ProofStep {
                    sibling: level[sibling_pos],
                    sibling_is_right: sibling_pos > pos,
                });
            } // else: promoted unpaired — no step at this level
            pos /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn every_leaf_proves_at_every_size() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(proof.verify(tree.root(), leaf), "n={n} i={i}");
                // Proof depth is bounded by ⌈log₂ n⌉.
                assert!(proof.steps.len() <= n.next_power_of_two().trailing_zeros() as usize);
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(tree.root(), &data[3]));
        assert!(!proof.verify(tree.root(), b"forged"));
    }

    #[test]
    fn tampered_sibling_fails() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let mut proof = tree.prove(5).unwrap();
        proof.steps[1].sibling[0] ^= 1;
        assert!(!proof.verify(tree.root(), &data[5]));
    }

    #[test]
    fn flipped_side_fails() {
        let data = leaves(4);
        let tree = MerkleTree::from_leaves(&data);
        let mut proof = tree.prove(0).unwrap();
        proof.steps[0].sibling_is_right = false;
        assert!(!proof.verify(tree.root(), &data[0]));
    }

    #[test]
    fn any_leaf_change_changes_root() {
        let data = leaves(9);
        let base = *MerkleTree::from_leaves(&data).root();
        for i in 0..data.len() {
            let mut changed = data.clone();
            changed[i].push(b'!');
            assert_ne!(*MerkleTree::from_leaves(&changed).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn interior_node_cannot_pose_as_leaf() {
        // Domain separation: hashing the concatenation of two leaf
        // digests as *data* must not reproduce their parent.
        let data = leaves(2);
        let tree = MerkleTree::from_leaves(&data);
        let l0 = leaf_hash(&data[0]);
        let l1 = leaf_hash(&data[1]);
        let mut concat = Vec::new();
        concat.extend_from_slice(&l0);
        concat.extend_from_slice(&l1);
        assert_ne!(leaf_hash(&concat), *tree.root());
    }

    #[test]
    fn single_leaf_and_empty() {
        let one = MerkleTree::from_leaves(&[b"solo".to_vec()]);
        assert_eq!(one.leaf_count(), 1);
        let proof = one.prove(0).unwrap();
        assert!(proof.steps.is_empty());
        assert!(proof.verify(one.root(), b"solo"));

        let empty = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert_eq!(empty.leaf_count(), 0);
        assert_eq!(*empty.root(), [0u8; 32]);
        assert!(empty.prove(0).is_none());
    }

    #[test]
    fn out_of_range_proof_rejected() {
        let tree = MerkleTree::from_leaves(&leaves(4));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn odd_promotion_is_consistent() {
        // With 3 leaves, leaf 2 is promoted at level 0: its proof has
        // one fewer step than leaves 0/1 but still verifies.
        let data = leaves(3);
        let tree = MerkleTree::from_leaves(&data);
        let p0 = tree.prove(0).unwrap();
        let p2 = tree.prove(2).unwrap();
        assert_eq!(p0.steps.len(), 2);
        assert_eq!(p2.steps.len(), 1);
        assert!(p2.verify(tree.root(), &data[2]));
    }
}
