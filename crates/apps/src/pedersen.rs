//! Pedersen vector commitments over BN254 — the MSM workload of
//! Figure 7 doing real cryptographic work.
//!
//! `commit(v, r) = Σ vᵢ·Gᵢ + r·H` with independent bases derived by
//! hash-to-scalar from a domain tag. Hiding comes from the blinding
//! factor `r`; binding from the discrete log relation between the
//! bases being unknown.

use modsram_bigint::{ubig_below, UBig};
use modsram_core::dispatch::ContextPool;
use modsram_core::service::ExecBackend;
use modsram_core::CoreError;
use modsram_ecc::curve::{Affine, Curve, Jacobian};
use modsram_ecc::curves::{bn254_fast, bn254_via, bn254_with_engine, bn254_with_pool};
use modsram_ecc::msm::msm;
use modsram_ecc::scalar::mul_scalar_wnaf;
use modsram_ecc::{DynCtx, FieldCtx, Fp256Ctx};
use modsram_modmul::ModMulEngine;
use rand::Rng;

use crate::sha256::sha256;

/// A Pedersen committer with `size` value bases plus one blinding base.
///
/// Generic over the field backend: the default is the fast 256-bit
/// Montgomery context, and [`PedersenCommitter::new_with_engine`] runs
/// every field multiplication through a prepared engine context instead
/// (including the cycle-accurate ModSRAM device).
pub struct PedersenCommitter<C: FieldCtx = Fp256Ctx> {
    curve: Curve<C>,
    bases: Vec<Affine<C::El>>,
    blinding_base: Affine<C::El>,
}

impl<C: FieldCtx> core::fmt::Debug for PedersenCommitter<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PedersenCommitter {{ size: {} }}", self.bases.len())
    }
}

impl PedersenCommitter<Fp256Ctx> {
    /// Derives `size` bases deterministically from a domain tag:
    /// `Gᵢ = hash(tag, i)·G`. (Nothing-up-my-sleeve in spirit; a
    /// production system would hash directly to curve points.)
    pub fn new(size: usize, tag: &[u8]) -> Self {
        Self::with_curve(bn254_fast(), size, tag)
    }
}

impl PedersenCommitter<DynCtx> {
    /// As [`PedersenCommitter::new`], but every field multiplication
    /// goes through `engine`, prepared once for the BN254 base field.
    pub fn new_with_engine(size: usize, tag: &[u8], engine: Box<dyn ModMulEngine>) -> Self {
        Self::with_curve(bn254_with_engine(engine), size, tag)
    }

    /// As [`PedersenCommitter::new`], but the BN254 base-field context
    /// is drawn from (and cached in) a shared [`ContextPool`], so
    /// committers over several curves — or repeated construction — pay
    /// the per-modulus preparation once. Pair with
    /// [`PedersenCommitter::with_curve`] over e.g.
    /// [`modsram_ecc::curves::p256_with_pool`] for a second curve on
    /// the same pool.
    ///
    /// # Errors
    ///
    /// Propagates the pool's preparation error.
    pub fn new_with_pool(size: usize, tag: &[u8], pool: &ContextPool) -> Result<Self, CoreError> {
        Ok(Self::with_curve(bn254_with_pool(pool)?, size, tag))
    }

    /// As [`PedersenCommitter::new_with_pool`], but over either
    /// execution backend — pass
    /// [`ExecBackend::Service`] to stream every
    /// commitment's field multiplications through a shared
    /// [`modsram_core::ModSramService`] alongside other tenants.
    ///
    /// # Errors
    ///
    /// Propagates the backend's context/preparation error.
    pub fn new_via(size: usize, tag: &[u8], backend: &ExecBackend<'_>) -> Result<Self, CoreError> {
        Ok(Self::with_curve(bn254_via(backend)?, size, tag))
    }
}

impl<C: FieldCtx> PedersenCommitter<C> {
    /// Derives the bases over an explicit BN254 curve instance.
    pub fn with_curve(curve: Curve<C>, size: usize, tag: &[u8]) -> Self {
        let g = curve.generator();
        let derive = |index: u64| {
            let mut input = tag.to_vec();
            input.extend_from_slice(&index.to_be_bytes());
            let mut k = UBig::zero();
            for byte in sha256(&input) {
                k = &(&k << 8) + &UBig::from(byte as u64);
            }
            let k = &(&k % &(curve.order() - &UBig::one())) + &UBig::one();
            curve.to_affine(&mul_scalar_wnaf(&curve, &g, &k))
        };
        let bases = (0..size as u64).map(derive).collect();
        let blinding_base = derive(u64::MAX);
        PedersenCommitter {
            curve,
            bases,
            blinding_base,
        }
    }

    /// Number of value slots.
    pub fn size(&self) -> usize {
        self.bases.len()
    }

    /// The underlying curve (for point comparisons in callers).
    pub fn curve(&self) -> &Curve<C> {
        &self.curve
    }

    /// Commits to `values` with blinding factor `r`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.size()`.
    pub fn commit(&self, values: &[UBig], r: &UBig) -> Jacobian<C::El> {
        assert_eq!(values.len(), self.size(), "value count must match bases");
        let mut points = self.bases.clone();
        points.push(self.blinding_base.clone());
        let mut scalars: Vec<UBig> = values.iter().map(|v| v % self.curve.order()).collect();
        scalars.push(r % self.curve.order());
        msm(&self.curve, &points, &scalars).0
    }

    /// Commits with a random blinding factor, returning `(commitment, r)`.
    pub fn commit_hiding<R: Rng + ?Sized>(
        &self,
        values: &[UBig],
        rng: &mut R,
    ) -> (Jacobian<C::El>, UBig) {
        let r = ubig_below(rng, self.curve.order());
        (self.commit(values, &r), r)
    }

    /// Verifies an opening `(values, r)` against a commitment.
    pub fn open(&self, commitment: &Jacobian<C::El>, values: &[UBig], r: &UBig) -> bool {
        self.curve.points_equal(commitment, &self.commit(values, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn committer() -> PedersenCommitter {
        PedersenCommitter::new(4, b"modsram-test")
    }

    #[test]
    fn open_roundtrip() {
        let c = committer();
        let values: Vec<UBig> = (1..=4u64).map(UBig::from).collect();
        let r = UBig::from(987_654_321u64);
        let com = c.commit(&values, &r);
        assert!(c.open(&com, &values, &r));
    }

    #[test]
    fn wrong_opening_rejected() {
        let c = committer();
        let values: Vec<UBig> = (1..=4u64).map(UBig::from).collect();
        let r = UBig::from(42u64);
        let com = c.commit(&values, &r);
        let mut tampered = values.clone();
        tampered[2] = UBig::from(99u64);
        assert!(!c.open(&com, &tampered, &r));
        assert!(!c.open(&com, &values, &UBig::from(43u64)));
    }

    #[test]
    fn additively_homomorphic() {
        // commit(a, ra) + commit(b, rb) == commit(a + b, ra + rb).
        let c = committer();
        let a: Vec<UBig> = (1..=4u64).map(UBig::from).collect();
        let b: Vec<UBig> = (10..=13u64).map(UBig::from).collect();
        let (ra, rb) = (UBig::from(111u64), UBig::from(222u64));
        let lhs = c.curve().add(&c.commit(&a, &ra), &c.commit(&b, &rb));
        let sum: Vec<UBig> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let rhs = c.commit(&sum, &(&ra + &rb));
        assert!(c.curve().points_equal(&lhs, &rhs));
    }

    #[test]
    fn hiding_blinds_equal_values() {
        let c = committer();
        let values: Vec<UBig> = vec![UBig::from(7u64); 4];
        let mut rng = SmallRng::seed_from_u64(55);
        let (com1, r1) = c.commit_hiding(&values, &mut rng);
        let (com2, r2) = c.commit_hiding(&values, &mut rng);
        assert_ne!(r1, r2);
        assert!(!c.curve().points_equal(&com1, &com2));
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn size_mismatch_panics() {
        committer().commit(&[UBig::one()], &UBig::one());
    }

    #[test]
    fn pooled_committers_over_two_curves_share_preparations() {
        use modsram_ecc::curves::p256_with_pool;

        let pool = ContextPool::for_engine_name("montgomery").unwrap();
        let values: Vec<UBig> = [4u64, 8].map(UBig::from).to_vec();
        let r = UBig::from(2024u64);

        // BN254 committer through the pool matches the fast backend.
        let fast = PedersenCommitter::new(2, b"modsram-pool");
        let pooled = PedersenCommitter::new_with_pool(2, b"modsram-pool", &pool).unwrap();
        let fast_affine = fast.curve().to_affine(&fast.commit(&values, &r));
        let pooled_affine = pooled.curve().to_affine(&pooled.commit(&values, &r));
        assert_eq!(
            fast.curve().ctx().to_ubig(&fast_affine.x),
            pooled.curve().ctx().to_ubig(&pooled_affine.x)
        );
        assert!(pooled.open(&pooled.commit(&values, &r), &values, &r));

        // A second committer over a *different* curve rides the same
        // pool; a second BN254 committer hits the cached context.
        let p256 =
            PedersenCommitter::with_curve(p256_with_pool(&pool).unwrap(), 2, b"modsram-pool-p256");
        assert!(p256.open(&p256.commit(&values, &r), &values, &r));
        assert_eq!(pool.len(), 2, "bn254 p and p256 p");
        let misses_before = pool.misses();
        let _again = PedersenCommitter::new_with_pool(2, b"modsram-pool", &pool).unwrap();
        assert_eq!(pool.misses(), misses_before, "cached context reused");
    }

    #[test]
    fn service_backed_committer_matches_fast() {
        use modsram_core::service::{ExecBackend, ModSramService, ServiceConfig};

        let service = ModSramService::for_engine_name("montgomery", ServiceConfig::default())
            .expect("registered engine");
        let backend = ExecBackend::Service(&service);
        let streamed = PedersenCommitter::new_via(2, b"modsram-svc", &backend).unwrap();
        let fast = PedersenCommitter::new(2, b"modsram-svc");
        let values: Vec<UBig> = [4u64, 8].map(UBig::from).to_vec();
        let r = UBig::from(2024u64);
        let fast_aff = fast.curve().to_affine(&fast.commit(&values, &r));
        let svc_aff = streamed.curve().to_affine(&streamed.commit(&values, &r));
        assert_eq!(
            fast.curve().ctx().to_ubig(&fast_aff.x),
            streamed.curve().ctx().to_ubig(&svc_aff.x)
        );
        assert!(streamed.open(&streamed.commit(&values, &r), &values, &r));
        let stats = service.shutdown();
        assert_eq!(stats.failed, 0);
        assert!(stats.completed > 0);
    }

    #[test]
    fn cluster_backed_committer_matches_fast() {
        use modsram_core::cluster::{ClusterConfig, ServiceCluster};
        use modsram_core::service::ExecBackend;

        let cluster = ServiceCluster::for_engine_name("montgomery", 2, ClusterConfig::default())
            .expect("registered engine");
        let backend = ExecBackend::Cluster(&cluster);
        let routed = PedersenCommitter::new_via(2, b"modsram-cluster", &backend).unwrap();
        let fast = PedersenCommitter::new(2, b"modsram-cluster");
        let values: Vec<UBig> = [4u64, 8].map(UBig::from).to_vec();
        let r = UBig::from(2024u64);
        let fast_aff = fast.curve().to_affine(&fast.commit(&values, &r));
        let routed_aff = routed.curve().to_affine(&routed.commit(&values, &r));
        assert_eq!(
            fast.curve().ctx().to_ubig(&fast_aff.x),
            routed.curve().ctx().to_ubig(&routed_aff.x)
        );
        assert!(routed.open(&routed.commit(&values, &r), &values, &r));
        let stats = cluster.shutdown();
        assert_eq!(stats.failed, 0);
        assert!(stats.completed > 0);
        assert_eq!(stats.affinity_hit_rate(), 1.0);
    }

    #[test]
    fn engine_backend_commits_to_the_same_point() {
        use modsram_modmul::R4CsaLutEngine;
        let fast = PedersenCommitter::new(2, b"modsram-engine");
        let slow = PedersenCommitter::new_with_engine(
            2,
            b"modsram-engine",
            Box::new(R4CsaLutEngine::new()),
        );
        let values: Vec<UBig> = [5u64, 9].map(UBig::from).to_vec();
        let r = UBig::from(31337u64);
        let fast_affine = fast.curve().to_affine(&fast.commit(&values, &r));
        let slow_affine = slow.curve().to_affine(&slow.commit(&values, &r));
        assert_eq!(
            fast.curve().ctx().to_ubig(&fast_affine.x),
            slow.curve().ctx().to_ubig(&slow_affine.x)
        );
        assert_eq!(
            fast.curve().ctx().to_ubig(&fast_affine.y),
            slow.curve().ctx().to_ubig(&slow_affine.y)
        );
        // The opening protocol works on the engine backend too.
        assert!(slow.open(&slow.commit(&values, &r), &values, &r));
    }
}
