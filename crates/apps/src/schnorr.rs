//! Schnorr signatures over secp256k1 (BIP-340-flavoured, simplified):
//! the other mainstream signature scheme built on the same
//! large-number modular multiplications the paper accelerates.
//!
//! `sign`: `R = k·G`, `e = H(R.x ∥ P.x ∥ m)`, `s = k + e·d (mod n)`.
//! `verify`: `s·G == R + e·P`.
//!
//! Simplifications vs BIP-340 (documented): no x-only even-Y
//! normalisation, nonce derived like our ECDSA's deterministic scheme.

use modsram_bigint::{mod_mul, UBig};
use modsram_ecc::curve::Curve;
use modsram_ecc::curves::secp256k1_fast;
use modsram_ecc::scalar::{mul_double_scalar, mul_scalar_wnaf};
use modsram_ecc::{FieldCtx, Fp256Ctx};

use crate::ecdsa::EcdsaError;
use crate::sha256::sha256;

/// A Schnorr signature `(r_x, s)` where `r_x` is the nonce point's
/// x-coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrSignature {
    /// Nonce point x-coordinate.
    pub r_x: UBig,
    /// Nonce point y parity (kept explicit instead of BIP-340's even-Y
    /// convention).
    pub r_y_odd: bool,
    /// Response scalar.
    pub s: UBig,
}

/// A Schnorr key pair over secp256k1.
pub struct SchnorrKey {
    curve: Curve<Fp256Ctx>,
    d: UBig,
    /// Public point coordinates.
    pub px: UBig,
    /// Public y-coordinate.
    pub py: UBig,
}

impl core::fmt::Debug for SchnorrKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SchnorrKey {{ px: {} }}", self.px)
    }
}

fn hash_to_scalar(parts: &[&[u8]], order: &UBig) -> UBig {
    let mut input = Vec::new();
    for p in parts {
        input.extend_from_slice(p);
    }
    let mut z = UBig::zero();
    for byte in sha256(&input) {
        z = &(&z << 8) + &UBig::from(byte as u64);
    }
    &z % order
}

fn be32(v: &UBig) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((v >> (8 * (31 - i))).low_u64() & 0xff) as u8;
    }
    out
}

impl SchnorrKey {
    /// Creates a key from a private scalar `d ∈ [1, n)`.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidPrivateKey`] when out of range.
    pub fn new(d: &UBig) -> Result<Self, EcdsaError> {
        let curve = secp256k1_fast();
        if d.is_zero() || d >= curve.order() {
            return Err(EcdsaError::InvalidPrivateKey);
        }
        let p = curve.to_affine(&mul_scalar_wnaf(&curve, &curve.generator(), d));
        Ok(SchnorrKey {
            px: curve.ctx().to_ubig(&p.x),
            py: curve.ctx().to_ubig(&p.y),
            curve,
            d: d.clone(),
        })
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> SchnorrSignature {
        let n = self.curve.order().clone();
        for counter in 0..=u8::MAX {
            let k = hash_to_scalar(&[&be32(&self.d), msg, &[counter]], &n);
            if k.is_zero() {
                continue;
            }
            let r =
                self.curve
                    .to_affine(&mul_scalar_wnaf(&self.curve, &self.curve.generator(), &k));
            let r_x = self.curve.ctx().to_ubig(&r.x);
            let r_y_odd = self.curve.ctx().to_ubig(&r.y).bit(0);
            let e = hash_to_scalar(&[&be32(&r_x), &be32(&self.px), msg], &n);
            let s = &(&k + &mod_mul(&e, &self.d, &n)) % &n;
            return SchnorrSignature { r_x, r_y_odd, s };
        }
        unreachable!("256 nonce retries cannot all be zero");
    }

    /// Verifies a signature over `msg` against this key's public point.
    pub fn verify(&self, msg: &[u8], sig: &SchnorrSignature) -> bool {
        let n = self.curve.order().clone();
        if sig.s >= n {
            return false;
        }
        // Reconstruct R from its compressed form.
        let Some(r_aff) = self.curve.decompress(&sig.r_x, sig.r_y_odd) else {
            return false;
        };
        let e = hash_to_scalar(&[&be32(&sig.r_x), &be32(&self.px), msg], &n);
        // s·G must equal R + e·P  ⇔  s·G + (n−e)·P == R.
        let p_point = self.curve.from_affine(
            &self
                .curve
                .decompress(&self.px, self.py.bit(0))
                .expect("own public key is on-curve"),
        );
        let lhs = mul_double_scalar(
            &self.curve,
            &self.curve.generator(),
            &sig.s,
            &p_point,
            &(&n - &e),
        );
        self.curve
            .points_equal(&lhs, &self.curve.from_affine(&r_aff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SchnorrKey {
        SchnorrKey::new(&UBig::from_hex("b0b0b0b0cafe1234").unwrap()).unwrap()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = key();
        let sig = k.sign(b"schnorr message");
        assert!(k.verify(b"schnorr message", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let k = key();
        let sig = k.sign(b"one");
        assert!(!k.verify(b"two", &sig));
    }

    #[test]
    fn tampered_s_rejected() {
        let k = key();
        let mut sig = k.sign(b"msg");
        sig.s = &sig.s + &UBig::one();
        assert!(!k.verify(b"msg", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let k = key();
        assert_eq!(k.sign(b"m"), k.sign(b"m"));
    }

    #[test]
    fn cross_key_rejected() {
        let k1 = key();
        let k2 = SchnorrKey::new(&UBig::from(999u64)).unwrap();
        let sig = k1.sign(b"msg");
        assert!(!k2.verify(b"msg", &sig));
    }
}
