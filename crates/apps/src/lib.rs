//! Application layer of the ModSRAM reproduction: the security
//! protocols the paper's introduction motivates (public-key
//! cryptography, digital signatures, ZKP building blocks), running on
//! the workspace's own substrate — and, where it matters, on the
//! simulated accelerator itself.
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 from scratch (message digests for
//!   signatures).
//! * [`ecdsa`] — ECDSA over secp256k1 with deterministic nonces.
//! * [`ecdh`] — ECDH shared-secret derivation (ECIES-style).
//! * [`schnorr`] — Schnorr signatures (BIP-340-flavoured).
//! * [`merkle`] — SHA-256 Merkle trees with membership proofs
//!   (domain-separated, odd-node promotion).
//! * [`pedersen`] — Pedersen vector commitments via multi-scalar
//!   multiplication (the ZKP workload of Figure 7 put to work).
//! * [`ipa`] — a Bulletproofs-style inner-product argument: a complete
//!   ZKP building block with `2·log₂ n` proof size.
//! * [`modexp`] — square-and-multiply modular exponentiation executed
//!   multiplication-by-multiplication on the cycle-accurate ModSRAM
//!   device, with full cycle accounting.
//!
//! # Examples
//!
//! ```
//! use modsram_apps::sha256::sha256;
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! fn hex(b: &[u8; 32]) -> String {
//!     b.iter().map(|x| format!("{x:02x}")).collect()
//! }
//! ```

pub mod ecdh;
pub mod ecdsa;
pub mod ipa;
pub mod merkle;
pub mod modexp;
pub mod pedersen;
pub mod schnorr;
pub mod sha256;

pub use ecdh::EcdhKey;
pub use ecdsa::{verify_batch, EcdsaError, Signature, SigningKey, VerifyRequest, VerifyingKey};
pub use ipa::{IpaParams, IpaProof};
pub use merkle::{MerkleProof, MerkleTree};
pub use modexp::modexp_on_device;
pub use pedersen::PedersenCommitter;
pub use schnorr::{SchnorrKey, SchnorrSignature};
pub use sha256::sha256;
