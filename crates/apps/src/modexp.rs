//! Modular exponentiation executed multiplication-by-multiplication on
//! the cycle-accurate ModSRAM device — a realistic "chained workload"
//! for the accelerator, with honest LUT-rebuild accounting.
//!
//! Square-and-multiply visits a *different* multiplicand almost every
//! step, so unlike the paper's best case (one `B` reused across a point
//! addition) each step pays a Table 1b refill; this function measures
//! that cost explicitly.

use modsram_bigint::UBig;
use modsram_core::{CoreError, ModSram};
use modsram_modmul::{ModMulError, PreparedModMul};

/// Cycle accounting for one on-device exponentiation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModExpStats {
    /// Modular multiplications executed in-SRAM.
    pub multiplications: u64,
    /// Total multiplication cycles (the `6k − 1` loops).
    pub mul_cycles: u64,
    /// Total precompute cycles (Table 1b refills between steps).
    pub precompute_cycles: u64,
}

impl ModExpStats {
    /// Total device cycles.
    pub fn total_cycles(&self) -> u64 {
        self.mul_cycles + self.precompute_cycles
    }
}

/// Computes `base^exp mod p` on `device` (which must already have `p`
/// loaded), square-and-multiply MSB-first.
///
/// # Errors
///
/// Propagates device errors ([`CoreError::NoModulus`] when no modulus
/// is loaded, divergence under fault injection, …).
pub fn modexp_on_device(
    device: &mut ModSram,
    base: &UBig,
    exp: &UBig,
) -> Result<(UBig, ModExpStats), CoreError> {
    let p = device.modulus().cloned().ok_or(CoreError::NoModulus)?;
    let mut stats = ModExpStats::default();
    if p.is_one() {
        return Ok((UBig::zero(), stats));
    }
    let base = &(base % &p);
    let mut acc = UBig::one();
    for i in (0..exp.bit_len()).rev() {
        let pre_before = device.precompute_total.clone();
        let (sq, run) = device.mod_mul(&acc.clone(), &acc)?;
        stats.multiplications += 1;
        stats.mul_cycles += run.cycles;
        stats.precompute_cycles += device.precompute_total.cycles - pre_before.cycles;
        acc = sq;
        if exp.bit(i) {
            let pre_before = device.precompute_total.clone();
            let (prod, run) = device.mod_mul(&acc, base)?;
            stats.multiplications += 1;
            stats.mul_cycles += run.cycles;
            stats.precompute_cycles += device.precompute_total.cycles - pre_before.cycles;
            acc = prod;
        }
    }
    Ok((acc, stats))
}

/// Computes `base^exp mod p` through any prepared engine context,
/// square-and-multiply MSB-first — the engine-agnostic counterpart of
/// [`modexp_on_device`]. The per-modulus precompute was paid once in
/// `prepare`, so chained workloads only pay the per-squaring work.
///
/// # Errors
///
/// Propagates engine errors (none for the functional engines once the
/// context exists).
pub fn modexp_prepared(
    ctx: &dyn PreparedModMul,
    base: &UBig,
    exp: &UBig,
) -> Result<UBig, ModMulError> {
    let p = ctx.modulus();
    if p.is_one() {
        return Ok(UBig::zero());
    }
    let base = base % p;
    let mut acc = UBig::one();
    for i in (0..exp.bit_len()).rev() {
        acc = ctx.mod_mul(&acc, &acc)?;
        if exp.bit(i) {
            acc = ctx.mod_mul(&acc, &base)?;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsram_bigint::mod_pow;
    use modsram_modmul::{all_engines, ModMulEngine};

    #[test]
    fn matches_reference_modpow() {
        let p = UBig::from(1_000_003u64);
        let mut dev = ModSram::for_modulus(&p).unwrap();
        for (b, e) in [(2u64, 10u64), (7, 100), (999_999, 65537), (0, 5), (5, 0)] {
            let (got, _) = modexp_on_device(&mut dev, &UBig::from(b), &UBig::from(e)).unwrap();
            assert_eq!(
                got,
                mod_pow(&UBig::from(b), &UBig::from(e), &p),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem_on_device() {
        let p = UBig::from(0xffff_fffb_u64);
        let mut dev = ModSram::for_modulus(&p).unwrap();
        let e = &p - &UBig::one();
        let (got, stats) = modexp_on_device(&mut dev, &UBig::from(123_456u64), &e).unwrap();
        assert_eq!(got, UBig::one());
        // 32-bit exponent: 32 squarings + ~31 multiplies.
        assert!(stats.multiplications >= 32);
        assert!(stats.mul_cycles > 0);
    }

    #[test]
    fn precompute_cost_is_visible() {
        // Square-and-multiply changes B almost every step, so the LUT
        // refill cost must show up — the inverse of the paper's reuse
        // claim, measured.
        let p = UBig::from(1_000_003u64);
        let mut dev = ModSram::for_modulus(&p).unwrap();
        let (_, stats) =
            modexp_on_device(&mut dev, &UBig::from(2u64), &UBig::from(1000u64)).unwrap();
        assert!(stats.precompute_cycles > 0);
        assert!(stats.total_cycles() > stats.mul_cycles);
    }

    #[test]
    fn prepared_modexp_matches_reference_for_every_engine() {
        let p = UBig::from(1_000_003u64);
        for engine in all_engines() {
            let ctx = engine.prepare(&p).unwrap();
            for (b, e) in [(2u64, 10u64), (7, 100), (999_999, 65537), (0, 5), (5, 0)] {
                let got = modexp_prepared(ctx.as_ref(), &UBig::from(b), &UBig::from(e)).unwrap();
                assert_eq!(
                    got,
                    mod_pow(&UBig::from(b), &UBig::from(e), &p),
                    "{} b={b} e={e}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn prepared_modexp_on_the_accelerator_context() {
        let p = UBig::from(0xffff_fffb_u64);
        let dev = ModSram::for_modulus(&p).unwrap();
        let ctx = dev.prepare(&p).unwrap();
        let e = &p - &UBig::one();
        // Fermat's little theorem through the prepared device context.
        assert_eq!(
            modexp_prepared(ctx.as_ref(), &UBig::from(123_456u64), &e).unwrap(),
            UBig::one()
        );
    }

    #[test]
    fn exponent_zero_and_one() {
        let p = UBig::from(97u64);
        let mut dev = ModSram::for_modulus(&p).unwrap();
        let (one, stats) = modexp_on_device(&mut dev, &UBig::from(5u64), &UBig::zero()).unwrap();
        assert_eq!(one, UBig::one());
        assert_eq!(stats.multiplications, 0);
        let (five, _) = modexp_on_device(&mut dev, &UBig::from(5u64), &UBig::one()).unwrap();
        assert_eq!(five, UBig::from(5u64));
    }
}
