//! A Bulletproofs-style inner-product argument (IPA) over BN254 —
//! a real zero-knowledge-proof building block assembled from this
//! workspace's MSM/scalar substrate, exactly the workload class the
//! paper's Figure 7 motivates.
//!
//! The prover convinces the verifier that it knows vectors `a, b` with
//!
//! ```text
//! P = ⟨a, G⟩ + ⟨b, H⟩ + ⟨a, b⟩·Q
//! ```
//!
//! using `2·log₂ n` points plus two scalars, by recursively folding the
//! vectors in half under Fiat–Shamir challenges (SHA-256 transcript).
//! This is the non-zero-knowledge core argument (no blinding of the
//! final scalars) — the compression machinery is what exercises the
//! arithmetic; hiding would add one blinded term per round.

use modsram_bigint::{mod_inv, mod_mul, UBig};
use modsram_ecc::curve::{Affine, Curve, Jacobian};
use modsram_ecc::curves::bn254_fast;
use modsram_ecc::scalar::mul_scalar;
use modsram_ecc::{FieldCtx, Fp256Ctx};

use crate::sha256::sha256;

type El = <Fp256Ctx as FieldCtx>::El;

/// Public parameters: `n` G-bases, `n` H-bases, and the Q base.
pub struct IpaParams {
    curve: Curve<Fp256Ctx>,
    g_vec: Vec<Jacobian<El>>,
    h_vec: Vec<Jacobian<El>>,
    q: Jacobian<El>,
}

impl core::fmt::Debug for IpaParams {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "IpaParams {{ n: {} }}", self.g_vec.len())
    }
}

/// An inner-product proof: one (L, R) pair per folding round plus the
/// final opened scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct IpaProof {
    /// Left cross terms, one per round.
    pub l_points: Vec<Affine<El>>,
    /// Right cross terms, one per round.
    pub r_points: Vec<Affine<El>>,
    /// Final folded `a` scalar.
    pub a_final: UBig,
    /// Final folded `b` scalar.
    pub b_final: UBig,
}

impl IpaProof {
    /// Proof size in group elements (the `2·log₂ n` compression).
    pub fn group_elements(&self) -> usize {
        self.l_points.len() + self.r_points.len()
    }
}

fn derive_base(curve: &Curve<Fp256Ctx>, tag: &[u8], index: u64) -> Jacobian<El> {
    let mut input = tag.to_vec();
    input.extend_from_slice(&index.to_be_bytes());
    let mut k = UBig::zero();
    for byte in sha256(&input) {
        k = &(&k << 8) + &UBig::from(byte as u64);
    }
    let k = &(&k % &(curve.order() - &UBig::one())) + &UBig::one();
    mul_scalar(curve, &curve.generator(), &k)
}

/// Fiat–Shamir transcript over SHA-256.
struct Transcript {
    state: Vec<u8>,
}

impl Transcript {
    fn new(tag: &[u8]) -> Self {
        Transcript {
            state: tag.to_vec(),
        }
    }

    fn absorb_point(&mut self, curve: &Curve<Fp256Ctx>, p: &Affine<El>) {
        match curve.compress(p) {
            Some((x, odd)) => {
                for i in (0..32).rev() {
                    self.state.push(((&x >> (8 * i)).low_u64() & 0xff) as u8);
                }
                self.state.push(odd as u8);
            }
            None => self.state.push(0xff),
        }
    }

    /// A non-zero challenge scalar in `[1, order)`.
    fn challenge(&mut self, order: &UBig) -> UBig {
        loop {
            let digest = sha256(&self.state);
            self.state.extend_from_slice(&digest);
            let mut z = UBig::zero();
            for byte in digest {
                z = &(&z << 8) + &UBig::from(byte as u64);
            }
            let z = &z % order;
            if !z.is_zero() {
                return z;
            }
        }
    }
}

impl IpaParams {
    /// Derives parameters for vectors of length `n` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize, tag: &[u8]) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "n must be a power of two");
        let curve = bn254_fast();
        let g_vec = (0..n as u64).map(|i| derive_base(&curve, tag, i)).collect();
        let h_vec = (0..n as u64)
            .map(|i| derive_base(&curve, tag, 1000 + i))
            .collect();
        let q = derive_base(&curve, tag, u64::MAX);
        IpaParams {
            curve,
            g_vec,
            h_vec,
            q,
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.g_vec.len()
    }

    /// The commitment `P = ⟨a, G⟩ + ⟨b, H⟩ + ⟨a, b⟩·Q`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match `n`.
    pub fn commit(&self, a: &[UBig], b: &[UBig]) -> Jacobian<El> {
        assert_eq!(a.len(), self.n(), "a length");
        assert_eq!(b.len(), self.n(), "b length");
        let r = self.curve.order().clone();
        let mut acc = self.curve.identity();
        for (ai, gi) in a.iter().zip(&self.g_vec) {
            acc = self
                .curve
                .add(&acc, &mul_scalar(&self.curve, gi, &(ai % &r)));
        }
        for (bi, hi) in b.iter().zip(&self.h_vec) {
            acc = self
                .curve
                .add(&acc, &mul_scalar(&self.curve, hi, &(bi % &r)));
        }
        let ip = inner_product(a, b, &r);
        self.curve.add(&acc, &mul_scalar(&self.curve, &self.q, &ip))
    }

    /// Produces the proof for `(a, b)` — the prover side.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match `n`.
    pub fn prove(&self, a: &[UBig], b: &[UBig]) -> IpaProof {
        assert_eq!(a.len(), self.n(), "a length");
        assert_eq!(b.len(), self.n(), "b length");
        let r = self.curve.order().clone();
        let curve = &self.curve;
        let mut a: Vec<UBig> = a.iter().map(|v| v % &r).collect();
        let mut b: Vec<UBig> = b.iter().map(|v| v % &r).collect();
        let mut g = self.g_vec.clone();
        let mut h = self.h_vec.clone();
        let mut transcript = Transcript::new(b"modsram-ipa");
        let mut l_points = Vec::new();
        let mut r_points = Vec::new();

        while a.len() > 1 {
            let half = a.len() / 2;
            let (a_lo, a_hi) = a.split_at(half);
            let (b_lo, b_hi) = b.split_at(half);
            let (g_lo, g_hi) = g.split_at(half);
            let (h_lo, h_hi) = h.split_at(half);

            // L = ⟨a_lo, G_hi⟩ + ⟨b_hi, H_lo⟩ + ⟨a_lo, b_hi⟩·Q
            let mut l = curve.identity();
            for (ai, gi) in a_lo.iter().zip(g_hi) {
                l = curve.add(&l, &mul_scalar(curve, gi, ai));
            }
            for (bi, hi) in b_hi.iter().zip(h_lo) {
                l = curve.add(&l, &mul_scalar(curve, hi, bi));
            }
            l = curve.add(
                &l,
                &mul_scalar(curve, &self.q, &inner_product(a_lo, b_hi, &r)),
            );
            // R = ⟨a_hi, G_lo⟩ + ⟨b_lo, H_hi⟩ + ⟨a_hi, b_lo⟩·Q
            let mut rr = curve.identity();
            for (ai, gi) in a_hi.iter().zip(g_lo) {
                rr = curve.add(&rr, &mul_scalar(curve, gi, ai));
            }
            for (bi, hi) in b_lo.iter().zip(h_hi) {
                rr = curve.add(&rr, &mul_scalar(curve, hi, bi));
            }
            rr = curve.add(
                &rr,
                &mul_scalar(curve, &self.q, &inner_product(a_hi, b_lo, &r)),
            );

            let l_aff = curve.to_affine(&l);
            let r_aff = curve.to_affine(&rr);
            transcript.absorb_point(curve, &l_aff);
            transcript.absorb_point(curve, &r_aff);
            let x = transcript.challenge(&r);
            let x_inv = mod_inv(&x, &r).expect("prime order");

            // Fold everything.
            a = fold_scalars(a_lo, a_hi, &x, &x_inv, &r);
            b = fold_scalars(b_lo, b_hi, &x_inv, &x, &r);
            g = fold_points(curve, g_lo, g_hi, &x_inv, &x);
            h = fold_points(curve, h_lo, h_hi, &x, &x_inv);

            l_points.push(l_aff);
            r_points.push(r_aff);
        }

        IpaProof {
            l_points,
            r_points,
            a_final: a[0].clone(),
            b_final: b[0].clone(),
        }
    }

    /// Verifies a proof against commitment `p` — the verifier side.
    pub fn verify(&self, p: &Jacobian<El>, proof: &IpaProof) -> bool {
        let rounds = (self.n() as f64).log2() as usize;
        if proof.l_points.len() != rounds || proof.r_points.len() != rounds {
            return false;
        }
        let r = self.curve.order().clone();
        let curve = &self.curve;
        let mut transcript = Transcript::new(b"modsram-ipa");
        let mut g = self.g_vec.clone();
        let mut h = self.h_vec.clone();
        let mut p_acc = p.clone();

        for (l_aff, r_aff) in proof.l_points.iter().zip(&proof.r_points) {
            transcript.absorb_point(curve, l_aff);
            transcript.absorb_point(curve, r_aff);
            let x = transcript.challenge(&r);
            let x_inv = mod_inv(&x, &r).expect("prime order");
            let x2 = mod_mul(&x, &x, &r);
            let x2_inv = mod_mul(&x_inv, &x_inv, &r);

            // P' = x²·L + P + x⁻²·R
            let l = curve.from_affine(l_aff);
            let rr = curve.from_affine(r_aff);
            p_acc = curve.add(
                &curve.add(&mul_scalar(curve, &l, &x2), &p_acc),
                &mul_scalar(curve, &rr, &x2_inv),
            );
            let half = g.len() / 2;
            let (g_lo, g_hi) = g.split_at(half);
            let (h_lo, h_hi) = h.split_at(half);
            g = fold_points(curve, g_lo, g_hi, &x_inv, &x);
            h = fold_points(curve, h_lo, h_hi, &x, &x_inv);
        }

        // Final check: P' == a·G + b·H + a·b·Q.
        let ab = mod_mul(&proof.a_final, &proof.b_final, &r);
        let rhs = curve.add(
            &curve.add(
                &mul_scalar(curve, &g[0], &proof.a_final),
                &mul_scalar(curve, &h[0], &proof.b_final),
            ),
            &mul_scalar(curve, &self.q, &ab),
        );
        curve.points_equal(&p_acc, &rhs)
    }
}

fn inner_product(a: &[UBig], b: &[UBig], r: &UBig) -> UBig {
    let mut acc = UBig::zero();
    for (x, y) in a.iter().zip(b) {
        acc = &(&acc + &mod_mul(x, y, r)) % r;
    }
    acc
}

fn fold_scalars(lo: &[UBig], hi: &[UBig], x_lo: &UBig, x_hi: &UBig, r: &UBig) -> Vec<UBig> {
    lo.iter()
        .zip(hi)
        .map(|(l, h)| &(&mod_mul(l, x_lo, r) + &mod_mul(h, x_hi, r)) % r)
        .collect()
}

fn fold_points(
    curve: &Curve<Fp256Ctx>,
    lo: &[Jacobian<El>],
    hi: &[Jacobian<El>],
    x_lo: &UBig,
    x_hi: &UBig,
) -> Vec<Jacobian<El>> {
    lo.iter()
        .zip(hi)
        .map(|(l, h)| curve.add(&mul_scalar(curve, l, x_lo), &mul_scalar(curve, h, x_hi)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(n: usize) -> (Vec<UBig>, Vec<UBig>) {
        let a = (0..n as u64).map(|i| UBig::from(3 * i + 7)).collect();
        let b = (0..n as u64).map(|i| UBig::from(11 * i + 1)).collect();
        (a, b)
    }

    #[test]
    fn completeness_across_sizes() {
        for n in [1usize, 2, 4, 8] {
            let params = IpaParams::new(n, b"test");
            let (a, b) = vectors(n);
            let commitment = params.commit(&a, &b);
            let proof = params.prove(&a, &b);
            assert!(params.verify(&commitment, &proof), "n={n}");
            assert_eq!(proof.group_elements(), 2 * n.ilog2() as usize);
        }
    }

    #[test]
    fn wrong_commitment_rejected() {
        let params = IpaParams::new(4, b"test");
        let (a, b) = vectors(4);
        let proof = params.prove(&a, &b);
        let mut other = a.clone();
        other[0] = UBig::from(999u64);
        let wrong_commitment = params.commit(&other, &b);
        assert!(!params.verify(&wrong_commitment, &proof));
    }

    #[test]
    fn tampered_proof_rejected() {
        let params = IpaParams::new(4, b"test");
        let (a, b) = vectors(4);
        let commitment = params.commit(&a, &b);
        let mut proof = params.prove(&a, &b);
        proof.a_final = &proof.a_final + &UBig::one();
        assert!(!params.verify(&commitment, &proof));

        let mut proof2 = params.prove(&a, &b);
        proof2.l_points.swap(0, 1);
        assert!(!params.verify(&commitment, &proof2));
    }

    #[test]
    fn wrong_round_count_rejected() {
        let params = IpaParams::new(4, b"test");
        let (a, b) = vectors(4);
        let commitment = params.commit(&a, &b);
        let mut proof = params.prove(&a, &b);
        proof.l_points.pop();
        assert!(!params.verify(&commitment, &proof));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        IpaParams::new(3, b"test");
    }
}
