//! Cluster hardening: deterministic fault injection (a panicking tile
//! fails only its batch's tickets and gets routed around), forced
//! backpressure (spill lands on the least-loaded tile; `Strict`
//! surfaces `AllTilesSaturated`), and a concurrent soak in which a
//! mid-stream `shutdown()` must drain every accepted ticket exactly
//! once.

use std::time::Duration;

use modsram_bigint::UBig;
use modsram_core::cluster::{
    home_tile_for, ClusterConfig, ClusterSubmitError, ServiceCluster, SpillPolicy,
};
use modsram_core::dispatch::{ContextPool, MulJob};
use modsram_core::service::{ServiceConfig, ServiceError, Ticket};
use modsram_core::test_util::{failing_pool, slow_pool, FailureMode};

fn oracle(job: &MulJob) -> UBig {
    &(&job.a * &job.b) % &job.modulus
}

/// The first odd modulus from `seed_base` upward whose rendezvous home
/// in a cluster of `tiles` is `tile` — computed with the standalone
/// planner, no live cluster needed.
fn modulus_homed_on(tile: usize, tiles: usize, seed_base: u64) -> UBig {
    (0..64u64)
        .map(|i| UBig::from(seed_base + 2 * i))
        .find(|p| home_tile_for(p, tiles) == Some(tile))
        .unwrap_or_else(|| panic!("no probed modulus homes on tile {tile}"))
}

/// Builds a 2-tile cluster where the sick pool sits on tile 0 and the
/// other tile is a healthy Barrett tile, returning it with a modulus
/// whose natural home is the sick tile.
fn two_tiles_one_sick(
    sick_pool: ContextPool,
    config: ClusterConfig,
) -> (ServiceCluster, UBig, usize) {
    let sick = 0;
    let modulus = modulus_homed_on(sick, 2, 1_000_003);
    let healthy = ContextPool::for_engine_name("barrett").unwrap();
    let cluster = ServiceCluster::new(vec![sick_pool, healthy], config);
    assert_eq!(cluster.home_tile(&modulus), Some(sick));
    (cluster, modulus, sick)
}

fn tiny_tile_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 2,
        flush_interval: Duration::ZERO,
        pipeline_depth: 1,
        ..Default::default()
    }
}

#[test]
fn tile_panic_fails_only_its_batch_and_gets_routed_around() {
    let config = ClusterConfig {
        spill: SpillPolicy::Spill { max_hops: 1 },
        service: tiny_tile_config(),
        poison_after: 2,
        ..Default::default()
    };
    // The sick tile panics on every multiplication from the first call.
    let (cluster, modulus, sick) = two_tiles_one_sick(failing_pool(1, FailureMode::Panic), config);
    let healthy_tile = 1 - sick;
    let job = |i: u64| MulJob::new(UBig::from(i + 2), UBig::from(i + 3), modulus.clone());

    // Phase 1: jobs routed to the sick tile fail their tickets (no
    // hang — the panic guard delivers) while a healthy-homed modulus
    // is untouched by the neighbour's panics.
    let healthy_modulus = modulus_homed_on(healthy_tile, 2, 2_000_003);
    for i in 0..2u64 {
        let sick_ticket = cluster.submit(job(i)).unwrap();
        assert_eq!(
            sick_ticket.wait(),
            Err(ServiceError::Stopped),
            "panicked batch must fail its tickets, not hang"
        );
        let ok_job = MulJob::new(
            UBig::from(i + 7),
            UBig::from(i + 9),
            healthy_modulus.clone(),
        );
        let want = oracle(&ok_job);
        let ok_ticket = cluster.submit(ok_job).unwrap();
        assert_eq!(ok_ticket.wait().unwrap(), want, "healthy tile unaffected");
    }

    // Phase 2: the sick tile has now caught >= poison_after panics, so
    // the router fails its moduli over to the healthy tile — later
    // jobs for the same modulus succeed.
    let mut stats = cluster.stats();
    assert!(
        stats.tiles[sick].service.executor_panics >= 2,
        "panic guard counted the unwinds"
    );
    assert!(stats.tiles[sick].poisoned, "tile marked poisoned");
    for i in 10..20u64 {
        let j = job(i);
        let want = oracle(&j);
        let ticket = cluster.submit(j).unwrap();
        assert_eq!(
            ticket.wait().unwrap(),
            want,
            "poisoned tile must be routed around"
        );
    }
    stats = cluster.stats();
    assert!(
        stats.spilled >= 10,
        "failover jobs counted as off-home placements ({} spilled)",
        stats.spilled
    );
    assert_eq!(stats.tiles[sick].service.completed, 0);

    let final_stats = cluster.shutdown();
    assert_eq!(final_stats.failed, 2, "exactly the two panicked-batch jobs");
    assert_eq!(final_stats.completed, final_stats.submitted - 2);
}

#[test]
fn error_mode_fails_only_jobs_from_the_kth_call_on() {
    // The polite failure mode: calls from the k-th on return an error
    // instead of panicking; each failing job gets its own error
    // verdict and earlier jobs are untouched. One-job batches keep the
    // call numbering deterministic (a failed multi-job batch would be
    // re-run per job by the service's fallback, shifting the count).
    let config = ClusterConfig {
        spill: SpillPolicy::Strict,
        service: tiny_tile_config_with_batch(1),
        poison_after: 0,
        ..Default::default()
    };
    let cluster = ServiceCluster::new(vec![failing_pool(3, FailureMode::Error)], config);
    let p = UBig::from(97u64);
    let tickets: Vec<Ticket> = (0..5u64)
        .map(|i| {
            cluster
                .submit(MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone()))
                .unwrap()
        })
        .collect();
    let outcomes: Vec<bool> = tickets.iter().map(|t| t.wait().is_ok()).collect();
    let stats = cluster.shutdown();
    // Calls 1 and 2 (jobs 0 and 1) succeed; job 2 trips the fuse and
    // every later call keeps failing.
    assert_eq!(outcomes, vec![true, true, false, false, false]);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 3);
    assert_eq!(
        stats.tiles[0].service.executor_panics, 0,
        "error mode never unwinds"
    );
}

fn tiny_tile_config_with_batch(max_batch: usize) -> ServiceConfig {
    ServiceConfig {
        max_batch,
        ..tiny_tile_config()
    }
}

#[test]
fn backpressure_spills_to_least_loaded_tile_and_strict_saturates() {
    // Two deliberately slow tiles, tiny queues: the home tile jams
    // after a couple of jobs, so non-blocking submissions must spill.
    let slow_config = ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        max_batch: 1,
        flush_interval: Duration::ZERO,
        pipeline_depth: 1,
        ..Default::default()
    };
    let config = ClusterConfig {
        spill: SpillPolicy::Spill { max_hops: 1 },
        service: slow_config.clone(),
        poison_after: 0,
        ..Default::default()
    };
    let delay = Duration::from_millis(25);
    let cluster = ServiceCluster::new(vec![slow_pool(delay), slow_pool(delay)], config);
    let p = modulus_homed_on(0, 2, 1_000_003);
    let job = |i: u64| MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone());

    // Offered burst >> capacity of both tiles: accepts fill the home
    // tile, spill to tile 1, then saturate.
    let mut tickets = Vec::new();
    let mut saturated = 0u64;
    for i in 0..32u64 {
        match cluster.try_submit(job(i)) {
            Ok(t) => tickets.push((i, t)),
            Err(ClusterSubmitError::AllTilesSaturated { tried }) => {
                assert_eq!(tried, 2, "home plus one spill hop");
                saturated += 1;
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert!(saturated > 0, "burst must exhaust both tiny queues");

    let stats = cluster.stats();
    assert!(
        stats.spilled > 0,
        "home-tile QueueFull must spill to the other tile"
    );
    assert_eq!(stats.saturated_rejections, saturated);
    assert!(stats.tiles[1].spilled_in > 0, "tile 1 took the spill");

    // Every accepted ticket completes with the right product.
    for (i, ticket) in &tickets {
        assert_eq!(ticket.wait().unwrap(), oracle(&job(*i)), "job {i}");
    }
    let final_stats = cluster.shutdown();
    assert_eq!(final_stats.completed as usize, tickets.len());
    assert_eq!(final_stats.failed, 0);

    // Strict policy, same pressure: no spilling — the home tile fills
    // and every further non-blocking submission is refused as
    // AllTilesSaturated{tried: 1} while the other tile sits idle.
    let strict = ClusterConfig {
        spill: SpillPolicy::Strict,
        service: slow_config,
        poison_after: 0,
        ..Default::default()
    };
    let cluster = ServiceCluster::new(vec![slow_pool(delay), slow_pool(delay)], strict);
    let p = modulus_homed_on(0, 2, 1_000_003);
    let mut accepted = 0u64;
    let mut strict_saturated = 0u64;
    for i in 0..32u64 {
        match cluster.try_submit(MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone())) {
            Ok(_) => accepted += 1,
            Err(ClusterSubmitError::AllTilesSaturated { tried }) => {
                assert_eq!(tried, 1, "Strict only ever tries the home tile");
                strict_saturated += 1;
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert!(strict_saturated > 0);
    let stats = cluster.shutdown();
    assert_eq!(stats.spilled, 0, "Strict never spills");
    assert_eq!(stats.tiles[1].service.submitted, 0, "off-home tile idle");
    assert_eq!(stats.completed, accepted);
}

#[test]
fn soak_shutdown_mid_stream_drains_every_ticket_exactly_once() {
    // 4 submitter threads x 3 tiles x 5 moduli; the main thread pulls
    // the plug mid-stream. Every accepted ticket must complete exactly
    // once (tile counters sum to the accepted count) and none may be
    // left pending — the promoted, cluster-wide version of the
    // single-tile shutdown-drains test.
    let cluster = ServiceCluster::for_engine_name(
        "montgomery",
        3,
        ClusterConfig {
            spill: SpillPolicy::Spill { max_hops: 2 },
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 128,
                max_batch: 16,
                flush_interval: Duration::from_micros(100),
                ..Default::default()
            },
            poison_after: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let moduli: Vec<UBig> = [97u64, 1_000_003, 999_979, 0xffff_fffb, 2_000_003]
        .map(UBig::from)
        .to_vec();
    let all_tickets: std::sync::Mutex<Vec<(MulJob, Ticket)>> = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let handle = cluster.handle();
            let moduli = &moduli;
            let all_tickets = &all_tickets;
            scope.spawn(move || {
                let mut tickets: Vec<(MulJob, Ticket)> = Vec::new();
                for i in 0..10_000u64 {
                    let p = moduli[((t + i) % 5) as usize].clone();
                    let job = MulJob::new(
                        UBig::from(t * 1_000_003 + i * 17 + 1),
                        UBig::from(t * 999_979 + i * 31 + 2),
                        p,
                    );
                    match handle.submit(job.clone()) {
                        Ok(ticket) => tickets.push((job, ticket)),
                        Err(ClusterSubmitError::Stopped) => break,
                        Err(e) => panic!("blocking submit never saturates: {e}"),
                    }
                }
                all_tickets.lock().unwrap().extend(tickets);
            });
        }
        // Let the submitters build up real in-flight depth, then pull
        // the plug while they are mid-stream. `shutdown` returns only
        // after every tile has drained.
        std::thread::sleep(Duration::from_millis(40));
        cluster.shutdown();
    });

    // `shutdown()` has returned: every accepted ticket must already be
    // delivered — redeeming it now must never block.
    let tickets = all_tickets.into_inner().unwrap();
    let accepted = tickets.len() as u64;
    for (job, ticket) in &tickets {
        assert!(ticket.is_done(), "shutdown returned with a pending ticket");
        assert_eq!(ticket.wait().unwrap(), oracle(job));
    }
    let stats = cluster.stats();
    assert!(accepted > 0, "soak accepted no work");
    assert_eq!(
        stats.completed + stats.failed,
        accepted,
        "every accepted ticket completed exactly once (no leak, no double-complete)"
    );
    assert_eq!(stats.failed, 0, "all moduli are montgomery-valid");
    assert_eq!(stats.submitted, accepted);
    // Every tile's queue fully drained.
    for (i, tile) in stats.tiles.iter().enumerate() {
        assert_eq!(tile.service.queue_depth, 0, "tile {i} queue not drained");
        assert_eq!(
            tile.service.completed + tile.service.failed,
            tile.service.submitted,
            "tile {i} leaked tickets"
        );
    }
}

#[test]
fn reset_window_clears_coalesce_and_latency_but_not_lifetime_counters() {
    let cluster = ServiceCluster::for_engine_name(
        "barrett",
        2,
        ClusterConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 4,
                flush_interval: Duration::from_micros(20),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let p = UBig::from(1_000_003u64);
    let tickets: Vec<Ticket> = (0..20u64)
        .map(|i| {
            cluster
                .submit(MulJob::new(UBig::from(i + 1), UBig::from(i + 2), p.clone()))
                .unwrap()
        })
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    let before = cluster.stats();
    let home = cluster.home_tile(&p).expect("a routable tile homes p");
    assert!(before.tiles[home].service.coalesce_max > 0);
    assert!(before.tiles[home].service.wall_p99_ns > 0);

    cluster.reset_window();
    let after = cluster.stats();
    let svc = &after.tiles[home].service;
    // Window metrics cleared...
    assert_eq!(svc.coalesce_min, 0);
    assert_eq!(svc.coalesce_max, 0);
    assert_eq!(svc.coalesce_mean, 0.0);
    assert_eq!(svc.wall_p50_ns, 0);
    assert_eq!(svc.wall_p99_ns, 0);
    assert_eq!(svc.modelled_p99_cycles, 0);
    // ...lifetime counters kept.
    assert_eq!(svc.completed, before.tiles[home].service.completed);
    assert_eq!(svc.batches, before.tiles[home].service.batches);
    assert_eq!(
        svc.modelled_cycles_total,
        before.tiles[home].service.modelled_cycles_total
    );
    assert_eq!(after.submitted, 20);

    // A fresh window fills with fresh observations.
    let t = cluster
        .submit(MulJob::new(UBig::from(3u64), UBig::from(4u64), p.clone()))
        .unwrap();
    t.wait().unwrap();
    cluster.shutdown();
    let last = cluster.stats();
    assert!(last.tiles[home].service.coalesce_max >= 1);
    assert_eq!(last.completed, 21);
}
