//! Runtime elasticity: membership change under load. The proptest
//! pins the minimal-disruption re-homing property (a drain moves
//! exactly the drained tile's moduli), the soak drains a tile
//! mid-stream without losing a single accepted ticket, and the
//! lifecycle test walks drain → probation → re-admission → add
//! through the public API.

use std::time::Duration;

use modsram_bigint::UBig;
use modsram_core::cluster::{
    home_tile_for, rendezvous_ranking, weighted_home_tile_for, weighted_rendezvous_ranking,
    ClusterConfig, ServiceCluster, SpillPolicy, TileState,
};
use modsram_core::dispatch::MulJob;
use modsram_core::service::{ModSramService, ServiceConfig, Ticket};
use modsram_core::test_util::slow_pool;
use modsram_core::CoreError;
use proptest::prelude::*;

fn oracle(job: &MulJob) -> UBig {
    &(&job.a * &job.b) % &job.modulus
}

fn quick_config() -> ClusterConfig {
    ClusterConfig {
        service: ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 8,
            flush_interval: Duration::ZERO,
            pipeline_depth: 1,
            ..Default::default()
        },
        probation_after: 2,
        ..Default::default()
    }
}

proptest! {
    // Each case stands up (and tears down) a live cluster; keep the
    // case count modest — the property space is (tiles × drained ×
    // modulus offset), and 24 cases cover it densely.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **The minimal-disruption property.** Draining tile `d` re-homes
    /// exactly the moduli whose rendezvous rank-0 was `d` — each to
    /// its rank-1 tile — and every other modulus keeps its home. This
    /// is what makes live membership change affordable: a drain costs
    /// `~1/active` of the moduli one cold context preparation, never a
    /// global reshuffle.
    #[test]
    fn drain_rehomes_exactly_the_drained_tiles_moduli(
        tiles in 2usize..=5,
        drained in 0usize..5,
        offset in 0u64..1000,
    ) {
        let drained = drained % tiles;
        let cluster = ServiceCluster::for_engine_name("barrett", tiles, quick_config()).unwrap();
        let moduli: Vec<UBig> = (0..40u64)
            .map(|i| UBig::from(2 * (offset + i) + 101))
            .collect();
        let before: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
        // The live router agrees with the standalone planner while
        // every tile is routable.
        for (p, &b) in moduli.iter().zip(&before) {
            prop_assert_eq!(b, home_tile_for(p, tiles));
        }
        let report = cluster.drain_tile(drained).unwrap();
        prop_assert_eq!(report.active_tiles, tiles - 1);
        prop_assert_eq!(cluster.tile_state(drained), Some(TileState::Drained));
        for (i, p) in moduli.iter().enumerate() {
            let after = cluster.home_tile(p);
            if before[i] == Some(drained) {
                // Moved — and precisely to its rank-1 tile, the next
                // entry of the full rendezvous ranking.
                let ranking = rendezvous_ranking(p, tiles);
                prop_assert_eq!(ranking[0], drained);
                prop_assert_eq!(
                    after, Some(ranking[1]),
                    "modulus {} must fail over to its rank-1 tile", i
                );
            } else {
                prop_assert_eq!(
                    after, before[i],
                    "modulus {} was not homed on the drained tile and must not move", i
                );
            }
        }
        cluster.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Equal weights are the legacy planner.** The weighted
    /// rendezvous score is calibrated so a uniform weight vector —
    /// any uniform value, not just 1 — reproduces the unweighted
    /// placement ranking exactly. This is what makes adopting
    /// weights free: publishing a uniform-weight membership moves
    /// zero moduli.
    #[test]
    fn all_equal_weights_reproduce_the_unweighted_planner(
        tiles in 1usize..=8,
        w in 1u32..1000,
        offset in 0u64..10_000,
    ) {
        // Cover the extremes too: the calibration must hold at any
        // uniform magnitude, including saturating weights.
        for weights in [vec![w; tiles], vec![u32::MAX; tiles]] {
            for i in 0..16u64 {
                let p = UBig::from(2 * (offset + i) + 3);
                prop_assert_eq!(weighted_home_tile_for(&p, &weights), home_tile_for(&p, tiles));
                prop_assert_eq!(
                    weighted_rendezvous_ranking(&p, &weights),
                    rendezvous_ranking(&p, tiles)
                );
            }
        }
    }

    /// **Monotonicity.** Raising one tile's weight only ever pulls
    /// moduli onto that tile — a modulus already homed there never
    /// leaves, and no modulus moves between two *other* tiles. This
    /// bounds the re-home cost of a capacity upgrade to the moduli
    /// the upgraded tile wins.
    #[test]
    fn raising_one_tiles_weight_never_moves_a_modulus_away(
        tiles in 2usize..=6,
        raised in 0usize..6,
        mult in 2u32..=64,
        offset in 0u64..10_000,
    ) {
        let raised = raised % tiles;
        let before = vec![1u32; tiles];
        let mut after = before.clone();
        after[raised] = mult;
        for i in 0..16u64 {
            let p = UBig::from(2 * (offset + i) + 3);
            let b = weighted_home_tile_for(&p, &before);
            let a = weighted_home_tile_for(&p, &after);
            if b == Some(raised) {
                prop_assert_eq!(a, Some(raised), "a raised tile never loses a modulus");
            } else {
                prop_assert!(
                    a == b || a == Some(raised),
                    "a modulus may only move TO the raised tile (was {:?}, now {:?})",
                    b,
                    a
                );
            }
        }
    }
}

proptest! {
    // Each case stands up a live cluster, so keep the count modest —
    // the property is exact (zero rehomed), not statistical.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// **A weight-1 republish is a placement no-op.** Re-publishing a
    /// tile's existing weight bumps the membership epoch but re-homes
    /// nothing — the live-cluster twin of
    /// `all_equal_weights_reproduce_the_unweighted_planner`.
    #[test]
    fn weight_one_republish_rehomes_nothing(
        tiles in 1usize..=4,
        tile in 0usize..4,
        offset in 0u64..1000,
    ) {
        let tile = tile % tiles;
        let cluster = ServiceCluster::for_engine_name("barrett", tiles, quick_config()).unwrap();
        // Track some moduli so the re-home pass has homes to recount.
        for i in 0..12u64 {
            let p = UBig::from(2 * (offset + i) + 101);
            cluster
                .submit(MulJob::new(UBig::from(7u64), UBig::from(9u64), p))
                .unwrap()
                .wait()
                .unwrap();
        }
        let epoch0 = cluster.membership_epoch();
        let change = cluster.set_tile_weight(tile, 1).unwrap();
        prop_assert!(change.epoch > epoch0, "a republish is a real epoch");
        prop_assert_eq!(change.rehomed_moduli, 0, "uniform weights move nothing");
        cluster.shutdown();
    }
}

#[test]
fn reweigh_mid_stream_loses_no_accepted_ticket() {
    // The weighted twin of `drain_mid_stream_loses_no_accepted_ticket`:
    // 4 submitter threads stream against a 4-tile cluster while the
    // main thread doubles one tile's weight (a live capacity upgrade)
    // and then publishes it back to 1. Every accepted ticket must
    // complete exactly once with the right product — jobs in flight
    // keep routing against their consistent membership snapshot.
    let cluster = ServiceCluster::for_engine_name(
        "montgomery",
        4,
        ClusterConfig {
            spill: SpillPolicy::Spill { max_hops: 2 },
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 128,
                max_batch: 16,
                flush_interval: Duration::from_micros(100),
                ..Default::default()
            },
            probation_after: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let moduli: Vec<UBig> = [97u64, 1_000_003, 999_979, 0xffff_fffb, 2_000_003, 750_019]
        .map(UBig::from)
        .to_vec();
    // Raise a tile that does NOT home tenant 0, so the upgrade can
    // actually pull moduli onto it.
    let home0 = cluster
        .home_tile(&moduli[0])
        .expect("a routable tile homes tenant 0");
    let upgraded = (home0 + 1) % 4;
    let all_tickets: std::sync::Mutex<Vec<(MulJob, Ticket)>> = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let handle = cluster.handle();
            let moduli = &moduli;
            let all_tickets = &all_tickets;
            scope.spawn(move || {
                let mut tickets: Vec<(MulJob, Ticket)> = Vec::new();
                for i in 0..4_000u64 {
                    let p = moduli[((t + i) % 6) as usize].clone();
                    let job = MulJob::new(
                        UBig::from(t * 1_000_003 + i * 17 + 1),
                        UBig::from(t * 999_979 + i * 31 + 2),
                        p,
                    );
                    match handle.submit(job.clone()) {
                        Ok(ticket) => tickets.push((job, ticket)),
                        // A reweigh must be invisible to producers.
                        Err(e) => panic!("submit failed during a reweigh: {e}"),
                    }
                }
                all_tickets.lock().unwrap().extend(tickets);
            });
        }
        // Let the submitters build real in-flight depth, then flip the
        // weight up and back down under load.
        std::thread::sleep(Duration::from_millis(10));
        let up = cluster
            .set_tile_weight(upgraded, 8)
            .expect("live reweigh succeeds");
        assert_eq!(cluster.tile_weight(upgraded), Some(8));
        std::thread::sleep(Duration::from_millis(10));
        let down = cluster
            .set_tile_weight(upgraded, 1)
            .expect("live reweigh back succeeds");
        assert!(down.epoch > up.epoch, "each publish is one atomic epoch");
    });

    // Every accepted ticket redeems exactly once, correctly.
    let tickets = all_tickets.into_inner().unwrap();
    let accepted = tickets.len() as u64;
    assert_eq!(accepted, 16_000, "every submission was accepted");
    for (job, ticket) in &tickets {
        assert_eq!(ticket.wait().unwrap(), oracle(job));
    }
    let stats = cluster.stats();
    assert_eq!(
        stats.completed + stats.failed,
        accepted,
        "every accepted ticket completed exactly once (no leak, no double-complete)"
    );
    assert_eq!(stats.failed, 0, "all moduli are montgomery-valid");
    assert_eq!(
        stats.tiles.iter().map(|t| t.weight).collect::<Vec<_>>(),
        vec![1, 1, 1, 1],
        "the fleet ended uniform again"
    );
    cluster.shutdown();
}

#[test]
fn drain_mid_stream_loses_no_accepted_ticket() {
    // 4 submitter threads stream against a 4-tile cluster; the main
    // thread drains one tile while they are mid-stream. Every accepted
    // ticket must complete exactly once with the right product —
    // drained-tile jobs via its paused-queue drain, re-routed jobs on
    // the survivors.
    let cluster = ServiceCluster::for_engine_name(
        "montgomery",
        4,
        ClusterConfig {
            spill: SpillPolicy::Spill { max_hops: 2 },
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 128,
                max_batch: 16,
                flush_interval: Duration::from_micros(100),
                ..Default::default()
            },
            probation_after: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let moduli: Vec<UBig> = [97u64, 1_000_003, 999_979, 0xffff_fffb, 2_000_003, 750_019]
        .map(UBig::from)
        .to_vec();
    // Drain a tile that actually homes at least one tenant, so the
    // drain forces a live re-home, not a no-op.
    let victim = cluster
        .home_tile(&moduli[0])
        .expect("a routable tile homes modulus 0");
    let all_tickets: std::sync::Mutex<Vec<(MulJob, Ticket)>> = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let handle = cluster.handle();
            let moduli = &moduli;
            let all_tickets = &all_tickets;
            scope.spawn(move || {
                let mut tickets: Vec<(MulJob, Ticket)> = Vec::new();
                for i in 0..4_000u64 {
                    let p = moduli[((t + i) % 6) as usize].clone();
                    let job = MulJob::new(
                        UBig::from(t * 1_000_003 + i * 17 + 1),
                        UBig::from(t * 999_979 + i * 31 + 2),
                        p,
                    );
                    match handle.submit(job.clone()) {
                        Ok(ticket) => tickets.push((job, ticket)),
                        // Only a full shutdown may refuse — a drain
                        // must be invisible to producers.
                        Err(e) => panic!("submit failed during a drain: {e}"),
                    }
                }
                all_tickets.lock().unwrap().extend(tickets);
            });
        }
        // Let the submitters build real in-flight depth, then drain
        // the victim tile under load.
        std::thread::sleep(Duration::from_millis(15));
        let report = cluster.drain_tile(victim).expect("live drain succeeds");
        assert_eq!(report.active_tiles, 3);
    });

    // Every accepted ticket redeems exactly once, correctly.
    let tickets = all_tickets.into_inner().unwrap();
    let accepted = tickets.len() as u64;
    assert_eq!(accepted, 16_000, "every submission was accepted");
    for (job, ticket) in &tickets {
        assert_eq!(ticket.wait().unwrap(), oracle(job));
    }
    let stats = cluster.stats();
    assert_eq!(
        stats.completed + stats.failed,
        accepted,
        "every accepted ticket completed exactly once (no leak, no double-complete)"
    );
    assert_eq!(stats.failed, 0, "all moduli are montgomery-valid");
    // The drained tile is empty and sidelined; its moduli moved.
    assert_eq!(stats.tiles[victim].state, TileState::Drained);
    assert_eq!(stats.tiles[victim].health.queue_depth, 0);
    assert!(stats.tiles[victim].health.paused);
    assert_ne!(cluster.home_tile(&moduli[0]), Some(victim));
    assert!(stats.tiles_drained == 1 && stats.moduli_rehomed > 0);
    cluster.shutdown();
}

#[test]
fn blocked_submit_rideses_out_a_drain_of_its_home() {
    // Public-API twin of the in-module stopped-home regression test:
    // a blocking submit parked on its full home queue must survive
    // that tile being *drained* mid-wait by re-routing to a live tile.
    let config = ClusterConfig {
        spill: SpillPolicy::Strict,
        service: ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 1,
            flush_interval: Duration::ZERO,
            pipeline_depth: 1,
            ..Default::default()
        },
        probation_after: 2,
        ..Default::default()
    };
    let delay = Duration::from_millis(50);
    let cluster = ServiceCluster::new(vec![slow_pool(delay), slow_pool(delay)], config);
    let p = (0..64u64)
        .map(|i| UBig::from(1_000_003u64 + 2 * i))
        .find(|p| cluster.home_tile(p) == Some(0))
        .expect("some modulus homes on tile 0");
    // Saturate tile 0: pipeline first (the batcher empties the queue
    // within microseconds), then the queue itself.
    let mut warm = Vec::new();
    for i in 0..3u64 {
        if let Ok(t) =
            cluster.try_submit(MulJob::new(UBig::from(i + 2), UBig::from(3u64), p.clone()))
        {
            warm.push(t);
        }
    }
    std::thread::sleep(Duration::from_millis(10));
    let mut refused = false;
    for i in 0..8u64 {
        match cluster.try_submit(MulJob::new(UBig::from(i + 20), UBig::from(3u64), p.clone())) {
            Ok(t) => warm.push(t),
            Err(_) => refused = true,
        }
    }
    assert!(refused, "home tile must be saturated first");

    let job = MulJob::new(UBig::from(11u64), UBig::from(13u64), p.clone());
    let want = oracle(&job);
    let waiter = std::thread::spawn({
        let handle = cluster.handle();
        move || handle.submit(job)
    });
    std::thread::sleep(Duration::from_millis(10));
    // Drain the home under the parked waiter. The drain pauses
    // admissions (waking the waiter to re-route) and blocks until the
    // tile's backlog delivers.
    let report = cluster.drain_tile(0).unwrap();
    assert_eq!(report.active_tiles, 1);
    let ticket = waiter
        .join()
        .unwrap()
        .expect("blocked submit must re-route to the live tile, not fail");
    assert_eq!(ticket.wait().unwrap(), want);
    // The drain delivered the whole warm backlog too.
    for t in &warm {
        assert!(t.is_done(), "drain returned with a pending ticket");
    }
    let stats = cluster.stats();
    assert!(
        stats.tiles[1].service.submitted >= 1,
        "re-route landed on tile 1"
    );
    cluster.shutdown();
}

#[test]
fn drain_probation_readmit_add_lifecycle() {
    // The full elasticity loop on one cluster: drain a tile, serve
    // without it, probe it back in (its moduli come home), then grow
    // the cluster with a brand-new tile.
    let cluster = ServiceCluster::for_engine_name("barrett", 3, quick_config()).unwrap();
    let moduli: Vec<UBig> = (0..30u64).map(|i| UBig::from(2 * i + 1_001)).collect();
    let run = |tag: u64| {
        let mut tickets = Vec::new();
        for (i, p) in moduli.iter().enumerate() {
            let job = MulJob::new(
                UBig::from(tag + i as u64 + 2),
                UBig::from(tag + i as u64 + 3),
                p.clone(),
            );
            let want = oracle(&job);
            tickets.push((cluster.submit(job).unwrap(), want));
        }
        for (t, want) in &tickets {
            assert_eq!(&t.wait().unwrap(), want);
        }
    };
    run(0);
    let before: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
    let victim = before[0].expect("modulus 0 homes on a routable tile");
    let epoch0 = cluster.membership_epoch();

    // Drain: victim's moduli move, the rest stay (proptest covers the
    // exact set; here we just exercise the lifecycle end to end).
    let drained = cluster.drain_tile(victim).unwrap();
    assert!(drained.epoch > epoch0);
    assert!(drained.rehomed_moduli > 0, "victim homed tracked moduli");
    let victim_jobs_before = cluster.stats().tiles[victim].service.submitted;
    run(100);
    assert_eq!(
        cluster.stats().tiles[victim].service.submitted,
        victim_jobs_before,
        "a drained tile takes no new work"
    );

    // Probation: a drained healthy tile passes every probe; after
    // `probation_after = 2` consecutive passes it is re-admitted and
    // its moduli return.
    assert_eq!(cluster.probe_tiles().readmitted, Vec::<usize>::new());
    let probe = cluster.probe_tiles();
    assert_eq!(probe.readmitted, vec![victim]);
    assert_eq!(cluster.tile_state(victim), Some(TileState::Active));
    let after_readmit: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
    assert_eq!(after_readmit, before, "re-admission restores every home");
    run(200);

    // Growth: a fresh tile joins at a fresh index and wins only the
    // moduli it out-scores everywhere.
    let extra = ModSramService::for_engine_name("barrett", quick_config().service).unwrap();
    let added = cluster.add_tile(extra).unwrap();
    assert_eq!(added.tile, 3);
    assert_eq!(added.active_tiles, 4);
    for (i, p) in moduli.iter().enumerate() {
        let h = cluster.home_tile(p);
        assert!(
            h == before[i] || h == Some(3),
            "modulus {i} may only move onto the new tile"
        );
    }
    run(300);
    let stats = cluster.shutdown();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.tiles_drained, 1);
    assert_eq!(stats.tiles_readmitted, 1);
    assert_eq!(stats.tiles_added, 1);

    // Membership ops on a stopped cluster are refused.
    assert_eq!(cluster.drain_tile(0).err(), Some(CoreError::ClusterStopped));
}
