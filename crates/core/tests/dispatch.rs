//! Dispatcher correctness under concurrency: dispatched batches must
//! equal the per-call oracle for any worker count, chunking, steal
//! policy, and modulus mix, and a [`ContextPool`] must be safely
//! shareable across scoped threads.

use std::sync::Arc;

use modsram_bigint::UBig;
use modsram_core::dispatch::{ContextPool, Dispatcher, MulJob, StealPolicy};
use modsram_core::{BankedModSram, ModSramConfig};
use modsram_modmul::{BarrettEngine, ModMulEngine, MontgomeryEngine};
use proptest::prelude::*;

/// Oracle: plain big-integer multiply-and-reduce.
fn oracle(a: &UBig, b: &UBig, p: &UBig) -> UBig {
    &(a * b) % p
}

/// A small pool of moduli mixing odd and even values (the Barrett
/// engine accepts both; Montgomery would reject the even ones at
/// prepare time, which `pool_surfaces_prepare_errors` covers).
fn modulus_pool() -> Vec<UBig> {
    vec![
        UBig::from(97u64),
        UBig::from(0x1_0000u64), // even: 2^16
        UBig::from(1_000_003u64),
        UBig::from(0xffff_fffb_u64),
        UBig::from(0xdead_beee_u64), // even
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same-modulus batches: dispatched == per-call oracle for every
    /// worker count and both steal policies.
    #[test]
    fn dispatched_equals_oracle(
        seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 1..40),
        chunk in 1usize..7,
    ) {
        let p = UBig::from(0xffff_fffb_u64);
        let ctx = MontgomeryEngine::new().prepare(&p).unwrap();
        let pairs: Vec<(UBig, UBig)> = seeds
            .iter()
            .map(|&(a, b)| (&UBig::from(a) % &p, &UBig::from(b) % &p))
            .collect();
        let want: Vec<UBig> = pairs.iter().map(|(a, b)| oracle(a, b, &p)).collect();
        for workers in [1usize, 2, 8] {
            for policy in [StealPolicy::WorkStealing, StealPolicy::Static] {
                let d = Dispatcher::new(workers).chunk_size(chunk).policy(policy);
                let (got, stats) = d.dispatch(ctx.as_ref(), &pairs).unwrap();
                prop_assert_eq!(&got, &want, "workers={} policy={:?}", workers, policy);
                prop_assert_eq!(stats.items as usize, pairs.len());
            }
        }
    }

    /// Mixed odd/even moduli through a shared pool: results stay in
    /// input order and match the oracle regardless of worker count.
    #[test]
    fn mixed_modulus_jobs_equal_oracle(
        picks in prop::collection::vec((0usize..5, any::<u64>(), any::<u64>()), 1..48),
    ) {
        let moduli = modulus_pool();
        let jobs: Vec<MulJob> = picks
            .iter()
            .map(|&(m, a, b)| {
                let p = moduli[m].clone();
                MulJob::new(&UBig::from(a) % &p, &UBig::from(b) % &p, p)
            })
            .collect();
        let want: Vec<UBig> = jobs.iter().map(|j| oracle(&j.a, &j.b, &j.modulus)).collect();
        let pool = ContextPool::for_engine_ctor(|| Box::new(BarrettEngine::new()));
        for workers in [1usize, 2, 8] {
            let d = Dispatcher::new(workers).chunk_size(4);
            let (got, stats) = d.dispatch_jobs(&pool, &jobs).unwrap();
            prop_assert_eq!(&got, &want, "workers={}", workers);
            prop_assert_eq!(stats.items as usize, jobs.len());
        }
        // Distinct moduli in the job stream bound the pool size.
        let distinct: std::collections::HashSet<&UBig> =
            jobs.iter().map(|j| &j.modulus).collect();
        prop_assert_eq!(pool.len(), distinct.len());
    }

    /// The banked tile agrees with the per-call oracle across backends.
    #[test]
    fn banked_tile_equals_oracle(
        seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 1..24),
        banks in 1usize..5,
    ) {
        let p = UBig::from(0xffff_fffb_u64);
        let pairs: Vec<(UBig, UBig)> = seeds
            .iter()
            .map(|&(a, b)| (&UBig::from(a) % &p, &UBig::from(b) % &p))
            .collect();
        let want: Vec<UBig> = pairs.iter().map(|(a, b)| oracle(a, b, &p)).collect();
        for name in ["montgomery", "barrett"] {
            let tile = BankedModSram::with_engine_name(banks, name, &p).unwrap();
            let (got, _) = tile.mod_mul_batch(&pairs).unwrap();
            prop_assert_eq!(&got, &want, "{} banks={}", name, banks);
        }
    }
}

#[test]
fn two_threads_share_one_context_pool() {
    // The satellite's contract: one pool, two scoped threads, disjoint
    // and overlapping moduli — every context resolves correctly, and
    // the pool ends up holding each modulus exactly once.
    let pool = ContextPool::for_engine_name("montgomery").unwrap();
    let moduli: Vec<UBig> = (0..8u64).map(|i| UBig::from(1_000_003 + 2 * i)).collect();
    std::thread::scope(|scope| {
        for t in 0..2 {
            let pool = &pool;
            let moduli = &moduli;
            scope.spawn(move || {
                for round in 0..4 {
                    for (i, p) in moduli.iter().enumerate() {
                        let ctx = pool.context(p).expect("odd modulus");
                        let a = UBig::from((t * 31 + i as u64 * 7 + round) % 1000);
                        let b = UBig::from((t * 17 + i as u64 * 3 + round) % 1000);
                        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), &(&a * &b) % p);
                    }
                }
            });
        }
    });
    assert_eq!(pool.len(), moduli.len());
    assert_eq!(
        pool.hits() + pool.misses(),
        2 * 4 * moduli.len() as u64,
        "every request either hit or missed"
    );
    assert!(pool.hits() >= pool.misses(), "repeat requests must hit");
}

#[test]
fn pool_surfaces_prepare_errors() {
    let pool = ContextPool::for_engine_name("montgomery").unwrap();
    assert!(pool.context(&UBig::from(4096u64)).is_err(), "even modulus");
    // A failing modulus in a job stream aborts the dispatch cleanly.
    let d = Dispatcher::new(2);
    let jobs = vec![
        MulJob::new(UBig::from(2u64), UBig::from(3u64), UBig::from(97u64)),
        MulJob::new(UBig::from(2u64), UBig::from(3u64), UBig::from(96u64)),
    ];
    assert!(d.dispatch_jobs(&pool, &jobs).is_err());
}

#[test]
fn device_pool_caches_whole_devices() {
    let config = ModSramConfig {
        n_bits: 32,
        ..Default::default()
    };
    let pool = ContextPool::for_modsram(config);
    let p = UBig::from(0xffff_fffb_u64);
    let ctx = pool.context(&p).unwrap();
    assert_eq!(ctx.engine_name(), "modsram");
    assert_eq!(
        ctx.mod_mul(&UBig::from(0x1234u64), &UBig::from(0x5678u64))
            .unwrap(),
        UBig::from(0x1234u64 * 0x5678)
    );
    assert!(Arc::ptr_eq(&ctx, &pool.context(&p).unwrap()));
}

#[test]
fn banked_tile_from_pooled_contexts() {
    // A tile can be assembled from pool-cached contexts: the pool pays
    // preparation once and the tile fans the batch out.
    let pool = ContextPool::for_engine_name("barrett").unwrap();
    let p = UBig::from(1_000_003u64);
    let ctxs = (0..3).map(|_| pool.context(&p).unwrap()).collect();
    let tile = BankedModSram::from_contexts(ctxs);
    assert_eq!(pool.misses(), 1, "one preparation serves every bank");
    let pairs: Vec<(UBig, UBig)> = (0..9u64)
        .map(|i| (UBig::from(i * 11), UBig::from(i * 13)))
        .collect();
    let (got, stats) = tile.mod_mul_batch(&pairs).unwrap();
    for ((a, b), c) in pairs.iter().zip(&got) {
        assert_eq!(c, &oracle(a, b, &p));
    }
    assert_eq!(stats.multiplications, 9);
}

#[test]
fn banked_device_tile_through_work_stealing_dispatcher() {
    // The host-throughput path: a caller-owned work-stealing dispatcher
    // over device banks still returns ordered, correct results (the
    // modelled per-bank attribution is then nondeterministic, which is
    // exactly why the default banked path pins StealPolicy::Static).
    let p = UBig::from(0xffff_fffb_u64);
    let config = ModSramConfig {
        n_bits: 32,
        ..Default::default()
    };
    let tile = BankedModSram::new(4, config, &p).unwrap();
    let pairs: Vec<(UBig, UBig)> = (0..20u64)
        .map(|i| (UBig::from(i * 3 + 1), UBig::from(i * 5 + 2)))
        .collect();
    let d = Dispatcher::new(4).chunk_size(2);
    let (got, stats) = tile.mod_mul_batch_with(&pairs, &d).unwrap();
    for ((a, b), c) in pairs.iter().zip(&got) {
        assert_eq!(c, &oracle(a, b, &p));
    }
    assert_eq!(stats.multiplications, 20);
    let total_energy: f64 = stats.per_bank_energy_pj.iter().sum();
    assert!((total_energy - stats.energy_pj).abs() < 1e-9);
}
