//! Self-tuning pool invariants: engine choice must never change
//! results (autotuned ≡ pinned ≡ oracle under every `TunePolicy`),
//! `Profile` decisions must be deterministic for a fixed profile
//! table, and LRU eviction must never discard what a pool learned
//! about a modulus.

use std::sync::Arc;

use modsram_bigint::UBig;
use modsram_core::autotune::{AutoTuner, EngineProfile, Parity, TunePolicy};
use modsram_core::dispatch::ContextPool;
use modsram_core::service::{ModSramService, ServiceConfig};
use modsram_core::MulJob;
use proptest::prelude::*;

/// Odd and even moduli > 1, from 1 to 4 limbs.
fn modulus_strategy() -> impl Strategy<Value = UBig> {
    prop::collection::vec(any::<u64>(), 1..=4).prop_map(|limbs| {
        let p = UBig::from_limbs(limbs);
        if p <= UBig::one() {
            UBig::from(3u64)
        } else {
            p
        }
    })
}

fn policies() -> Vec<TunePolicy> {
    vec![
        TunePolicy::pinned("r4csa-lut"),
        TunePolicy::Profile,
        TunePolicy::Race {
            calib_pairs: 6,
            repay_mults: 1_000_000,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The correctness core of the tentpole: whatever engine any
    /// policy picks for whatever modulus parity, results equal the
    /// pinned pool and the direct oracle.
    #[test]
    fn autotuned_pool_matches_pinned_and_oracle(
        p in modulus_strategy(),
        a_limbs in prop::collection::vec(any::<u64>(), 4),
        b_limbs in prop::collection::vec(any::<u64>(), 4),
    ) {
        let a = &UBig::from_limbs(a_limbs) % &p;
        let b = &UBig::from_limbs(b_limbs) % &p;
        let oracle = &(&a * &b) % &p;
        let pinned = ContextPool::for_engine_name("r4csa-lut").unwrap();
        let pinned_out = pinned.context(&p).unwrap().mod_mul(&a, &b).unwrap();
        prop_assert_eq!(&pinned_out, &oracle);
        for policy in policies() {
            let pool = ContextPool::auto(policy.clone());
            let ctx = pool.context(&p).unwrap();
            let got = ctx.mod_mul(&a, &b).unwrap();
            prop_assert_eq!(
                &got, &oracle,
                "policy {:?} chose {:?} and diverged",
                policy,
                pool.tuner().and_then(|t| t.chosen_engine(&p))
            );
            // The decision respects parity: an even modulus never
            // lands on the Montgomery family.
            if p.is_even() {
                let chosen = pool.tuner().unwrap().chosen_engine(&p).unwrap();
                prop_assert_ne!(chosen, "montgomery".to_string());
            }
        }
    }

    /// `Profile` with one fixed table always picks the same engine —
    /// across fresh tuners and repeated asks.
    #[test]
    fn profile_policy_is_deterministic(p in modulus_strategy()) {
        let mut profile = EngineProfile::new();
        let parity = Parity::of(&p);
        // A table that contradicts the model ranking, so the test
        // fails if the tuner silently ignores the table.
        profile.record(p.bit_len(), parity, "carryfree", 10.0);
        profile.record(p.bit_len(), parity, "barrett", 20.0);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let tuner = AutoTuner::with_profile(TunePolicy::Profile, profile.clone());
            tuner.prepare(&p).unwrap();
            seen.push(tuner.chosen_engine(&p).unwrap());
        }
        prop_assert!(seen.iter().all(|s| s == "carryfree"), "got {:?}", seen);
    }
}

/// A `Profile` tuner fed from a serialized `engine_profile.json` file
/// behaves exactly like one fed the in-memory table: save → load →
/// same deterministic pick.
#[test]
fn profile_round_trip_through_disk_preserves_choice() {
    let p = UBig::from(0xffff_ffff_ffff_ffc5u64);
    let mut profile = EngineProfile::new();
    profile.record(p.bit_len(), Parity::Odd, "montgomery", 5.0);
    profile.record(p.bit_len(), Parity::Odd, "barrett", 50.0);
    let path =
        std::env::temp_dir().join(format!("modsram_autotune_test_{}.json", std::process::id()));
    profile.save(&path).unwrap();
    let loaded = EngineProfile::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, profile);
    for _ in 0..3 {
        let tuner = AutoTuner::with_profile(TunePolicy::Profile, loaded.clone());
        tuner.prepare(&p).unwrap();
        assert_eq!(tuner.chosen_engine(&p).unwrap(), "montgomery");
    }
}

/// Regression: a capacity-bounded autotuning pool that evicts a
/// modulus must keep its learned engine choice — the re-prepared
/// modulus skips the race and lands on the same engine.
#[test]
fn lru_eviction_preserves_learned_engine_choice() {
    let pool = ContextPool::auto(TunePolicy::Race {
        calib_pairs: 6,
        repay_mults: 1_000_000,
    })
    .with_capacity(2);
    // Three distinct (bits, parity) shapes so each prepare races.
    let m1 = UBig::from(0xffff_ffff_ffff_ffc5u64); // 64-bit odd
    let m2 = UBig::from(0xffff_fffeu64); // 32-bit even
    let m3 = UBig::from_limbs(vec![0x1d, 0, 0, 1]); // 193-bit odd
    pool.context(&m1).unwrap();
    let tuner = Arc::clone(pool.tuner().unwrap());
    let first_choice = tuner.chosen_engine(&m1).unwrap();
    pool.context(&m2).unwrap();
    pool.context(&m3).unwrap(); // capacity 2 → m1 evicted
    assert_eq!(pool.evictions(), 1);
    assert_eq!(tuner.stats().evicted_tuned, 1);
    let races_before = tuner.stats().races_run;
    let ctx = pool.context(&m1).unwrap(); // re-prepare the evicted modulus
    assert_eq!(
        tuner.stats().races_run,
        races_before,
        "re-preparing an evicted modulus must not re-race"
    );
    assert_eq!(tuner.chosen_engine(&m1).unwrap(), first_choice);
    assert_eq!(
        tuner.stats().tuned_moduli,
        3,
        "eviction must not forget decisions"
    );
    // And the re-prepared context still computes correctly.
    let a = UBig::from(123_456_789u64);
    let b = UBig::from(987_654_321u64);
    assert_eq!(ctx.mod_mul(&a, &b).unwrap(), &(&a * &b) % &m1);
}

/// The continuous-tuning hook: production evidence moves a race's
/// choice (transferring the win, not duplicating it), but never
/// overrides a `Pinned` policy or a parity constraint.
#[test]
fn adopt_choice_follows_production_evidence_but_respects_policy_and_parity() {
    let p = UBig::from(1_000_003u64);
    let tuner = AutoTuner::new(TunePolicy::race());
    tuner.prepare(&p).unwrap();
    let first = tuner.chosen_engine(&p).unwrap();
    let other = if first == "barrett" {
        "carryfree"
    } else {
        "barrett"
    };
    tuner.observe(&p, other, 1.0);
    assert!(tuner.adopt_choice(&p, other));
    assert_eq!(tuner.chosen_engine(&p).unwrap(), other);
    let stats = tuner.stats();
    assert_eq!(stats.refinements, 1);
    let total: u64 = stats.engine_wins.iter().map(|(_, n)| n).sum();
    assert_eq!(total, 1, "a refinement moves the win, not duplicates it");
    // Re-adopting the current choice is a no-op, not a refinement.
    assert!(tuner.adopt_choice(&p, other));
    assert_eq!(tuner.stats().refinements, 1);
    // Parity guard: an even modulus can never adopt montgomery.
    let even = UBig::from(1_000_006u64);
    tuner.prepare(&even).unwrap();
    assert!(!tuner.adopt_choice(&even, "montgomery"));
    // Pinned tuners never move.
    let pinned = AutoTuner::new(TunePolicy::pinned("barrett"));
    pinned.prepare(&p).unwrap();
    assert!(!pinned.adopt_choice(&p, "carryfree"));
    assert_eq!(pinned.chosen_engine(&p).unwrap(), "barrett");
}

/// End-to-end: a self-tuning service serves mixed-parity traffic
/// correctly and surfaces tuning counters through `ServiceStats`.
#[test]
fn auto_service_serves_mixed_parity_and_reports_stats() {
    let service = ModSramService::auto(TunePolicy::race(), ServiceConfig::default());
    let odd = UBig::from(1_000_003u64);
    let even = UBig::from(1_000_006u64);
    let mut tickets = Vec::new();
    for i in 0..32u64 {
        let p = if i % 2 == 0 { &odd } else { &even };
        let a = UBig::from(3 * i + 7);
        let b = UBig::from(5 * i + 11);
        tickets.push((
            a.clone(),
            b.clone(),
            p.clone(),
            service.submit(MulJob::new(a, b, p.clone())).unwrap(),
        ));
    }
    for (a, b, p, t) in tickets {
        assert_eq!(t.wait().unwrap(), &(&a * &b) % &p);
    }
    let stats = service.shutdown();
    let tuning = stats
        .autotune
        .expect("auto service must report tuning stats");
    assert_eq!(tuning.tuned_moduli, 2);
    assert_eq!(tuning.policy, "race");
    let total_wins: u64 = tuning.engine_wins.iter().map(|(_, n)| n).sum();
    assert_eq!(total_wins, 2);
}
