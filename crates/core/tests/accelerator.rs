//! Integration tests for the cycle-accurate ModSRAM device.

use modsram_bigint::{ubig_below, UBig};
use modsram_core::{CoreError, MemoryMap, ModSram, ModSramConfig};
use modsram_modmul::{CycleModel, ModMulEngine, TimingPolicy};
use modsram_sram::{CellKind, StuckAt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn secp_p() -> UBig {
    UBig::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f").unwrap()
}

fn bn254_p() -> UBig {
    UBig::from_dec("21888242871839275222246405745257275088696311157297823662689037894645226208583")
        .unwrap()
}

#[test]
fn exhaustive_small_moduli_in_sram() {
    for p in 2u64..=16 {
        let pp = UBig::from(p);
        let mut dev = ModSram::for_modulus(&pp).unwrap();
        for b in 0..p {
            dev.load_multiplicand(&UBig::from(b)).unwrap();
            for a in 0..p {
                let (c, _) = dev.mod_mul_loaded(&UBig::from(a)).unwrap();
                assert_eq!(c, UBig::from(a * b % p), "a={a} b={b} p={p}");
            }
        }
    }
}

#[test]
fn paper_figure3_example_on_device() {
    let p = UBig::from(0b11000u64);
    let mut dev = ModSram::for_modulus(&p).unwrap();
    let (c, stats) = dev
        .mod_mul(&UBig::from(0b10101u64), &UBig::from(0b10010u64))
        .unwrap();
    assert_eq!(c, UBig::from(18u64));
    // n = 5 -> k = 3 digits -> 6*3 - 1 = 17 cycles.
    assert_eq!(stats.cycles, 17);
    assert_eq!(stats.iterations, 3);
}

#[test]
fn paper_headline_767_cycles_at_256_bits() {
    // A 256-bit modulus with an MSB-clear multiplier reproduces the
    // Table 3 cycle count exactly.
    let p = secp_p();
    let mut dev = ModSram::for_modulus(&p).unwrap();
    let a = &UBig::pow2(255) - &UBig::one(); // 255 bits: MSB of the 256-bit window clear
    let b = &UBig::pow2(200) + &UBig::from(12345u64);
    let (c, stats) = dev.mod_mul(&a, &b).unwrap();
    assert_eq!(c, &(&a * &b) % &p);
    assert_eq!(stats.iterations, 128);
    assert_eq!(stats.cycles, 767, "the Table 3 headline");
    assert!(!stats.extra_msb_digit);

    // Multiplier with bit 255 set: one extra Booth digit, +6 cycles.
    let a2 = &p - &UBig::one();
    let (c2, stats2) = dev.mod_mul(&a2, &b).unwrap();
    assert_eq!(c2, &(&a2 * &b) % &p);
    assert_eq!(stats2.cycles, 773);
    assert!(stats2.extra_msb_digit);
}

#[test]
fn cycle_model_matches_measurement() {
    let p = UBig::from(0xffff_fffb_u64);
    let mut dev = ModSram::for_modulus(&p).unwrap();
    let (_, stats) = dev
        .mod_mul(&UBig::from(0x7fff_0001u64), &UBig::from(0x1234_5678u64))
        .unwrap();
    assert_eq!(stats.cycles, dev.cycles(32));
}

#[test]
fn random_256bit_sweep_verified() {
    let p = secp_p();
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut dev = ModSram::for_modulus(&p).unwrap();
    for _ in 0..10 {
        let a = ubig_below(&mut rng, &p);
        let b = ubig_below(&mut rng, &p);
        let (c, stats) = dev.mod_mul(&a, &b).unwrap();
        assert_eq!(c, &(&a * &b) % &p);
        assert!(stats.cycles == 767 || stats.cycles == 773);
        assert!(stats.max_ov_index < 16);
    }
}

#[test]
fn bn254_cycle_counts() {
    // BN254 is a 254-bit prime; ⌈254/2⌉ = 127 digits gives 761 cycles,
    // or 767 when the multiplier's own bit 253 is set (extra Booth
    // digit) — which happens for roughly half of all a < p.
    let p = bn254_p();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut dev = ModSram::for_modulus(&p).unwrap();
    for _ in 0..5 {
        let a = ubig_below(&mut rng, &p);
        let b = ubig_below(&mut rng, &p);
        let (c, stats) = dev.mod_mul(&a, &b).unwrap();
        assert_eq!(c, &(&a * &b) % &p);
        let expect = if a.bit(253) { 767 } else { 761 };
        assert_eq!(stats.cycles, expect);
    }
    // An MSB-clear multiplier always hits 3n − 1 = 761.
    let a = &UBig::pow2(253) - &UBig::one();
    let b = UBig::from(12345u64);
    let (_, stats) = dev.mod_mul(&a, &b).unwrap();
    assert_eq!(stats.cycles, 761);
}

#[test]
fn lut_reuse_avoids_precompute() {
    let p = UBig::from(1_000_003u64);
    let mut dev = ModSram::for_modulus(&p).unwrap();
    let b = UBig::from(999_999u64);
    dev.mod_mul(&UBig::from(5u64), &b).unwrap();
    let pre_after_first = dev.precompute_total.clone();
    // Same multiplicand: no new precompute work.
    dev.mod_mul(&UBig::from(6u64), &b).unwrap();
    assert_eq!(dev.precompute_total, pre_after_first);
    // New multiplicand: the radix-4 LUT is rebuilt.
    dev.mod_mul(&UBig::from(6u64), &UBig::from(7u64)).unwrap();
    assert!(dev.precompute_total.row_writes > pre_after_first.row_writes);
}

#[test]
fn engine_trait_entry_point() {
    let mut dev = ModSram::new(ModSramConfig::default()).unwrap();
    let p = UBig::from(97u64);
    let c = ModMulEngine::mod_mul(&mut dev, &UBig::from(55u64), &UBig::from(44u64), &p).unwrap();
    assert_eq!(c, UBig::from(55u64 * 44 % 97));
    assert_eq!(dev.name(), "modsram");
}

#[test]
fn constant_time_policy_uniform_cycles() {
    let p = UBig::from(0xffffu64);
    let config = ModSramConfig {
        n_bits: 16,
        policy: TimingPolicy::ConstantTime,
        ..Default::default()
    };
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&p).unwrap();
    let mut cycles = std::collections::HashSet::new();
    for a in [0u64, 1, 0x8001, 0xfffe] {
        let (_, stats) = dev.mod_mul(&UBig::from(a), &UBig::from(0x1234u64)).unwrap();
        cycles.insert(stats.cycles);
    }
    assert_eq!(
        cycles.len(),
        1,
        "constant-time must not leak |a|: {cycles:?}"
    );
}

#[test]
fn stats_account_memory_traffic() {
    let p = UBig::from(1_000_003u64); // 20 bits -> k = 10
    let mut dev = ModSram::for_modulus(&p).unwrap();
    let (_, stats) = dev
        .mod_mul(&UBig::from(999u64), &UBig::from(998u64))
        .unwrap();
    // Two activations per iteration.
    assert_eq!(stats.activations, 2 * stats.iterations);
    // Writes: operand A + per-iteration write-backs (4 per iter, minus 2
    // elided in iteration 1).
    assert_eq!(stats.row_writes, 1 + 4 * stats.iterations - 2);
    assert_eq!(stats.row_reads, 1); // the multiplier fetch
    assert!(stats.register_writes > 0);
    assert!(stats.energy_pj > 0.0);
}

#[test]
fn trace_captures_every_cycle() {
    let p = UBig::from(0b11000u64);
    let config = ModSramConfig {
        n_bits: 5,
        trace: true,
        ..Default::default()
    };
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&p).unwrap();
    let (_, stats) = dev
        .mod_mul(&UBig::from(0b10101u64), &UBig::from(0b10010u64))
        .unwrap();
    // One snapshot per cycle plus the finalize marker.
    assert_eq!(dev.last_trace.len() as u64, stats.cycles + 1);
    let rendered = dev.last_trace[0].render(6);
    assert!(rendered.contains("fetch"));
}

#[test]
fn fault_injection_is_detected_by_verification() {
    // A stuck-at fault on the sum row corrupts the computation; the
    // lock-step verifier must catch it rather than return a wrong value.
    let mut config = ModSramConfig {
        n_bits: 24,
        ..Default::default()
    };
    config.fault.stuck_at.push(StuckAt {
        row: MemoryMap::SUM,
        col: 3,
        value: true,
    });
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&UBig::from(16_000_057u64)).unwrap();
    let err = dev
        .mod_mul(&UBig::from(12_345_678u64), &UBig::from(9_876_543u64))
        .unwrap_err();
    assert!(
        matches!(err, CoreError::ModelDivergence { .. }),
        "got {err:?}"
    );
}

#[test]
fn six_t_cells_with_disturb_corrupt_the_run() {
    // The §4.2 argument for 8T cells: with 6T cells and read disturb,
    // multi-row activation destroys the LUT rows mid-run.
    let mut config = ModSramConfig {
        n_bits: 24,
        cell: CellKind::SixT,
        ..Default::default()
    };
    config.fault.disturb_per_cell = 0.05;
    config.fault.seed = 3;
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&UBig::from(16_000_057u64)).unwrap();
    let result = dev.mod_mul(&UBig::from(12_345_678u64), &UBig::from(9_876_543u64));
    assert!(
        matches!(result, Err(CoreError::ModelDivergence { .. })),
        "6T + disturb should diverge, got {result:?}"
    );
    assert!(dev.array().stats().disturb_flips > 0);
}

#[test]
fn eight_t_cells_ignore_disturb_knob() {
    let mut config = ModSramConfig {
        n_bits: 24,
        cell: CellKind::EightT,
        ..Default::default()
    };
    config.fault.disturb_per_cell = 0.05;
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&UBig::from(16_000_057u64)).unwrap();
    let (c, _) = dev
        .mod_mul(&UBig::from(12_345_678u64), &UBig::from(9_876_543u64))
        .unwrap();
    assert_eq!(
        c,
        &(&UBig::from(12_345_678u64) * &UBig::from(9_876_543u64)) % &UBig::from(16_000_057u64)
    );
    assert_eq!(dev.array().stats().disturb_flips, 0);
}

#[test]
fn error_paths() {
    let mut dev = ModSram::new(ModSramConfig::default()).unwrap();
    assert!(matches!(
        dev.mod_mul(&UBig::one(), &UBig::one()),
        Err(CoreError::NoModulus)
    ));
    assert!(matches!(
        dev.mod_mul_loaded(&UBig::one()),
        Err(CoreError::NoModulus)
    ));
    // Modulus wider than the array.
    let too_wide = UBig::pow2(300);
    assert!(matches!(
        dev.load_modulus(&too_wide),
        Err(CoreError::OperandTooWide { .. })
    ));
    // Too few rows.
    let bad = ModSramConfig {
        rows: 8,
        ..Default::default()
    };
    assert!(matches!(
        ModSram::new(bad),
        Err(CoreError::NotEnoughRows { .. })
    ));
}

#[test]
fn memory_map_budget_matches_paper() {
    let dev = ModSram::new(ModSramConfig::default()).unwrap();
    assert_eq!(MemoryMap::lut_rows_paper(), 13); // §5.2
    assert_eq!(dev.memory_map().rows(), 64);
    assert_eq!(dev.memory_map().cols(), 256);
    assert!(dev.memory_map().point_add_working_set().fits());
}

#[test]
fn charge_final_add_adds_cycles() {
    let p = UBig::from(1_000_003u64);
    let config = ModSramConfig {
        n_bits: 20,
        charge_final_add: true,
        ..Default::default()
    };
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&p).unwrap();
    let (_, stats) = dev
        .mod_mul(&UBig::from(999u64), &UBig::from(998u64))
        .unwrap();
    assert!(stats.final_add_cycles >= 2);
}

#[test]
fn unverified_mode_matches_verified() {
    let p = UBig::from(0xffff_fffb_u64);
    let a = UBig::from(0xdead_beefu64);
    let b = UBig::from(0x1234_5678u64);
    let mut verified = ModSram::for_modulus(&p).unwrap();
    let mut unverified = ModSram::new(ModSramConfig {
        n_bits: 32,
        verify: false,
        ..Default::default()
    })
    .unwrap();
    unverified.load_modulus(&p).unwrap();
    let (c1, s1) = verified.mod_mul(&a, &b).unwrap();
    let (c2, s2) = unverified.mod_mul(&a, &b).unwrap();
    assert_eq!(c1, c2);
    assert_eq!(s1.cycles, s2.cycles);
}

#[test]
fn isa_executor_matches_fsm_at_256_bits() {
    use modsram_core::{Executor, Program};
    let p = secp_p();
    let mut rng = SmallRng::seed_from_u64(77);
    for trial in 0..5 {
        let a = ubig_below(&mut rng, &p);
        let b = ubig_below(&mut rng, &p);

        let mut fsm = ModSram::for_modulus(&p).unwrap();
        let (c_fsm, s_fsm) = fsm.mod_mul(&a, &b).unwrap();

        let mut isa = ModSram::for_modulus(&p).unwrap();
        isa.load_multiplicand(&b).unwrap();
        let mut exec = Executor::new();
        let (c_isa, s_isa) = exec.run_mod_mul(&mut isa, &a).unwrap();

        assert_eq!(c_isa, c_fsm, "trial {trial}");
        assert_eq!(s_isa.cycles, s_fsm.cycles, "trial {trial}");
        assert_eq!(
            s_isa.register_writes, s_fsm.register_writes,
            "trial {trial}"
        );
        assert_eq!(s_isa.activations, s_fsm.activations, "trial {trial}");
        assert_eq!(s_isa.row_reads, s_fsm.row_reads, "trial {trial}");
        assert_eq!(s_isa.row_writes, s_fsm.row_writes, "trial {trial}");

        // The generated program is the paper's schedule.
        let program = exec.last_program().unwrap();
        assert_eq!(program.cycles(), s_isa.cycles);
        let reparsed = Program::parse(&program.to_text()).unwrap();
        assert_eq!(&reparsed, program);
    }
}

#[test]
fn isa_constant_time_policy_pads_to_767() {
    use modsram_core::Executor;
    let p = secp_p();
    let config = ModSramConfig {
        n_bits: 256,
        policy: TimingPolicy::ConstantTime,
        ..Default::default()
    };
    let mut dev = ModSram::new(config).unwrap();
    dev.load_modulus(&p).unwrap();
    dev.load_multiplicand(&UBig::from(3u64)).unwrap();
    // A tiny multiplier still takes the full constant-time schedule:
    // ⌈257/2⌉ = 129 digits → 6·129 − 1 = 773 cycles.
    let (c, stats) = Executor::new()
        .run_mod_mul(&mut dev, &UBig::from(2u64))
        .unwrap();
    assert_eq!(c, UBig::from(6u64));
    assert_eq!(stats.cycles, 6 * 129 - 1);
}
