//! Streaming-service contracts: streamed submission must agree with
//! staged dispatch and the big-integer oracle, shutdown must drain
//! every accepted ticket, and the bounded queue must push back.

use std::time::Duration;

use modsram_bigint::UBig;
use modsram_core::dispatch::{ContextPool, Dispatcher, MulJob};
use modsram_core::service::{ModSramService, ServiceConfig, ServiceError, SubmitError, Ticket};
use modsram_modmul::PreparedModMul;
use proptest::prelude::*;

fn oracle(job: &MulJob) -> UBig {
    &(&job.a * &job.b) % &job.modulus
}

/// Odd and even moduli (the Barrett engine accepts both).
fn modulus_pool() -> Vec<UBig> {
    vec![
        UBig::from(97u64),
        UBig::from(0x1_0000u64), // even: 2^16
        UBig::from(1_000_003u64),
        UBig::from(0xffff_fffb_u64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole equivalence: for any mixed-modulus job stream and
    /// any coalescing configuration, streamed submission through the
    /// service ≡ staged `dispatch_jobs` ≡ the big-integer oracle.
    #[test]
    fn streamed_equals_staged_equals_oracle(
        picks in prop::collection::vec((0usize..4, any::<u64>(), any::<u64>()), 1..60),
        max_batch in 1usize..16,
        flush_us in 0u64..200,
    ) {
        let moduli = modulus_pool();
        let jobs: Vec<MulJob> = picks
            .iter()
            .map(|&(m, a, b)| {
                let p = moduli[m].clone();
                MulJob::new(&UBig::from(a) % &p, &UBig::from(b) % &p, p)
            })
            .collect();
        let want: Vec<UBig> = jobs.iter().map(oracle).collect();

        // Staged reference.
        let pool = ContextPool::for_engine_name("barrett").unwrap();
        let (staged, _) = Dispatcher::new(4).dispatch_jobs(&pool, &jobs).unwrap();
        prop_assert_eq!(&staged, &want);

        // Streamed through a service with the sampled coalescing knobs.
        let service = ModSramService::for_engine_name(
            "barrett",
            ServiceConfig {
                workers: 4,
                queue_capacity: 32,
                max_batch,
                flush_interval: Duration::from_micros(flush_us),
                ..Default::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = jobs
            .iter()
            .map(|j| service.submit(j.clone()).unwrap())
            .collect();
        let streamed: Vec<UBig> = tickets
            .iter()
            .map(|t| t.wait().expect("all moduli valid for barrett"))
            .collect();
        prop_assert_eq!(&streamed, &want);

        let stats = service.shutdown();
        prop_assert_eq!(stats.completed as usize, jobs.len());
        prop_assert_eq!(stats.failed, 0);
        prop_assert!(stats.coalesce_max as usize <= max_batch);
    }
}

#[test]
fn shutdown_drains_all_tickets() {
    // Accept a burst, then shut down immediately: every accepted
    // ticket must still complete (with the right product) before
    // `shutdown` returns.
    let service = ModSramService::for_engine_name(
        "montgomery",
        ServiceConfig {
            workers: 2,
            queue_capacity: 512,
            max_batch: 16,
            flush_interval: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .unwrap();
    let p = UBig::from(1_000_003u64);
    let jobs: Vec<MulJob> = (0..200u64)
        .map(|i| MulJob::new(UBig::from(i * 13 + 1), UBig::from(i * 29 + 2), p.clone()))
        .collect();
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|j| service.submit(j.clone()).unwrap())
        .collect();
    let stats = service.shutdown();
    for (job, ticket) in jobs.iter().zip(&tickets) {
        assert!(ticket.is_done(), "shutdown returned with a pending ticket");
        assert_eq!(ticket.wait().unwrap(), oracle(job));
    }
    assert_eq!(stats.completed, 200);
    assert_eq!(stats.queue_depth, 0, "queue fully drained");
    // Shutdown is idempotent and keeps refusing work.
    let again = service.shutdown();
    assert_eq!(again.completed, 200);
    assert_eq!(
        service
            .submit(MulJob::new(UBig::from(1u64), UBig::from(2u64), p))
            .err(),
        Some(SubmitError::Stopped)
    );
}

#[test]
fn backpressure_try_submit_reports_queue_full() {
    // The deterministic stall comes from the shared fault-injection
    // doubles: a slow context keeps the executor busy so the bounded
    // queue must fill behind it.
    let service = ModSramService::new(
        modsram_core::test_util::slow_pool(Duration::from_millis(30)),
        ServiceConfig {
            workers: 1,
            queue_capacity: 3,
            max_batch: 1,
            flush_interval: Duration::ZERO,
            pipeline_depth: 1,
            ..Default::default()
        },
    );
    let p = UBig::from(97u64);
    let job = |i: u64| MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone());

    // The service can hold `queue_capacity` jobs in the queue plus a
    // bounded pipeline slack (one executing, one in the executor
    // hand-off, one held by the batcher). With 30 ms per
    // multiplication, a tight try_submit loop must hit QueueFull long
    // before the executor drains anything.
    let mut tickets = Vec::new();
    let mut rejected = false;
    for i in 0..32u64 {
        match service.try_submit(job(i)) {
            Ok(t) => tickets.push((i, t)),
            Err(e) => {
                assert_eq!(e, SubmitError::QueueFull);
                rejected = true;
                break;
            }
        }
    }
    assert!(rejected, "bounded queue never pushed back");
    assert!(
        tickets.len() <= 8,
        "accepted {} jobs — capacity 3 plus pipeline slack should be well under 8",
        tickets.len()
    );
    assert!(service.stats().rejected >= 1);

    // Backpressure is transient: every accepted ticket completes, and
    // once the backlog drains a new submission succeeds.
    for (i, ticket) in &tickets {
        assert_eq!(
            ticket.wait().unwrap(),
            UBig::from((i + 2) * (i + 3) % 97),
            "job {i}"
        );
    }
    let late = service.submit(job(50)).unwrap();
    assert_eq!(late.wait().unwrap(), UBig::from(52u64 * 53 % 97));
    let stats = service.shutdown();
    assert_eq!(stats.completed, tickets.len() as u64 + 1);
}

#[test]
fn executor_panic_fails_tickets_instead_of_hanging() {
    /// A context that violates the dispatcher's batch contract
    /// (wrong-length result vector), which panics the executing worker
    /// — the executor's unwind guard must fail the tickets rather than
    /// leave their waiters blocked forever.
    struct BrokenCtx {
        p: UBig,
    }

    impl PreparedModMul for BrokenCtx {
        fn engine_name(&self) -> &'static str {
            "broken"
        }

        fn modulus(&self) -> &UBig {
            &self.p
        }

        fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, modsram_modmul::ModMulError> {
            Ok(&(a * b) % &self.p)
        }

        fn mod_mul_batch(
            &self,
            _pairs: &[(UBig, UBig)],
        ) -> Result<Vec<UBig>, modsram_modmul::ModMulError> {
            Ok(Vec::new()) // wrong size: trips the dispatcher's assert
        }
    }

    let service = ModSramService::new(
        ContextPool::new(|p| Ok(Box::new(BrokenCtx { p: p.clone() }) as Box<dyn PreparedModMul>)),
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 4,
            flush_interval: Duration::ZERO,
            pipeline_depth: 1,
            ..Default::default()
        },
    );
    let p = UBig::from(97u64);
    let first = service
        .submit(MulJob::new(UBig::from(2u64), UBig::from(3u64), p.clone()))
        .unwrap();
    assert_eq!(first.wait(), Err(ServiceError::Stopped));
    // The executor survived the panic and keeps serving (and failing)
    // later batches; shutdown still drains cleanly.
    let second = service
        .submit(MulJob::new(UBig::from(4u64), UBig::from(5u64), p))
        .unwrap();
    assert_eq!(second.wait(), Err(ServiceError::Stopped));
    let stats = service.shutdown();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 0);
}

#[test]
fn four_submitter_threads_share_one_service() {
    // The acceptance shape in miniature: ≥4 concurrent submitters
    // streaming into one service, every result correct, every job
    // accounted for.
    let service = ModSramService::for_engine_name(
        "montgomery",
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            max_batch: 32,
            flush_interval: Duration::from_micros(200),
            ..Default::default()
        },
    )
    .unwrap();
    let per_thread = 100u64;
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let handle = service.handle();
            scope.spawn(move || {
                let p = UBig::from(0xffff_fffb_u64);
                for i in 0..per_thread {
                    let a = UBig::from(t * 1_000_003 + i * 17 + 1);
                    let b = UBig::from(t * 999_979 + i * 31 + 2);
                    let ticket = handle
                        .submit(MulJob::new(a.clone(), b.clone(), p.clone()))
                        .unwrap();
                    assert_eq!(ticket.wait().unwrap(), &(&a * &b) % &p);
                }
            });
        }
    });
    let stats = service.shutdown();
    assert_eq!(stats.completed, 4 * per_thread);
    assert_eq!(stats.failed, 0);
    assert!(stats.batches >= 1);
    assert!(stats.wall_p99_ns >= stats.wall_p50_ns);
    assert!(stats.modelled_p99_cycles >= stats.modelled_p50_cycles);
    assert!(stats.modelled_p50_cycles > 0);
}
