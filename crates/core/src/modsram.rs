//! The top-level ModSRAM device model.

use std::sync::Mutex;

use modsram_bigint::UBig;
use modsram_modmul::{
    CycleModel, LutOverflow, LutRadix4, ModMulEngine, ModMulError, PreparedModMul, TimingPolicy,
};
use modsram_sram::{CellKind, FaultConfig, SramArray, SramConfig};

use crate::controller;
use crate::error::CoreError;
use crate::memmap::MemoryMap;
use crate::nmc::Nmc;
use crate::stats::{PrecomputeStats, RunStats};
use crate::trace::DataflowSnapshot;

/// Device configuration. [`ModSramConfig::default`] is the paper's macro:
/// 64 wordlines, 256-bit operands, 8T cells, no faults, lock-step
/// verification on.
#[derive(Debug, Clone)]
pub struct ModSramConfig {
    /// Operand bitwidth `n` (array columns). The sum/carry MSB (bit `n`)
    /// lives in a near-memory flip-flop, as in §4.3.
    pub n_bits: usize,
    /// Array wordlines.
    pub rows: usize,
    /// Bit-cell flavour (6T exists to reproduce the read-disturb failure).
    pub cell: CellKind,
    /// Fault-injection knobs.
    pub fault: FaultConfig,
    /// Verify every phase against the word-level functional model.
    pub verify: bool,
    /// Charge cycles for the near-memory final add + reduction instead of
    /// assuming it pipelines with the next operation (the paper's 767
    /// count corresponds to `false`).
    pub charge_final_add: bool,
    /// Capture per-cycle [`DataflowSnapshot`]s (Figure 3).
    pub trace: bool,
    /// Iteration-count policy (see `modsram-modmul`).
    pub policy: TimingPolicy,
}

impl Default for ModSramConfig {
    fn default() -> Self {
        ModSramConfig {
            n_bits: 256,
            rows: 64,
            cell: CellKind::EightT,
            fault: FaultConfig::default(),
            verify: true,
            charge_final_add: false,
            trace: false,
            policy: TimingPolicy::DataDependent,
        }
    }
}

/// The ModSRAM accelerator (Figure 4): SRAM array + in-memory logic-SA +
/// near-memory circuit + controller.
///
/// Typical use: [`ModSram::for_modulus`], then [`ModSram::mod_mul`]
/// repeatedly; LUT precomputation is cached while the multiplicand and
/// modulus are unchanged.
#[derive(Debug, Clone)]
pub struct ModSram {
    pub(crate) array: SramArray,
    pub(crate) map: MemoryMap,
    pub(crate) nmc: Nmc,
    pub(crate) config: ModSramConfig,
    pub(crate) sum_msb: bool,
    pub(crate) carry_msb: bool,
    pub(crate) modulus: Option<UBig>,
    pub(crate) multiplicand: Option<UBig>,
    pub(crate) lut4: Option<LutRadix4>,
    pub(crate) lutov: Option<LutOverflow>,
    /// Precompute statistics accumulated since construction.
    pub precompute_total: PrecomputeStats,
    /// Multiplication cycles accumulated since construction (the sum of
    /// every run's `RunStats::cycles`; together with
    /// `precompute_total.cycles` this is the bank-busy metric the
    /// multi-bank dispatcher aggregates).
    pub run_cycles_total: u64,
    /// Statistics of the most recent multiplication.
    pub last_run: Option<RunStats>,
    /// Dataflow snapshots of the most recent run (when tracing).
    pub last_trace: Vec<DataflowSnapshot>,
}

impl ModSram {
    /// Builds a device from an explicit configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotEnoughRows`] if the array cannot hold the memory
    /// map.
    pub fn new(config: ModSramConfig) -> Result<Self, CoreError> {
        if config.rows < MemoryMap::required_rows() {
            return Err(CoreError::NotEnoughRows {
                required: MemoryMap::required_rows(),
                available: config.rows,
            });
        }
        let n = config.n_bits.max(1);
        let sram_config = SramConfig {
            rows: config.rows,
            cols: n,
            cell: config.cell,
            fault: config.fault.clone(),
            energy: Default::default(),
        };
        let map = MemoryMap::new(config.rows, n);
        Ok(ModSram {
            array: SramArray::new(sram_config),
            map,
            nmc: Nmc::new(n + 1),
            config,
            sum_msb: false,
            carry_msb: false,
            modulus: None,
            multiplicand: None,
            lut4: None,
            lutov: None,
            precompute_total: PrecomputeStats::default(),
            run_cycles_total: 0,
            last_run: None,
            last_trace: Vec::new(),
        })
    }

    /// Builds a device sized for modulus `p` (width = `bit_len(p)`, 64
    /// rows) and loads the modulus.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::ModMul`] for a zero modulus.
    pub fn for_modulus(p: &UBig) -> Result<Self, CoreError> {
        let config = ModSramConfig {
            n_bits: p.bit_len().max(1),
            ..Default::default()
        };
        let mut dev = ModSram::new(config)?;
        dev.load_modulus(p)?;
        Ok(dev)
    }

    /// The device configuration.
    pub fn config(&self) -> &ModSramConfig {
        &self.config
    }

    /// The wordline map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Read access to the underlying array (stats, trace, geometry).
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// The currently loaded modulus.
    pub fn modulus(&self) -> Option<&UBig> {
        self.modulus.as_ref()
    }

    /// The currently loaded (canonical) multiplicand.
    pub fn multiplicand(&self) -> Option<&UBig> {
        self.multiplicand.as_ref()
    }

    /// Loads modulus `p`: writes the `p` wordline and fills the overflow
    /// LUT rows (Table 2). Reused by every subsequent multiplication —
    /// the §3.2 data-reuse claim.
    ///
    /// # Errors
    ///
    /// [`CoreError::ModMul`] for a zero modulus;
    /// [`CoreError::OperandTooWide`] if `p` does not fit the array.
    pub fn load_modulus(&mut self, p: &UBig) -> Result<PrecomputeStats, CoreError> {
        if p.is_zero() {
            return Err(CoreError::ModMul(ModMulError::ZeroModulus));
        }
        let n = self.config.n_bits;
        if p.bit_len() > n {
            return Err(CoreError::OperandTooWide {
                operand_bits: p.bit_len(),
                n_bits: n,
            });
        }
        let lutov = LutOverflow::new(p, n + 1)?;
        let mut stats = PrecomputeStats::default();

        self.write_row_counted(MemoryMap::P, p, &mut stats);
        // Deriving 2^(n+1) mod p near-memory: one shift-compare-subtract
        // chain, modelled as two adder ops; each further entry is one add
        // and one conditional subtract.
        stats.nmc_adds += 2;
        for w in 0..LutOverflow::PAPER_ENTRIES {
            let row = self.map.lutov_row(w);
            let value = lutov.value(w).clone();
            self.write_row_counted(row, &value, &mut stats);
            if w > 0 {
                stats.nmc_adds += 2;
            }
        }
        for w in
            LutOverflow::PAPER_ENTRIES..(LutOverflow::PAPER_ENTRIES + MemoryMap::LUTOV_SPILL_ROWS)
        {
            let row = self.map.lutov_row(w);
            let value = lutov.value(w).clone();
            self.write_row_counted(row, &value, &mut stats);
            stats.nmc_adds += 2;
        }
        stats.cycles = stats.row_writes + stats.nmc_adds;

        self.modulus = Some(p.clone());
        self.lutov = Some(lutov);
        // A new modulus invalidates the multiplicand table.
        self.multiplicand = None;
        self.lut4 = None;
        self.precompute_total.merge(&stats);
        Ok(stats)
    }

    /// Loads multiplicand `b`: writes the `B` wordline and fills the five
    /// radix-4 LUT rows (Table 1b). Reused while `b` is unchanged — e.g.
    /// across the many multiplications by the same operand inside an
    /// elliptic-curve point addition.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoModulus`] if no modulus is loaded.
    pub fn load_multiplicand(&mut self, b: &UBig) -> Result<PrecomputeStats, CoreError> {
        let p = self.modulus.clone().ok_or(CoreError::NoModulus)?;
        let lut4 = LutRadix4::new(b, &p)?;
        let mut stats = PrecomputeStats::default();

        self.write_row_counted(MemoryMap::B, lut4.multiplicand(), &mut stats);
        for (i, value) in lut4.rows().clone().iter().enumerate() {
            let row = self.map.lut4_row(i);
            self.write_row_counted(row, value, &mut stats);
        }
        // 2B (add + conditional subtract), −B, −2B (one subtract each).
        stats.nmc_adds += 4;
        stats.cycles = stats.row_writes + stats.nmc_adds;

        self.multiplicand = Some(lut4.multiplicand().clone());
        self.lut4 = Some(lut4);
        self.precompute_total.merge(&stats);
        Ok(stats)
    }

    /// Multiplies `a` by the *loaded* multiplicand modulo the loaded
    /// modulus, cycle-accurately. Returns the canonical product and the
    /// run statistics (767 cycles at 256 bits with an MSB-clear
    /// multiplier — Table 3).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoModulus`] if [`ModSram::load_modulus`] has not run;
    /// [`CoreError::NoModulus`] (via multiplicand check) if no
    /// multiplicand is loaded; [`CoreError::ModelDivergence`] when
    /// verification is on and fault injection corrupted the computation.
    pub fn mod_mul_loaded(&mut self, a: &UBig) -> Result<(UBig, RunStats), CoreError> {
        let outcome = controller::execute(self, a);
        if let Ok((_, stats)) = &outcome {
            self.run_cycles_total += stats.cycles;
        }
        outcome
    }

    /// Convenience: (re)loads `b` if needed, then multiplies. This is the
    /// common entry point; LUT precomputation only happens when `b`
    /// changes.
    ///
    /// # Errors
    ///
    /// See [`ModSram::mod_mul_loaded`] and [`ModSram::load_multiplicand`].
    pub fn mod_mul(&mut self, a: &UBig, b: &UBig) -> Result<(UBig, RunStats), CoreError> {
        let p = self.modulus.clone().ok_or(CoreError::NoModulus)?;
        let b_canonical = b % &p;
        if self.multiplicand.as_ref() != Some(&b_canonical) {
            self.load_multiplicand(&b_canonical)?;
        }
        self.mod_mul_loaded(a)
    }

    pub(crate) fn write_row_counted(
        &mut self,
        row: usize,
        value: &UBig,
        stats: &mut PrecomputeStats,
    ) {
        self.array.write_row(row, value.limbs());
        stats.row_writes += 1;
    }

    /// Stores a `W`-bit value into the sum row + MSB flip-flop.
    pub(crate) fn store_sum(&mut self, v: &UBig) {
        let n = self.config.n_bits;
        self.array.write_row(MemoryMap::SUM, v.low_bits(n).limbs());
        self.sum_msb = v.bit(n);
        self.nmc.register_writes += 1; // the MSB FF load
    }

    /// Stores a `W`-bit value into the carry row + MSB flip-flop.
    pub(crate) fn store_carry(&mut self, v: &UBig) {
        let n = self.config.n_bits;
        self.array
            .write_row(MemoryMap::CARRY, v.low_bits(n).limbs());
        self.carry_msb = v.bit(n);
        self.nmc.register_writes += 1;
    }

    /// Reads the full `W`-bit sum (row + MSB FF) without touching stats.
    pub(crate) fn peek_sum(&self) -> UBig {
        let n = self.config.n_bits;
        let row = UBig::from_limbs(self.array.peek_row(MemoryMap::SUM));
        row.with_bit(n, self.sum_msb)
    }

    /// Reads the full `W`-bit carry (row + MSB FF) without touching stats.
    pub(crate) fn peek_carry(&self) -> UBig {
        let n = self.config.n_bits;
        let row = UBig::from_limbs(self.array.peek_row(MemoryMap::CARRY));
        row.with_bit(n, self.carry_msb)
    }
}

/// A prepared accelerator context: a device with the modulus loaded
/// (Table 2 wordlines written once), held behind a mutex so the context
/// satisfies the `Send + Sync` contract of [`PreparedModMul`].
///
/// The SRAM array is inherently stateful — each multiplication streams
/// through its sum/carry wordlines — so unlike the functional engines
/// the hardware model serialises concurrent callers. That mirrors the
/// real device: one macro executes one multiplication at a time, and
/// parallelism comes from banking (see [`crate::BankedModSram`]).
#[derive(Debug)]
pub struct PreparedModSram {
    dev: Mutex<ModSram>,
    p: UBig,
}

impl PreparedModSram {
    /// Builds a fresh device sized for `p` (inheriting `config`'s cell,
    /// fault, verification, and timing knobs) and loads the modulus.
    ///
    /// # Errors
    ///
    /// [`ModMulError::ZeroModulus`] for `p = 0`.
    pub fn new(p: &UBig, config: &ModSramConfig) -> Result<Self, ModMulError> {
        if p.is_zero() {
            return Err(ModMulError::ZeroModulus);
        }
        let config = ModSramConfig {
            n_bits: p.bit_len().max(1),
            ..config.clone()
        };
        let mut dev = ModSram::new(config).map_err(|e| match e {
            CoreError::ModMul(m) => m,
            other => panic!("device construction failed: {other}"),
        })?;
        dev.load_modulus(p).map_err(|e| match e {
            CoreError::ModMul(m) => m,
            other => panic!("modulus load failed: {other}"),
        })?;
        Ok(PreparedModSram {
            dev: Mutex::new(dev),
            p: p.clone(),
        })
    }

    /// Wraps an already-configured, modulus-loaded device. Unlike
    /// [`PreparedModSram::new`] the device keeps its configured width,
    /// so a tile of identical macros can be wider than the modulus.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoModulus`] if no modulus has been loaded.
    pub fn from_device(dev: ModSram) -> Result<Self, CoreError> {
        let p = dev.modulus().cloned().ok_or(CoreError::NoModulus)?;
        Ok(PreparedModSram {
            dev: Mutex::new(dev),
            p,
        })
    }

    /// Runs `f` on the locked device (stats inspection, fault injection).
    pub fn with_device<T>(&self, f: impl FnOnce(&mut ModSram) -> T) -> T {
        f(&mut self.dev.lock().expect("device lock poisoned"))
    }

    /// Cycles the device has been busy since construction: LUT
    /// precompute plus every multiplication run. The banked dispatcher
    /// reads this before and after a batch to attribute per-bank cycles.
    pub fn total_cycles(&self) -> u64 {
        self.with_device(|d| d.precompute_total.cycles + d.run_cycles_total)
    }

    /// Energy the device's array has accumulated, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.with_device(|d| d.array().stats().energy_pj)
    }

    /// Maps a device error onto the engine error space — **after** the
    /// lock has been released, so a divergence panic (only possible
    /// under fault injection) cannot poison the shared mutex and
    /// cascade into every other thread holding this context.
    fn unwrap_run(
        outcome: Result<(UBig, crate::stats::RunStats), CoreError>,
    ) -> Result<UBig, ModMulError> {
        match outcome {
            Ok((c, _)) => Ok(c),
            Err(CoreError::ModMul(m)) => Err(m),
            Err(other) => panic!("in-SRAM multiplication failed: {other}"),
        }
    }
}

impl PreparedModMul for PreparedModSram {
    fn engine_name(&self) -> &'static str {
        "modsram"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    /// # Panics
    ///
    /// Panics (with the mutex already released) when the device reports
    /// a model divergence — only possible with fault injection enabled.
    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        let outcome = {
            let mut dev = self.dev.lock().expect("device lock poisoned");
            dev.mod_mul(a, b)
        };
        Self::unwrap_run(outcome)
    }

    /// Batch override: the device is locked once for the whole stream,
    /// so consecutive pairs sharing a multiplicand reuse the Table 1b
    /// wordlines without re-entrant locking.
    ///
    /// # Panics
    ///
    /// As [`PreparedModSram::mod_mul`]; the lock is released before any
    /// panic propagates.
    fn mod_mul_batch(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        let outcomes = {
            let mut dev = self.dev.lock().expect("device lock poisoned");
            let mut outcomes = Vec::with_capacity(pairs.len());
            for (a, b) in pairs {
                let outcome = dev.mod_mul(a, b);
                let stop = outcome.is_err();
                outcomes.push(outcome);
                if stop {
                    break;
                }
            }
            outcomes
        };
        outcomes.into_iter().map(Self::unwrap_run).collect()
    }
}

impl ModMulEngine for ModSram {
    fn name(&self) -> &'static str {
        "modsram"
    }

    /// Prepares a fresh, independently-stateful device for `p`; `self`
    /// only contributes its configuration knobs. The paper's load-once
    /// precompute (§3.2) happens here.
    fn prepare(&self, p: &UBig) -> Result<Box<dyn PreparedModMul>, ModMulError> {
        Ok(Box::new(PreparedModSram::new(p, &self.config)?))
    }

    /// Full-service entry point: loads `p` and `b` when they differ from
    /// the cached ones, then runs the in-SRAM multiplication.
    ///
    /// # Errors
    ///
    /// Maps device errors onto [`ModMulError`]; a model divergence (only
    /// possible under fault injection) surfaces as a panic because the
    /// trait cannot express it — use [`ModSram::mod_mul`] for fault
    /// studies.
    fn mod_mul(&mut self, a: &UBig, b: &UBig, p: &UBig) -> Result<UBig, ModMulError> {
        if p.is_zero() {
            return Err(ModMulError::ZeroModulus);
        }
        if self.modulus.as_ref() != Some(p) {
            if p.bit_len() > self.config.n_bits {
                return Err(ModMulError::OperandTooWide {
                    operand_bits: p.bit_len(),
                    limit_bits: self.config.n_bits,
                });
            }
            self.load_modulus(p).map_err(|e| match e {
                CoreError::ModMul(m) => m,
                other => panic!("unexpected load error: {other}"),
            })?;
        }
        let (c, _) = self
            .mod_mul(a, b)
            .unwrap_or_else(|e| panic!("in-SRAM multiplication failed: {e}"));
        Ok(c)
    }
}

impl CycleModel for ModSram {
    /// Same closed form as the functional model: `6·⌈n/2⌉ − 1`.
    fn cycles(&self, n_bits: usize) -> u64 {
        6 * (n_bits as u64).div_ceil(2) - 1
    }

    fn model_description(&self) -> &'static str {
        "cycle-accurate controller: 1 fetch + 4 first-iteration + 6 per further digit"
    }
}
