//! The controller FSM: micro-op schedule and cycle accounting (§4.3–4.4).
//!
//! Schedule for `k` Booth digits:
//!
//! ```text
//! cycle 1                : fetch multiplier row → NMC FF
//! iteration 1 (4 cycles) : [activate lut4 | wb sum | activate lutov₀+sum | wb sum]
//! iterations 2..k (6 ea.): [activate lut4+sum(+carry) | wb sum | wb carry |
//!                           activate lutov+sum+carry  | wb sum | wb carry]
//! total                  : 6k − 1     (= 767 at n = 256, k = 128)
//! ```
//!
//! The first iteration's two carry write-backs are elided because the
//! carry word is *structurally* zero until iteration 2's radix-4 phase
//! (`MAJ(x, 0, 0) = 0`); for the same reason the controller omits
//! known-zero rows from activations, which also means stale sum/carry
//! wordlines from a previous multiplication are never observed.
//!
//! The shift-by-two of Algorithm 3 lines 4–5 is fused into the previous
//! iteration's write-back path (the FF→shifter→write-port route of
//! §4.3), so the rows are always pre-shifted when the next activation
//! reads them; the last iteration writes back unshifted so the finisher
//! sees the true `(sum, carry)`.

use modsram_bigint::UBig;
use modsram_modmul::{R4CsaStepper, TimingPolicy};

use crate::error::CoreError;
use crate::memmap::MemoryMap;
use crate::modsram::ModSram;
use crate::stats::RunStats;
use crate::trace::{DataflowSnapshot, Phase};

/// Executes one in-SRAM modular multiplication of `a` by the loaded
/// multiplicand, modulo the loaded modulus.
pub(crate) fn execute(dev: &mut ModSram, a: &UBig) -> Result<(UBig, RunStats), CoreError> {
    let p = dev.modulus.clone().ok_or(CoreError::NoModulus)?;
    let b = dev.multiplicand.clone().ok_or(CoreError::NoMultiplicand)?;
    let n = dev.config.n_bits;
    let w = n + 1;
    let a_c = a % &p;

    // FF reset lines clear the overflow state left by a previous run.
    dev.nmc.ov_sum_ff = 0;
    dev.nmc.ov_carry_ff = 0;
    dev.nmc.pending_ff = 0;
    dev.sum_msb = false;
    dev.carry_msb = false;
    dev.last_trace.clear();

    // The digit stream (including constant-time padding) comes from the
    // shared TimingPolicy rule so the controller can never drift from
    // the stepper it verifies itself against.
    let digits = dev.config.policy.digits(&a_c, n);
    let k = digits.len();

    // Lock-step ground truth (only consulted when verification is on).
    let mut stepper = if dev.config.verify {
        Some(R4CsaStepper::with_width(&b, &p, n)?)
    } else {
        None
    };

    let start_sram = dev.array.stats().clone();
    let start_regs = dev.nmc.register_writes;
    let mut stats = RunStats::default();
    let mut cycle: u64 = 0;

    // Operand load: A's wordline (memory traffic, not multiply cycles).
    dev.array.write_row(MemoryMap::A, a_c.limbs());

    // Cycle 1: fetch the multiplier into the near-memory FF.
    let fetched = UBig::from_limbs(dev.array.read_row(MemoryMap::A));
    dev.nmc.load_multiplier(&fetched, k);
    cycle += 1;
    snapshot(
        dev,
        cycle,
        0,
        Phase::Fetch,
        "read A row into multiplier FF",
        vec![MemoryMap::A],
    );

    let mut carry_written = false;
    let mut sum_written = false;

    for i in 1..=k as u64 {
        let digit = dev.nmc.next_digit();
        if dev.config.verify && digit != digits[(i - 1) as usize] {
            return Err(CoreError::ModelDivergence {
                iteration: i,
                what: "booth digit",
            });
        }
        let trace = stepper.as_mut().map(|s| s.step(digit));

        // ---- Radix-4 phase -------------------------------------------
        if let Some(t) = &trace {
            if dev.nmc.ov_sum_ff != t.ov_sum {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "ov_sum FF",
                });
            }
            if dev.nmc.ov_carry_ff != t.ov_carry {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "ov_carry FF",
                });
            }
        }
        let lut_row = dev.map.lut4_row(modsram_modmul::LutRadix4::index_of(digit));
        let (xor_full, maj_full) = activate_csa(dev, lut_row, sum_written, carry_written);
        cycle += 1;
        stats.activations += 1;
        snapshot(
            dev,
            cycle,
            i,
            Phase::Radix4,
            "activate LUT-radix4 + sum + carry; sense XOR3/MAJ",
            vec![lut_row],
        );

        let csa1_msb_out = ((&maj_full << 1).bit(w)) as u8;
        let carry_value = (&maj_full << 1).low_bits(w);
        if let Some(t) = &trace {
            if xor_full != t.after_radix4.0 {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "radix-4 XOR3",
                });
            }
            if carry_value != t.after_radix4.1 {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "radix-4 MAJ",
                });
            }
            if csa1_msb_out != t.csa1_msb_out {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "radix-4 carry-out",
                });
            }
        }

        dev.store_sum(&xor_full);
        sum_written = true;
        cycle += 1;
        stats.row_writes += 1;
        snapshot(
            dev,
            cycle,
            i,
            Phase::Radix4,
            "write back sum",
            vec![MemoryMap::SUM],
        );

        if i > 1 {
            dev.store_carry(&carry_value);
            carry_written = true;
            cycle += 1;
            stats.row_writes += 1;
            snapshot(
                dev,
                cycle,
                i,
                Phase::Radix4,
                "write back carry (≪1)",
                vec![MemoryMap::CARRY],
            );
        }

        // ---- Overflow phase ------------------------------------------
        let ov_index = dev.nmc.take_overflow_index(csa1_msb_out);
        if let Some(t) = &trace {
            if ov_index != t.ov_index {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "overflow index",
                });
            }
        }
        stats.max_ov_index = stats.max_ov_index.max(ov_index);
        if MemoryMap::is_spill_weight(ov_index) {
            stats.ov_spill_touches += 1;
        }

        let ov_row = dev.map.lutov_row(ov_index);
        let (xor2_full, maj2_full) = activate_csa(dev, ov_row, sum_written, carry_written);
        cycle += 1;
        stats.activations += 1;
        snapshot(
            dev,
            cycle,
            i,
            Phase::Overflow,
            "activate LUT-overflow + sum + carry; sense XOR3/MAJ",
            vec![ov_row],
        );

        let pending_out = ((&maj2_full << 1).bit(w)) as u8;
        let carry2_value = (&maj2_full << 1).low_bits(w);
        if let Some(t) = &trace {
            if xor2_full != t.after_overflow.0 {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "overflow XOR3",
                });
            }
            if carry2_value != t.after_overflow.1 {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "overflow MAJ",
                });
            }
            if pending_out != t.pending_out {
                return Err(CoreError::ModelDivergence {
                    iteration: i,
                    what: "overflow carry-out",
                });
            }
        }

        // Fused shift: pre-shift by two for the next iteration; the last
        // iteration leaves the true values for the finisher.
        let shift = if (i as usize) < k { 2 } else { 0 };

        let esc_s = if shift == 2 {
            ((&xor2_full >> (w - 2)).low_u64() & 3) as u8
        } else {
            0
        };
        dev.store_sum(&(&xor2_full << shift).low_bits(w));
        cycle += 1;
        stats.row_writes += 1;
        dev.nmc.set_ov_sum(esc_s);
        snapshot(
            dev,
            cycle,
            i,
            Phase::Overflow,
            "write back sum (≪2 pre-shift)",
            vec![MemoryMap::SUM],
        );

        let esc_c = if shift == 2 {
            ((&carry2_value >> (w - 2)).low_u64() & 3) as u8
        } else {
            0
        };
        if i > 1 {
            dev.store_carry(&(&carry2_value << shift).low_bits(w));
            carry_written = true;
            cycle += 1;
            stats.row_writes += 1;
            snapshot(
                dev,
                cycle,
                i,
                Phase::Overflow,
                "write back carry (≪1, ≪2 pre-shift)",
                vec![MemoryMap::CARRY],
            );
        } else {
            debug_assert!(carry2_value.is_zero(), "iteration-1 carry must be zero");
        }
        dev.nmc.set_ov_carry(esc_c);
        dev.nmc.set_pending(pending_out);
    }

    // ---- Near-memory finisher (Alg. 3 line 14) -----------------------
    let sum_full = dev.peek_sum();
    let carry_full = if carry_written {
        dev.peek_carry()
    } else {
        UBig::zero()
    };
    let mut total = &sum_full + &carry_full;
    if dev.nmc.pending_ff != 0 {
        total = &total + &UBig::pow2(w);
    }
    // The conditional-subtract chain of the near-memory finisher; when
    // the array width matches the modulus this is at most 12 steps, but
    // a wide array with a narrow modulus would need many, so compute the
    // count by division.
    let subs = (&total / &p).to_u64().unwrap_or(u64::MAX);
    total = &total % &p;

    if let Some(s) = &stepper {
        let (want, _) = s.finalize();
        if total != want {
            return Err(CoreError::ModelDivergence {
                iteration: k as u64,
                what: "final result",
            });
        }
    }

    stats.cycles = cycle;
    stats.iterations = k as u64;
    stats.final_subtractions = subs;
    stats.final_add_cycles = if dev.config.charge_final_add {
        2 + subs
    } else {
        0
    };
    stats.extra_msb_digit = dev.config.policy == TimingPolicy::DataDependent && k > n.div_ceil(2);
    stats.row_reads = dev.array.stats().row_reads - start_sram.row_reads;
    stats.row_writes = dev.array.stats().row_writes - start_sram.row_writes;
    stats.energy_pj = dev.array.stats().energy_pj - start_sram.energy_pj;
    stats.register_writes = dev.nmc.register_writes - start_regs;
    debug_assert_eq!(stats.cycles, 6 * k as u64 - 1, "schedule invariant");

    snapshot(
        dev,
        cycle,
        k as u64,
        Phase::Finalize,
        "near-memory add + reduce",
        vec![],
    );
    dev.last_run = Some(stats.clone());
    Ok((total, stats))
}

/// One logic-SA activation over the LUT row plus whichever of sum/carry
/// are live, returning the full `W`-bit XOR3 and MAJ words (array columns
/// + the NMC top-bit logic of §4.3).
fn activate_csa(
    dev: &mut ModSram,
    lut_row: usize,
    sum_live: bool,
    carry_live: bool,
) -> (UBig, UBig) {
    let n = dev.config.n_bits;
    let mut rows = vec![lut_row];
    if sum_live {
        rows.push(MemoryMap::SUM);
    }
    if carry_live {
        rows.push(MemoryMap::CARRY);
    }
    let out = dev.array.activate(&rows);
    let xor_cols = UBig::from_limbs(out.xor.clone());
    let maj_cols = UBig::from_limbs(out.maj.clone());

    // Top-bit (bit n) logic: LUT rows are < p < 2^n so their bit n is 0;
    // the stored MSBs live in NMC flip-flops.
    let s_msb = sum_live && dev.sum_msb;
    let c_msb = carry_live && dev.carry_msb;
    let xor_full = xor_cols.with_bit(n, s_msb ^ c_msb);
    let maj_full = maj_cols.with_bit(n, s_msb & c_msb);
    dev.nmc.latch_sense(xor_full.clone(), maj_full.clone());
    (xor_full, maj_full)
}

fn snapshot(
    dev: &mut ModSram,
    cycle: u64,
    iteration: u64,
    phase: Phase,
    micro_op: &str,
    rows: Vec<usize>,
) {
    if !dev.config.trace {
        return;
    }
    let snap = DataflowSnapshot {
        cycle,
        iteration,
        phase,
        micro_op: micro_op.to_string(),
        rows,
        sum: dev.peek_sum(),
        carry: dev.peek_carry(),
        ov_ffs: (dev.nmc.ov_sum_ff, dev.nmc.ov_carry_ff, dev.nmc.pending_ff),
    };
    dev.last_trace.push(snap);
}
