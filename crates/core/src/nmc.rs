//! Near-memory circuit model (§4.3): Booth encoder, overflow logic,
//! flip-flops, and shift write-back paths.
//!
//! The NMC is deliberately tiny — that is the paper's area story (11 % of
//! the macro). It holds three full-width flip-flops (multiplier, sum,
//! carry), a handful of overflow FFs, the radix-4 Booth encoder fed by
//! the top three bits of the multiplier FF, and the combinational logic
//! that assembles the overflow LUT index. Every flip-flop load increments
//! `register_writes` — the Figure 7 metric ModSRAM minimises.

use modsram_bigint::{Radix4Digit, UBig};

/// Near-memory flip-flops and combinational helpers.
#[derive(Debug, Clone)]
pub struct Nmc {
    /// Register window width `W = n + 1`.
    width: usize,
    /// Multiplier FF, alignment window of `2k + 1` bits; the Booth
    /// encoder reads its top three bits and it shifts left by two every
    /// iteration (§4.3).
    mult_ff: UBig,
    mult_window: usize,
    /// Sum FF (latched from the sense amplifiers + MSB logic).
    pub sum_ff: UBig,
    /// Carry FF.
    pub carry_ff: UBig,
    /// Shift-overflow FFs: the two bits that fell out of the sum row on
    /// the last shifted write-back.
    pub ov_sum_ff: u8,
    /// Shift-overflow FFs for the carry row.
    pub ov_carry_ff: u8,
    /// Deferred overflow-phase carry-out (weight `2^W` before the next
    /// shift).
    pub pending_ff: u8,
    /// Total flip-flop load operations.
    pub register_writes: u64,
}

impl Nmc {
    /// Creates the NMC for register window `width` (= n + 1).
    pub fn new(width: usize) -> Self {
        Nmc {
            width,
            mult_ff: UBig::zero(),
            mult_window: 0,
            sum_ff: UBig::zero(),
            carry_ff: UBig::zero(),
            ov_sum_ff: 0,
            ov_carry_ff: 0,
            pending_ff: 0,
            register_writes: 0,
        }
    }

    /// Loads the multiplier fetched from SRAM and aligns it for `k`
    /// Booth digits (one FF load).
    pub fn load_multiplier(&mut self, a: &UBig, k: usize) {
        // Booth digit i reads bits (2i+1, 2i, 2i−1) of A; shifting A left
        // by one makes that the top three bits of a 2k+1-bit window for
        // i = k−1.
        self.mult_window = 2 * k + 1;
        self.mult_ff = (a << 1).low_bits(self.mult_window);
        self.register_writes += 1;
    }

    /// Booth-encodes the top three bits of the multiplier FF, then shifts
    /// the FF left by two for the next iteration (one FF load).
    pub fn next_digit(&mut self) -> Radix4Digit {
        let w = self.mult_window;
        let digit = Radix4Digit::encode(
            self.mult_ff.bit(w - 1),
            self.mult_ff.bit(w - 2),
            self.mult_ff.bit(w - 3),
        );
        self.mult_ff = (&self.mult_ff << 2).low_bits(w);
        self.register_writes += 1;
        digit
    }

    /// Latches the sense-amplifier outputs (plus the MSB bits computed by
    /// the NMC's top-bit logic) into the sum/carry FFs — two FF loads.
    pub fn latch_sense(&mut self, sum: UBig, carry: UBig) {
        debug_assert!(sum.bit_len() <= self.width);
        debug_assert!(carry.bit_len() <= self.width + 1);
        self.sum_ff = sum;
        self.carry_ff = carry;
        self.register_writes += 2;
    }

    /// The combinational overflow word (Alg. 3 line 6):
    /// `ov_sum + ov_carry + csa1_msb_out + 4·pending`, consuming the FFs.
    pub fn take_overflow_index(&mut self, csa1_msb_out: u8) -> usize {
        let ov = self.ov_sum_ff as usize
            + self.ov_carry_ff as usize
            + csa1_msb_out as usize
            + 4 * self.pending_ff as usize;
        self.ov_sum_ff = 0;
        self.ov_carry_ff = 0;
        self.pending_ff = 0;
        ov
    }

    /// Stores the two shifted-out bits of a shifted sum write-back (one
    /// small-FF load).
    pub fn set_ov_sum(&mut self, bits: u8) {
        self.ov_sum_ff = bits;
        self.register_writes += 1;
    }

    /// Stores the two shifted-out bits of a shifted carry write-back.
    pub fn set_ov_carry(&mut self, bits: u8) {
        self.ov_carry_ff = bits;
        self.register_writes += 1;
    }

    /// Stores the deferred overflow-phase carry-out.
    pub fn set_pending(&mut self, bit: u8) {
        self.pending_ff = bit;
        self.register_writes += 1;
    }

    /// Register window width.
    pub fn width(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsram_bigint::radix4_digits_msb_first;

    #[test]
    fn booth_ff_reproduces_recoder() {
        // The shift-by-two FF datapath must produce the same digit stream
        // as the offline recoder.
        for a in [0u64, 1, 21, 0b10101, 0xdead_beef, u64::MAX] {
            let big = UBig::from(a);
            let n = big.bit_len().max(1);
            let digits = radix4_digits_msb_first(&big, n);
            let mut nmc = Nmc::new(n + 1);
            nmc.load_multiplier(&big, digits.len());
            for (i, want) in digits.iter().enumerate() {
                assert_eq!(nmc.next_digit(), *want, "a={a} digit {i}");
            }
        }
    }

    #[test]
    fn overflow_index_assembly() {
        let mut nmc = Nmc::new(10);
        nmc.set_ov_sum(3);
        nmc.set_ov_carry(2);
        nmc.set_pending(1);
        assert_eq!(nmc.take_overflow_index(1), 3 + 2 + 1 + 4);
        // Consumed after use.
        assert_eq!(nmc.take_overflow_index(0), 0);
    }

    #[test]
    fn register_writes_are_counted() {
        let mut nmc = Nmc::new(10);
        nmc.load_multiplier(&UBig::from(5u64), 2);
        nmc.next_digit();
        nmc.latch_sense(UBig::zero(), UBig::zero());
        nmc.set_ov_sum(0);
        nmc.set_ov_carry(0);
        nmc.set_pending(0);
        assert_eq!(nmc.register_writes, 1 + 1 + 2 + 1 + 1 + 1);
    }
}
