//! Scratch-row sessions: staging a whole computation's working set in
//! the array, as §5.2 describes for elliptic-curve point addition
//! ("our design is accommodated to fit operands of a point addition").
//!
//! A [`ScratchSession`] checks values in and out of the scratch
//! wordlines with full traffic accounting; [`staged_jacobian_add`] runs
//! the 12M+4S Jacobian point addition with every multiplication
//! in-SRAM and every intermediate parked in a scratch row, then reports
//! the peak wordline footprint (which must fit the Figure 6 budget).

use modsram_bigint::UBig;

use crate::error::CoreError;
use crate::memmap::MemoryMap;
use crate::modsram::ModSram;

/// A handle to one occupied scratch wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchSlot(usize);

/// Traffic and cycle accounting for a staged session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Values written into scratch rows.
    pub slot_writes: u64,
    /// Values read back from scratch rows.
    pub slot_reads: u64,
    /// In-SRAM multiplications executed.
    pub multiplications: u64,
    /// Multiplication cycles (the `6k − 1` loops).
    pub mul_cycles: u64,
    /// LUT precompute cycles (Table 1b refills as multiplicands change).
    pub precompute_cycles: u64,
    /// Near-memory add/sub operations (modelled one cycle each).
    pub nmc_adds: u64,
    /// Highest number of simultaneously live scratch slots.
    pub peak_slots: usize,
}

impl SessionStats {
    /// Total modelled cycles for the session.
    pub fn total_cycles(&self) -> u64 {
        self.mul_cycles
            + self.precompute_cycles
            + self.nmc_adds
            + self.slot_writes
            + self.slot_reads
    }
}

/// A checked-out region of the scratch wordlines.
#[derive(Debug)]
pub struct ScratchSession<'a> {
    dev: &'a mut ModSram,
    in_use: Vec<bool>,
    live: usize,
    /// Session accounting (public for inspection mid-session).
    pub stats: SessionStats,
}

impl<'a> ScratchSession<'a> {
    /// Opens a session on a device (requires a loaded modulus).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoModulus`] when the device has no modulus loaded.
    pub fn new(dev: &'a mut ModSram) -> Result<Self, CoreError> {
        if dev.modulus().is_none() {
            return Err(CoreError::NoModulus);
        }
        let slots = dev.memory_map().scratch_rows();
        Ok(ScratchSession {
            dev,
            in_use: vec![false; slots],
            live: 0,
            stats: SessionStats::default(),
        })
    }

    /// Stores a value into a free scratch wordline.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotEnoughRows`] when every scratch row is occupied.
    pub fn store(&mut self, value: &UBig) -> Result<ScratchSlot, CoreError> {
        let idx = self
            .in_use
            .iter()
            .position(|used| !used)
            .ok_or(CoreError::NotEnoughRows {
                required: self.in_use.len() + 1,
                available: self.in_use.len(),
            })?;
        self.in_use[idx] = true;
        self.live += 1;
        self.stats.peak_slots = self.stats.peak_slots.max(self.live);
        let row = self.dev.memory_map().scratch_row(idx);
        let p = self.dev.modulus().cloned().expect("checked in new");
        let canonical = value % &p;
        // Direct array write through the write port.
        self.dev.array.write_row(row, canonical.limbs());
        self.stats.slot_writes += 1;
        Ok(ScratchSlot(idx))
    }

    /// Reads a slot's value back.
    pub fn load(&mut self, slot: ScratchSlot) -> UBig {
        assert!(self.in_use[slot.0], "slot already freed");
        let row = self.dev.memory_map().scratch_row(slot.0);
        self.stats.slot_reads += 1;
        UBig::from_limbs(self.dev.array.read_row(row))
    }

    /// Releases a slot.
    pub fn free(&mut self, slot: ScratchSlot) {
        assert!(self.in_use[slot.0], "double free");
        self.in_use[slot.0] = false;
        self.live -= 1;
    }

    /// In-SRAM multiplication of two slots; the product lands in a new
    /// slot.
    ///
    /// # Errors
    ///
    /// Propagates device errors and slot exhaustion.
    pub fn mul(&mut self, a: ScratchSlot, b: ScratchSlot) -> Result<ScratchSlot, CoreError> {
        let av = self.load(a);
        let bv = self.load(b);
        let pre_before = self.dev.precompute_total.cycles;
        let (c, run) = self.dev.mod_mul(&av, &bv)?;
        self.stats.multiplications += 1;
        self.stats.mul_cycles += run.cycles;
        self.stats.precompute_cycles += self.dev.precompute_total.cycles - pre_before;
        self.store(&c)
    }

    /// Near-memory modular addition of two slots into a new slot.
    ///
    /// # Errors
    ///
    /// Propagates slot exhaustion.
    pub fn add(&mut self, a: ScratchSlot, b: ScratchSlot) -> Result<ScratchSlot, CoreError> {
        let p = self.dev.modulus().cloned().expect("checked in new");
        let (av, bv) = (self.load(a), self.load(b));
        let sum = {
            let s = &av + &bv;
            if s >= p {
                &s - &p
            } else {
                s
            }
        };
        self.stats.nmc_adds += 1;
        self.store(&sum)
    }

    /// Near-memory modular subtraction `a − b` into a new slot.
    ///
    /// # Errors
    ///
    /// Propagates slot exhaustion.
    pub fn sub(&mut self, a: ScratchSlot, b: ScratchSlot) -> Result<ScratchSlot, CoreError> {
        let p = self.dev.modulus().cloned().expect("checked in new");
        let (av, bv) = (self.load(a), self.load(b));
        let diff = if av >= bv {
            &av - &bv
        } else {
            &(&av + &p) - &bv
        };
        self.stats.nmc_adds += 1;
        self.store(&diff)
    }

    /// Live slot count.
    pub fn live_slots(&self) -> usize {
        self.live
    }
}

/// A Jacobian point as canonical coordinate integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedPoint {
    /// X coordinate.
    pub x: UBig,
    /// Y coordinate.
    pub y: UBig,
    /// Z coordinate (0 = infinity).
    pub z: UBig,
}

/// General Jacobian + Jacobian addition staged entirely in the array
/// (12 multiplications + 4 squarings in-SRAM, additions near-memory).
/// Returns the sum and the session accounting. Doubling/identity cases
/// are delegated to the caller (MSM-style workloads filter them first).
///
/// # Errors
///
/// Propagates device errors; [`CoreError::NotEnoughRows`] cannot occur
/// for this sequence on a 64-row array (peak footprint ≤ 16 slots, the
/// Figure 6 budget — asserted by tests).
pub fn staged_jacobian_add(
    dev: &mut ModSram,
    p1: &StagedPoint,
    p2: &StagedPoint,
) -> Result<(StagedPoint, SessionStats), CoreError> {
    let mut s = ScratchSession::new(dev)?;
    // Check in the six input coordinates.
    let x1 = s.store(&p1.x)?;
    let y1 = s.store(&p1.y)?;
    let z1 = s.store(&p1.z)?;
    let x2 = s.store(&p2.x)?;
    let y2 = s.store(&p2.y)?;
    let z2 = s.store(&p2.z)?;

    // u1 = x1·z2², u2 = x2·z1², s1 = y1·z2³, s2 = y2·z1³.
    let z1z1 = s.mul(z1, z1)?;
    let z2z2 = s.mul(z2, z2)?;
    let u1 = s.mul(x1, z2z2)?;
    let u2 = s.mul(x2, z1z1)?;
    let z2cu = s.mul(z2z2, z2)?;
    let z1cu = s.mul(z1z1, z1)?;
    s.free(z2z2);
    s.free(z1z1);
    s.free(x1);
    s.free(x2);
    let s1 = s.mul(y1, z2cu)?;
    let s2 = s.mul(y2, z1cu)?;
    s.free(z2cu);
    s.free(z1cu);
    s.free(y1);
    s.free(y2);

    // h = u2 − u1, r = s2 − s1.
    let h = s.sub(u2, u1)?;
    let r = s.sub(s2, s1)?;
    s.free(u2);
    s.free(s2);

    // x3 = r² − h³ − 2·u1·h², y3 = r(u1h² − x3) − s1h³, z3 = z1z2h.
    let h2 = s.mul(h, h)?;
    let h3 = s.mul(h2, h)?;
    let u1h2 = s.mul(u1, h2)?;
    s.free(h2);
    s.free(u1);
    let r2 = s.mul(r, r)?;
    let t0 = s.sub(r2, h3)?;
    s.free(r2);
    let two_u1h2 = s.add(u1h2, u1h2)?;
    let x3 = s.sub(t0, two_u1h2)?;
    s.free(t0);
    s.free(two_u1h2);
    let t1 = s.sub(u1h2, x3)?;
    s.free(u1h2);
    let rt1 = s.mul(r, t1)?;
    s.free(r);
    s.free(t1);
    let s1h3 = s.mul(s1, h3)?;
    s.free(s1);
    s.free(h3);
    let y3 = s.sub(rt1, s1h3)?;
    s.free(rt1);
    s.free(s1h3);
    let z1z2 = s.mul(z1, z2)?;
    s.free(z1);
    s.free(z2);
    let z3 = s.mul(z1z2, h)?;
    s.free(z1z2);
    s.free(h);

    let out = StagedPoint {
        x: s.load(x3),
        y: s.load(y3),
        z: s.load(z3),
    };
    s.free(x3);
    s.free(y3);
    s.free(z3);
    let stats = s.stats.clone();
    debug_assert_eq!(s.live_slots(), 0, "slot leak");
    // The §5.2 claim: the working set fits the point-addition budget.
    debug_assert!(
        stats.peak_slots <= MemoryMap::new(64, 256).point_add_working_set().required() + 2,
        "peak {} slots",
        stats.peak_slots
    );
    Ok((out, stats))
}

/// Jacobian point doubling staged in the array (3 multiplications + 4
/// squarings in-SRAM for the `a = 0` curves the paper targets,
/// additions near-memory). The caller guarantees `a = 0` (secp256k1 and
/// BN254 both qualify).
///
/// # Errors
///
/// Propagates device errors.
pub fn staged_jacobian_double(
    dev: &mut ModSram,
    p1: &StagedPoint,
) -> Result<(StagedPoint, SessionStats), CoreError> {
    if p1.z.is_zero() || p1.y.is_zero() {
        return Ok((
            StagedPoint {
                x: UBig::one(),
                y: UBig::one(),
                z: UBig::zero(),
            },
            SessionStats::default(),
        ));
    }
    let mut s = ScratchSession::new(dev)?;
    let x1 = s.store(&p1.x)?;
    let y1 = s.store(&p1.y)?;
    let z1 = s.store(&p1.z)?;

    // ysq = y², S = 4·x·ysq, M = 3·x², x3 = M² − 2S,
    // y3 = M(S − x3) − 8·ysq², z3 = 2yz.
    let ysq = s.mul(y1, y1)?;
    let x_ysq = s.mul(x1, ysq)?;
    let s2 = s.add(x_ysq, x_ysq)?;
    let s4 = s.add(s2, s2)?; // S
    s.free(x_ysq);
    s.free(s2);
    let xsq = s.mul(x1, x1)?;
    let xsq2 = s.add(xsq, xsq)?;
    let m = s.add(xsq2, xsq)?; // M = 3x²  (a = 0)
    s.free(xsq);
    s.free(xsq2);
    s.free(x1);
    let msq = s.mul(m, m)?;
    let s_dbl = s.add(s4, s4)?;
    let x3 = s.sub(msq, s_dbl)?;
    s.free(msq);
    s.free(s_dbl);
    let t = s.sub(s4, x3)?;
    s.free(s4);
    let mt = s.mul(m, t)?;
    s.free(m);
    s.free(t);
    let ysq2 = s.mul(ysq, ysq)?;
    s.free(ysq);
    let y4_2 = s.add(ysq2, ysq2)?;
    let y4_4 = s.add(y4_2, y4_2)?;
    let y4_8 = s.add(y4_4, y4_4)?;
    s.free(ysq2);
    s.free(y4_2);
    s.free(y4_4);
    let y3 = s.sub(mt, y4_8)?;
    s.free(mt);
    s.free(y4_8);
    let yz = s.mul(y1, z1)?;
    s.free(y1);
    s.free(z1);
    let z3 = s.add(yz, yz)?;
    s.free(yz);

    let out = StagedPoint {
        x: s.load(x3),
        y: s.load(y3),
        z: s.load(z3),
    };
    s.free(x3);
    s.free(y3);
    s.free(z3);
    let stats = s.stats.clone();
    debug_assert_eq!(s.live_slots(), 0, "slot leak");
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsram::ModSramConfig;

    fn device(bits: usize, p: &UBig) -> ModSram {
        let mut dev = ModSram::new(ModSramConfig {
            n_bits: bits,
            ..Default::default()
        })
        .unwrap();
        dev.load_modulus(p).unwrap();
        dev
    }

    #[test]
    fn session_store_load_free() {
        let p = UBig::from(1_000_003u64);
        let mut dev = device(20, &p);
        let mut s = ScratchSession::new(&mut dev).unwrap();
        let a = s.store(&UBig::from(123u64)).unwrap();
        let b = s.store(&UBig::from(456u64)).unwrap();
        assert_eq!(s.load(a), UBig::from(123u64));
        let c = s.mul(a, b).unwrap();
        assert_eq!(s.load(c), UBig::from(123u64 * 456));
        let d = s.add(a, b).unwrap();
        assert_eq!(s.load(d), UBig::from(579u64));
        let e = s.sub(a, b).unwrap();
        assert_eq!(s.load(e), UBig::from(1_000_003 - 333u64));
        assert_eq!(s.live_slots(), 5);
        for slot in [a, b, c, d, e] {
            s.free(slot);
        }
        assert_eq!(s.live_slots(), 0);
        assert_eq!(s.stats.multiplications, 1);
        assert!(s.stats.peak_slots >= 5);
    }

    #[test]
    fn slot_exhaustion_is_an_error() {
        let p = UBig::from(97u64);
        let mut dev = device(7, &p);
        let mut s = ScratchSession::new(&mut dev).unwrap();
        let total = s.in_use.len();
        for _ in 0..total {
            s.store(&UBig::one()).unwrap();
        }
        assert!(matches!(
            s.store(&UBig::one()),
            Err(CoreError::NotEnoughRows { .. })
        ));
    }

    #[test]
    fn staged_add_matches_ecc_formula() {
        // secp256k1-sized staged addition vs big-integer Jacobian math.
        let p = UBig::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        let mut dev = device(256, &p);
        // G and 2G on secp256k1 in Jacobian form (z = 1).
        let g = StagedPoint {
            x: UBig::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
                .unwrap(),
            y: UBig::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
                .unwrap(),
            z: UBig::one(),
        };
        let two_g = StagedPoint {
            x: UBig::from_hex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
                .unwrap(),
            y: UBig::from_hex("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a")
                .unwrap(),
            z: UBig::one(),
        };
        let (sum, stats) = staged_jacobian_add(&mut dev, &g, &two_g).unwrap();

        // Affine 3G (textbook constant), via z-normalisation.
        use modsram_bigint::{mod_inv, mod_mul};
        let zinv = mod_inv(&sum.z, &p).unwrap();
        let zinv2 = mod_mul(&zinv, &zinv, &p);
        let x_aff = mod_mul(&sum.x, &zinv2, &p);
        assert_eq!(
            x_aff.to_hex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9"
        );

        // 16 in-SRAM multiplications, peak footprint within the §5.2
        // point-addition budget.
        assert_eq!(stats.multiplications, 16);
        assert!(stats.peak_slots <= 16, "peak {}", stats.peak_slots);
        assert!(stats.mul_cycles >= 16 * 761);
    }

    #[test]
    fn staged_double_matches_known_2g() {
        let p = UBig::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        let mut dev = device(256, &p);
        let g = StagedPoint {
            x: UBig::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
                .unwrap(),
            y: UBig::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
                .unwrap(),
            z: UBig::one(),
        };
        let (two_g, stats) = staged_jacobian_double(&mut dev, &g).unwrap();
        use modsram_bigint::{mod_inv, mod_mul};
        let zinv = mod_inv(&two_g.z, &p).unwrap();
        let zinv2 = mod_mul(&zinv, &zinv, &p);
        assert_eq!(
            mod_mul(&two_g.x, &zinv2, &p).to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
        );
        assert_eq!(stats.multiplications, 7); // 3M + 4S with a = 0
    }

    #[test]
    fn staged_double_of_infinity() {
        let p = UBig::from(97u64);
        let mut dev = device(7, &p);
        let inf = StagedPoint {
            x: UBig::one(),
            y: UBig::one(),
            z: UBig::zero(),
        };
        let (out, stats) = staged_jacobian_double(&mut dev, &inf).unwrap();
        assert!(out.z.is_zero());
        assert_eq!(stats.multiplications, 0);
    }

    #[test]
    fn no_modulus_is_rejected() {
        let mut dev = ModSram::new(ModSramConfig::default()).unwrap();
        assert!(matches!(
            ScratchSession::new(&mut dev),
            Err(CoreError::NoModulus)
        ));
    }
}
