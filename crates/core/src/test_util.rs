//! Deterministic test doubles for the serving stack, shared by this
//! crate's integration tests, the workspace suite, and downstream
//! consumers hardening their own service/cluster wiring.
//!
//! Production code never constructs these; they live in the library
//! (rather than `#[cfg(test)]`) because fault-injection suites in
//! *other* crates — `tests/` at the workspace root, app-level soak
//! tests — need the same doubles, and a feature gate would just be an
//! extra knob for the offline build to mis-set.
//!
//! * [`FailingPrepared`] — a [`PreparedModMul`] that succeeds for the
//!   first `k − 1` calls and then, from the k-th call on, either
//!   returns an error or panics ([`FailureMode`]). The panic flavour
//!   is how a test poisons one tile of a cluster: the executing
//!   worker unwinds, the tile's panic guard fails the batch's
//!   tickets, and the router must route subsequent jobs around the
//!   sick tile.
//! * [`SlowPrepared`] — a correct context that sleeps before every
//!   multiplication: the deterministic way to hold a tile's executor
//!   busy so its bounded queue fills and backpressure/spill paths
//!   trigger on cue.
//!
//! Both ship pool constructors ([`failing_pool`], [`slow_pool`]) so a
//! test can stand up a whole [`crate::service::ModSramService`] tile —
//! or one tile of a [`crate::cluster::ServiceCluster`] — over them in
//! one line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use modsram_bigint::UBig;
use modsram_modmul::{ModMulError, PreparedModMul};

use crate::dispatch::ContextPool;

/// What a [`FailingPrepared`] does once its fuse runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Return [`ModMulError::Backend`] — the polite failure; coalesced
    /// neighbours in the same batch still complete via the service's
    /// per-job fallback.
    Error,
    /// Panic on the executing worker thread — the violent failure; the
    /// service's unwind guard must fail the batch's tickets instead of
    /// hanging their waiters.
    Panic,
}

/// A [`PreparedModMul`] that multiplies correctly until its k-th call,
/// then fails — either every call from there on ([`FailingPrepared::new`])
/// or a bounded window of calls after which it recovers for good
/// ([`FailingPrepared::recovering`], the double that exercises poison
/// **probation**: a tile that was sick, got routed around, and is
/// healthy again when the probes come knocking).
///
/// Call counting is global across threads (one shared atomic), so
/// "the k-th call" is well-defined even when dispatch workers race.
pub struct FailingPrepared {
    p: UBig,
    fail_from: u64,
    /// First call (1-based) that succeeds again; `u64::MAX` = never.
    recover_from: u64,
    mode: FailureMode,
    calls: AtomicU64,
}

impl FailingPrepared {
    /// A context for modulus `p` whose calls numbered `fail_from` and
    /// above (1-based) fail with `mode`. `fail_from == 1` fails from
    /// the very first multiplication; `fail_from == 0` is treated as 1.
    pub fn new(p: UBig, fail_from: u64, mode: FailureMode) -> Self {
        FailingPrepared {
            p,
            fail_from: fail_from.max(1),
            recover_from: u64::MAX,
            mode,
            calls: AtomicU64::new(0),
        }
    }

    /// A context whose calls `fail_from .. fail_from + fail_count`
    /// (1-based) fail with `mode`, and every call after that window
    /// succeeds again — a transient fault, not a terminal one.
    pub fn recovering(p: UBig, fail_from: u64, fail_count: u64, mode: FailureMode) -> Self {
        let fail_from = fail_from.max(1);
        FailingPrepared {
            p,
            fail_from,
            recover_from: fail_from.saturating_add(fail_count),
            mode,
            calls: AtomicU64::new(0),
        }
    }

    /// Multiplications attempted so far (including failed ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl core::fmt::Debug for FailingPrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "FailingPrepared {{ fail_from: {}, mode: {:?}, calls: {} }}",
            self.fail_from,
            self.mode,
            self.calls()
        )
    }
}

impl PreparedModMul for FailingPrepared {
    fn engine_name(&self) -> &'static str {
        "failing-test-double"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if call >= self.fail_from && call < self.recover_from {
            match self.mode {
                FailureMode::Error => {
                    return Err(ModMulError::Backend {
                        reason: format!("injected failure on call {call}"),
                    })
                }
                FailureMode::Panic => panic!("injected panic on call {call}"),
            }
        }
        Ok(&(a * b) % &self.p)
    }
}

/// A correct [`PreparedModMul`] that sleeps for a fixed delay before
/// every multiplication — the deterministic executor stall that forces
/// bounded queues to fill.
pub struct SlowPrepared {
    p: UBig,
    delay: Duration,
}

impl SlowPrepared {
    /// A context for `p` that sleeps `delay` per call.
    pub fn new(p: UBig, delay: Duration) -> Self {
        SlowPrepared { p, delay }
    }
}

impl core::fmt::Debug for SlowPrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SlowPrepared {{ delay: {:?} }}", self.delay)
    }
}

impl PreparedModMul for SlowPrepared {
    fn engine_name(&self) -> &'static str {
        "slow-test-double"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        std::thread::sleep(self.delay);
        Ok(&(a * b) % &self.p)
    }
}

/// A [`ContextPool`] whose every prepared context is a
/// [`FailingPrepared`] with the given fuse — each distinct modulus gets
/// its own call counter.
pub fn failing_pool(fail_from: u64, mode: FailureMode) -> ContextPool {
    ContextPool::new(move |p| {
        Ok(Box::new(FailingPrepared::new(p.clone(), fail_from, mode)) as Box<dyn PreparedModMul>)
    })
}

/// A [`ContextPool`] whose every prepared context is a *recovering*
/// [`FailingPrepared`]: calls `fail_from .. fail_from + fail_count`
/// fail with `mode`, later calls succeed — each distinct modulus gets
/// its own call counter. The pool for probation tests: poison a tile,
/// let the fuse burn out, and probe it back into the routable set.
pub fn recovering_pool(fail_from: u64, fail_count: u64, mode: FailureMode) -> ContextPool {
    ContextPool::new(move |p| {
        Ok(Box::new(FailingPrepared::recovering(
            p.clone(),
            fail_from,
            fail_count,
            mode,
        )) as Box<dyn PreparedModMul>)
    })
}

/// A [`ContextPool`] whose every prepared context is a
/// [`SlowPrepared`] with the given per-call delay.
pub fn slow_pool(delay: Duration) -> ContextPool {
    ContextPool::new(move |p| {
        Ok(Box::new(SlowPrepared::new(p.clone(), delay)) as Box<dyn PreparedModMul>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_prepared_counts_down_then_errors() {
        let ctx = FailingPrepared::new(UBig::from(97u64), 3, FailureMode::Error);
        let a = UBig::from(5u64);
        let b = UBig::from(6u64);
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
        assert!(matches!(
            ctx.mod_mul(&a, &b),
            Err(ModMulError::Backend { .. })
        ));
        assert!(matches!(
            ctx.mod_mul(&a, &b),
            Err(ModMulError::Backend { .. })
        ));
        assert_eq!(ctx.calls(), 4);
    }

    #[test]
    fn failing_prepared_panics_on_cue() {
        let ctx = FailingPrepared::new(UBig::from(97u64), 1, FailureMode::Panic);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = ctx.mod_mul(&UBig::from(2u64), &UBig::from(3u64));
        }));
        assert!(outcome.is_err());
    }

    #[test]
    fn recovering_prepared_heals_after_its_window() {
        let ctx = FailingPrepared::recovering(UBig::from(97u64), 2, 2, FailureMode::Error);
        let a = UBig::from(5u64);
        let b = UBig::from(6u64);
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
        assert!(ctx.mod_mul(&a, &b).is_err(), "call 2 inside the window");
        assert!(ctx.mod_mul(&a, &b).is_err(), "call 3 inside the window");
        assert_eq!(
            ctx.mod_mul(&a, &b).unwrap(),
            UBig::from(30u64),
            "call 4 is past the window: recovered for good"
        );
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
    }

    #[test]
    fn slow_prepared_is_correct() {
        let ctx = SlowPrepared::new(UBig::from(101u64), Duration::from_millis(1));
        assert_eq!(
            ctx.mod_mul(&UBig::from(20u64), &UBig::from(30u64)).unwrap(),
            UBig::from(600u64 % 101)
        );
    }
}
