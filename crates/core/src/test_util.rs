//! Deterministic test doubles for the serving stack, shared by this
//! crate's integration tests, the workspace suite, and downstream
//! consumers hardening their own service/cluster wiring.
//!
//! Production code never constructs these; they live in the library
//! (rather than `#[cfg(test)]`) because fault-injection suites in
//! *other* crates — `tests/` at the workspace root, app-level soak
//! tests — need the same doubles, and a feature gate would just be an
//! extra knob for the offline build to mis-set.
//!
//! * [`FailingPrepared`] — a [`PreparedModMul`] that succeeds for the
//!   first `k − 1` calls and then, from the k-th call on, either
//!   returns an error or panics ([`FailureMode`]). The panic flavour
//!   is how a test poisons one tile of a cluster: the executing
//!   worker unwinds, the tile's panic guard fails the batch's
//!   tickets, and the router must route subsequent jobs around the
//!   sick tile.
//! * [`SlowPrepared`] — a correct context that sleeps before every
//!   multiplication: the deterministic way to hold a tile's executor
//!   busy so its bounded queue fills and backpressure/spill paths
//!   trigger on cue.
//!
//! Both ship pool constructors ([`failing_pool`], [`slow_pool`]) so a
//! test can stand up a whole [`crate::service::ModSramService`] tile —
//! or one tile of a [`crate::cluster::ServiceCluster`] — over them in
//! one line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use modsram_bigint::UBig;
use modsram_modmul::{ModMulError, PreparedModMul, DEFAULT_LANES, LANE_MIN_PAIRS};

use crate::dispatch::ContextPool;

/// What a [`FailingPrepared`] does once its fuse runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Return [`ModMulError::Backend`] — the polite failure; coalesced
    /// neighbours in the same batch still complete via the service's
    /// per-job fallback.
    Error,
    /// Panic on the executing worker thread — the violent failure; the
    /// service's unwind guard must fail the batch's tickets instead of
    /// hanging their waiters.
    Panic,
}

/// A [`PreparedModMul`] that multiplies correctly until its k-th call,
/// then fails — either every call from there on ([`FailingPrepared::new`])
/// or a bounded window of calls after which it recovers for good
/// ([`FailingPrepared::recovering`], the double that exercises poison
/// **probation**: a tile that was sick, got routed around, and is
/// healthy again when the probes come knocking).
///
/// Call counting is global across threads (one shared atomic), so
/// "the k-th call" is well-defined even when dispatch workers race.
pub struct FailingPrepared {
    p: UBig,
    fail_from: u64,
    /// First call (1-based) that succeeds again; `u64::MAX` = never.
    recover_from: u64,
    mode: FailureMode,
    calls: AtomicU64,
    laned_batches: AtomicU64,
}

impl FailingPrepared {
    /// A context for modulus `p` whose calls numbered `fail_from` and
    /// above (1-based) fail with `mode`. `fail_from == 1` fails from
    /// the very first multiplication; `fail_from == 0` is treated as 1.
    pub fn new(p: UBig, fail_from: u64, mode: FailureMode) -> Self {
        FailingPrepared {
            p,
            fail_from: fail_from.max(1),
            recover_from: u64::MAX,
            mode,
            calls: AtomicU64::new(0),
            laned_batches: AtomicU64::new(0),
        }
    }

    /// A context whose calls `fail_from .. fail_from + fail_count`
    /// (1-based) fail with `mode`, and every call after that window
    /// succeeds again — a transient fault, not a terminal one.
    pub fn recovering(p: UBig, fail_from: u64, fail_count: u64, mode: FailureMode) -> Self {
        let fail_from = fail_from.max(1);
        FailingPrepared {
            p,
            fail_from,
            recover_from: fail_from.saturating_add(fail_count),
            mode,
            calls: AtomicU64::new(0),
            laned_batches: AtomicU64::new(0),
        }
    }

    /// Multiplications attempted so far (including failed ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Batches that entered through the lane-vectorized seam
    /// ([`PreparedModMul::mod_mul_batch_laned`]) — lets a test assert
    /// the fault actually fired on the laned path.
    pub fn laned_batches(&self) -> u64 {
        self.laned_batches.load(Ordering::Relaxed)
    }
}

impl core::fmt::Debug for FailingPrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "FailingPrepared {{ fail_from: {}, mode: {:?}, calls: {} }}",
            self.fail_from,
            self.mode,
            self.calls()
        )
    }
}

impl PreparedModMul for FailingPrepared {
    fn engine_name(&self) -> &'static str {
        "failing-test-double"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if call >= self.fail_from && call < self.recover_from {
            match self.mode {
                FailureMode::Error => {
                    return Err(ModMulError::Backend {
                        reason: format!("injected failure on call {call}"),
                    })
                }
                FailureMode::Panic => panic!("injected panic on call {call}"),
            }
        }
        Ok(&(a * b) % &self.p)
    }

    fn mod_mul_batch(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        // Mirror the real engines' dispatch: batches of
        // `LANE_MIN_PAIRS` and up take the laned seam, shorter ones the
        // scalar seam — so fault-injection suites exercise the same
        // path production traffic does.
        if pairs.len() >= LANE_MIN_PAIRS {
            self.mod_mul_batch_laned(pairs, DEFAULT_LANES)
        } else {
            self.mod_mul_batch_scalar(pairs)
        }
    }

    fn mod_mul_batch_scalar(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        pairs.iter().map(|(a, b)| self.mod_mul(a, b)).collect()
    }

    fn mod_mul_batch_laned(
        &self,
        pairs: &[(UBig, UBig)],
        _lanes: usize,
    ) -> Result<Vec<UBig>, ModMulError> {
        self.laned_batches.fetch_add(1, Ordering::Relaxed);
        // Per-pair call counting is unchanged on the laned path, so
        // "the k-th call fails" means the same thing on every seam.
        pairs.iter().map(|(a, b)| self.mod_mul(a, b)).collect()
    }
}

/// A correct [`PreparedModMul`] that sleeps for a fixed delay before
/// every multiplication — the deterministic executor stall that forces
/// bounded queues to fill. On the lane-vectorized seam the stall is
/// charged once per lane *group* (a laned kernel advances `lanes`
/// multiplications per limb pass), so slow-tile tests see the same
/// relative laned-over-scalar shape real engines have.
pub struct SlowPrepared {
    p: UBig,
    delay: Duration,
    sleeps: AtomicU64,
}

impl SlowPrepared {
    /// A context for `p` that sleeps `delay` per call.
    pub fn new(p: UBig, delay: Duration) -> Self {
        SlowPrepared {
            p,
            delay,
            sleeps: AtomicU64::new(0),
        }
    }

    /// Stalls taken so far — per multiplication on the per-call and
    /// scalar seams, per lane group on the laned seam.
    pub fn sleeps(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }
}

impl core::fmt::Debug for SlowPrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SlowPrepared {{ delay: {:?} }}", self.delay)
    }
}

impl PreparedModMul for SlowPrepared {
    fn engine_name(&self) -> &'static str {
        "slow-test-double"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        self.sleeps.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        Ok(&(a * b) % &self.p)
    }

    fn mod_mul_batch(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        if pairs.len() >= LANE_MIN_PAIRS {
            self.mod_mul_batch_laned(pairs, DEFAULT_LANES)
        } else {
            self.mod_mul_batch_scalar(pairs)
        }
    }

    fn mod_mul_batch_scalar(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        pairs.iter().map(|(a, b)| self.mod_mul(a, b)).collect()
    }

    fn mod_mul_batch_laned(
        &self,
        pairs: &[(UBig, UBig)],
        lanes: usize,
    ) -> Result<Vec<UBig>, ModMulError> {
        let lanes = lanes.max(1);
        let mut out = Vec::with_capacity(pairs.len());
        for group in pairs.chunks(lanes) {
            self.sleeps.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.delay);
            for (a, b) in group {
                out.push(&(a * b) % &self.p);
            }
        }
        Ok(out)
    }
}

/// A [`ContextPool`] whose every prepared context is a
/// [`FailingPrepared`] with the given fuse — each distinct modulus gets
/// its own call counter.
pub fn failing_pool(fail_from: u64, mode: FailureMode) -> ContextPool {
    ContextPool::new(move |p| {
        Ok(Box::new(FailingPrepared::new(p.clone(), fail_from, mode)) as Box<dyn PreparedModMul>)
    })
}

/// A [`ContextPool`] whose every prepared context is a *recovering*
/// [`FailingPrepared`]: calls `fail_from .. fail_from + fail_count`
/// fail with `mode`, later calls succeed — each distinct modulus gets
/// its own call counter. The pool for probation tests: poison a tile,
/// let the fuse burn out, and probe it back into the routable set.
pub fn recovering_pool(fail_from: u64, fail_count: u64, mode: FailureMode) -> ContextPool {
    ContextPool::new(move |p| {
        Ok(Box::new(FailingPrepared::recovering(
            p.clone(),
            fail_from,
            fail_count,
            mode,
        )) as Box<dyn PreparedModMul>)
    })
}

/// A [`ContextPool`] whose every prepared context is a
/// [`SlowPrepared`] with the given per-call delay.
pub fn slow_pool(delay: Duration) -> ContextPool {
    ContextPool::new(move |p| {
        Ok(Box::new(SlowPrepared::new(p.clone(), delay)) as Box<dyn PreparedModMul>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_prepared_counts_down_then_errors() {
        let ctx = FailingPrepared::new(UBig::from(97u64), 3, FailureMode::Error);
        let a = UBig::from(5u64);
        let b = UBig::from(6u64);
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
        assert!(matches!(
            ctx.mod_mul(&a, &b),
            Err(ModMulError::Backend { .. })
        ));
        assert!(matches!(
            ctx.mod_mul(&a, &b),
            Err(ModMulError::Backend { .. })
        ));
        assert_eq!(ctx.calls(), 4);
    }

    #[test]
    fn failing_prepared_panics_on_cue() {
        let ctx = FailingPrepared::new(UBig::from(97u64), 1, FailureMode::Panic);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = ctx.mod_mul(&UBig::from(2u64), &UBig::from(3u64));
        }));
        assert!(outcome.is_err());
    }

    #[test]
    fn recovering_prepared_heals_after_its_window() {
        let ctx = FailingPrepared::recovering(UBig::from(97u64), 2, 2, FailureMode::Error);
        let a = UBig::from(5u64);
        let b = UBig::from(6u64);
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
        assert!(ctx.mod_mul(&a, &b).is_err(), "call 2 inside the window");
        assert!(ctx.mod_mul(&a, &b).is_err(), "call 3 inside the window");
        assert_eq!(
            ctx.mod_mul(&a, &b).unwrap(),
            UBig::from(30u64),
            "call 4 is past the window: recovered for good"
        );
        assert_eq!(ctx.mod_mul(&a, &b).unwrap(), UBig::from(30u64));
    }

    #[test]
    fn slow_prepared_is_correct() {
        let ctx = SlowPrepared::new(UBig::from(101u64), Duration::from_millis(1));
        assert_eq!(
            ctx.mod_mul(&UBig::from(20u64), &UBig::from(30u64)).unwrap(),
            UBig::from(600u64 % 101)
        );
    }

    fn pairs(n: u64) -> Vec<(UBig, UBig)> {
        (0..n)
            .map(|i| (UBig::from(i + 2), UBig::from(2 * i + 3)))
            .collect()
    }

    #[test]
    fn failing_batch_dispatches_laned_and_fires_the_fuse_there() {
        let ctx = FailingPrepared::new(UBig::from(97u64), 6, FailureMode::Error);
        let batch = pairs(LANE_MIN_PAIRS as u64 + 4);
        assert!(ctx.mod_mul_batch(&batch).is_err(), "fuse is inside batch");
        assert_eq!(
            ctx.laned_batches(),
            1,
            "long batch must take the laned seam"
        );
        // Short batches stay scalar.
        let short = FailingPrepared::new(UBig::from(97u64), u64::MAX, FailureMode::Error);
        short
            .mod_mul_batch(&pairs(LANE_MIN_PAIRS as u64 - 1))
            .unwrap();
        assert_eq!(short.laned_batches(), 0);
    }

    #[test]
    fn slow_batch_amortizes_the_stall_per_lane_group() {
        let p = UBig::from(101u64);
        let ctx = SlowPrepared::new(p.clone(), Duration::from_micros(10));
        let batch = pairs(16);
        let out = ctx.mod_mul_batch_laned(&batch, 8).unwrap();
        let expect: Vec<UBig> = batch.iter().map(|(a, b)| &(a * b) % &p).collect();
        assert_eq!(out, expect, "laned seam must stay correct");
        assert_eq!(ctx.sleeps(), 2, "one stall per group of 8, not per pair");
        ctx.mod_mul_batch_scalar(&batch[..3]).unwrap();
        assert_eq!(ctx.sleeps(), 5, "scalar seam stalls per pair");
    }
}
