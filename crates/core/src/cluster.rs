//! Multi-tile scale-out: a [`ServiceCluster`] routes a shared job
//! stream across N independent [`ModSramService`] tiles — the
//! multi-macro deployment shape (one ModSRAM macro per tile) that
//! LaMoS argues SRAM-CiM modular multiplication scales out to, grown
//! from this repo's single-tile streaming front-end.
//!
//! # Routing: modulus affinity first
//!
//! Every job is routed by **rendezvous hashing** on its modulus: each
//! `(modulus, tile)` pair gets a deterministic score and the job's
//! *home* is the highest-scoring live tile. Two properties follow:
//!
//! * **Coalescing survives sharding.** All traffic for one modulus
//!   lands on one tile, so that tile's batcher still sees long
//!   modulus-major, multiplicand-major runs and the paper's Table 1b
//!   LUT reuse keeps amortising. Hashing jobs round-robin instead
//!   would shred exactly the locality the architecture is built on.
//! * **Stable under membership change.** When a tile is removed from
//!   the candidate set (poisoned or stopped), only the moduli homed on
//!   *that* tile move (to their next-ranked tile); every other
//!   modulus stays put — no global reshuffle, no cold LUT refills on
//!   healthy tiles.
//!
//! # Backpressure: spill policies and their trade-off
//!
//! Each tile's queue is bounded, so the router must decide what to do
//! when a job's home tile refuses it with `QueueFull`. That choice is
//! the [`SpillPolicy`], and it is a genuine trade-off, not a free
//! knob:
//!
//! * [`SpillPolicy::Strict`] — never leave the home tile. Preserves
//!   perfect per-modulus affinity (every LUT refill for a modulus is
//!   paid on exactly one tile) and keeps per-tenant interference
//!   zero, at the cost of head-of-line blocking: a hot tenant
//!   saturates its home tile while neighbours idle. Non-blocking
//!   submission surfaces the saturation as
//!   [`CoreError::AllTilesSaturated`] so an upstream load-shedder can
//!   act; blocking submission waits for the home queue.
//! * [`SpillPolicy::Spill`] — after the home refuses, try up to
//!   `max_hops` other tiles, least-loaded (most queue headroom)
//!   first. Tail latency under skew improves — work flows to idle
//!   macros — but each spilled modulus is *prepared again* on the
//!   spill tile (a context-pool miss: Montgomery constants, Barrett
//!   µ, or a full Table 1b LUT fill) and the spill tile's batcher
//!   coalesces a foreign modulus it will likely never see again, so
//!   its resident tenants lose some multiplicand-run length. Spilling
//!   buys throughput under overload by diluting the very locality
//!   affinity routing exists to protect — which is why `max_hops`
//!   bounds the dilution.
//!
//! Blocking [`ClusterHandle::submit`] falls back to waiting on the
//! home tile once every allowed tile has refused, so accepted load
//! eventually lands with affinity; non-blocking
//! [`ClusterHandle::try_submit`] refuses instead.
//!
//! # Fault containment
//!
//! Tiles fail independently. A panicking context (see
//! [`crate::test_util::FailingPrepared`]) unwinds one executor, whose
//! guard fails that batch's tickets — waiters get
//! [`ServiceError::Stopped`](crate::service::ServiceError::Stopped)
//! instead of hanging, and other tiles never notice. The router
//! consults each tile's [`TileHealth`] and, once a tile's caught-panic
//! count reaches [`ClusterConfig::poison_after`], treats it as
//! poisoned and routes around it (its moduli fail over to their
//! next-ranked tile). [`ServiceCluster::shutdown`] fans out to every
//! tile and drains each accepted ticket exactly once.
//!
//! # Examples
//!
//! ```
//! use modsram_bigint::UBig;
//! use modsram_core::cluster::{ClusterConfig, ServiceCluster};
//! use modsram_core::dispatch::MulJob;
//!
//! let cluster =
//!     ServiceCluster::for_engine_name("montgomery", 2, ClusterConfig::default()).unwrap();
//! let ticket = cluster
//!     .submit(MulJob::new(UBig::from(55u64), UBig::from(44u64), UBig::from(97u64)))
//!     .unwrap();
//! assert_eq!(ticket.wait().unwrap(), UBig::from(55u64 * 44 % 97));
//! let stats = cluster.shutdown();
//! assert_eq!(stats.completed, 1);
//! assert_eq!(stats.affinity_hits, 1);
//! ```

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use modsram_bigint::UBig;
use modsram_modmul::{ModMulError, PreparedModMul};

use crate::dispatch::{ContextPool, MulJob};
use crate::error::CoreError;
use crate::modsram::ModSramConfig;
use crate::service::{
    backend_error, ticket_result, ModSramService, ServiceConfig, ServiceStats, SubmitError, Ticket,
    TileHealth,
};

/// What the router does when a job's home tile refuses it with
/// `QueueFull` (see the module docs for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Stay on the home tile: block there ([`ClusterHandle::submit`])
    /// or refuse with [`CoreError::AllTilesSaturated`]
    /// ([`ClusterHandle::try_submit`]).
    Strict,
    /// Try up to `max_hops` other live tiles, most queue headroom
    /// first, before blocking on (or refusing for) the home tile.
    Spill {
        /// Maximum non-home tiles to try per submission.
        max_hops: usize,
    },
}

impl Default for SpillPolicy {
    /// One spill hop: relieves hot-tenant skew while keeping LUT
    /// dilution bounded to a single foreign tile per overloaded burst.
    fn default() -> Self {
        SpillPolicy::Spill { max_hops: 1 }
    }
}

/// Tuning knobs of a [`ServiceCluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Backpressure policy (see [`SpillPolicy`]).
    pub spill: SpillPolicy,
    /// Per-tile service configuration (every tile is configured
    /// identically; heterogeneous tiles can be built via
    /// [`ServiceCluster::from_services`]).
    pub service: ServiceConfig,
    /// Caught executor panics after which a tile is considered
    /// poisoned and routed around (`0` disables poison detection).
    pub poison_after: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            spill: SpillPolicy::default(),
            service: ServiceConfig::default(),
            poison_after: 3,
        }
    }
}

/// Why the cluster refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterSubmitError {
    /// Every tile the spill policy allowed is at queue capacity
    /// ([`ClusterHandle::try_submit`] only — blocking submission waits
    /// on the home tile instead).
    AllTilesSaturated {
        /// Tiles whose queues refused the job.
        tried: usize,
    },
    /// The cluster (or every routable tile) has shut down.
    Stopped,
}

impl core::fmt::Display for ClusterSubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterSubmitError::AllTilesSaturated { tried } => {
                write!(f, "all {tried} tile(s) the spill policy allows are full")
            }
            ClusterSubmitError::Stopped => write!(f, "cluster has shut down"),
        }
    }
}

impl std::error::Error for ClusterSubmitError {}

impl From<ClusterSubmitError> for CoreError {
    fn from(e: ClusterSubmitError) -> Self {
        match e {
            ClusterSubmitError::AllTilesSaturated { tried } => {
                CoreError::AllTilesSaturated { tried }
            }
            ClusterSubmitError::Stopped => CoreError::ClusterStopped,
        }
    }
}

/// One tile plus its routing tallies.
struct TileCell {
    service: ModSramService,
    /// Jobs accepted with this tile as their natural home.
    routed: AtomicU64,
    /// Jobs accepted here after spilling (or failing over) from
    /// another tile's home.
    spilled_in: AtomicU64,
}

/// State shared by the cluster front, its handles, and its prepared
/// façades.
struct ClusterShared {
    tiles: Vec<TileCell>,
    spill: SpillPolicy,
    poison_after: u64,
    stopped: AtomicBool,
    affinity_hits: AtomicU64,
    spilled: AtomicU64,
    saturated_rejections: AtomicU64,
}

/// 64-bit finaliser (splitmix64) — mixes the modulus key with a tile
/// index into a rendezvous score.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The prepared-modulus routing key: equal moduli map to equal keys,
/// so all traffic for one prepared context shares one home tile.
fn modulus_key(p: &UBig) -> u64 {
    let mut h = DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

/// The natural home tile for modulus `p` in a cluster of `tiles` —
/// the same deterministic rendezvous placement a live
/// [`ServiceCluster`] of that size computes, exposed standalone so
/// workload planners (capacity sizing, sweep generators) can predict
/// placement without standing a cluster up.
pub fn home_tile_for(p: &UBig, tiles: usize) -> usize {
    let key = modulus_key(p);
    (0..tiles.max(1))
        .max_by_key(|&i| {
            (
                mix64(key ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                std::cmp::Reverse(i),
            )
        })
        .unwrap_or(0)
}

impl ClusterShared {
    /// Tile indices in rendezvous order (best score first) for a
    /// modulus key — deterministic for a given key and tile count.
    fn ranked(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.tiles.len()).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse(mix64(key ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        });
        order
    }

    /// The rank-0 tile of [`ClusterShared::ranked`] without allocating
    /// or sorting — the submission hot path only needs the argmax, and
    /// only falls back to the full ordering when the home tile is
    /// unusable.
    fn natural_home(&self, key: u64) -> usize {
        (0..self.tiles.len())
            .max_by_key(|&i| {
                (
                    mix64(key ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    std::cmp::Reverse(i),
                )
            })
            .unwrap_or(0)
    }

    /// The home tile for a modulus key: the natural (rank-0) tile when
    /// it is usable — the common case, probed with one health check —
    /// otherwise the first usable tile in full rendezvous order.
    /// `None` when every tile is stopped or poisoned.
    fn route(&self, key: u64) -> Option<(usize, usize)> {
        let natural = self.natural_home(key);
        if self.usable(natural) {
            return Some((natural, natural));
        }
        self.ranked(key)
            .into_iter()
            .find(|&i| self.usable(i))
            .map(|home| (home, natural))
    }

    /// Whether a tile may be targeted at all: not stopped and not
    /// poisoned.
    fn usable(&self, tile: usize) -> bool {
        self.usable_health(&self.tiles[tile].service.health())
    }

    /// [`ClusterShared::usable`] over an already-taken health snapshot,
    /// so callers that also need capacity probe each tile only once.
    fn usable_health(&self, health: &TileHealth) -> bool {
        !health.stopped && (self.poison_after == 0 || health.executor_panics < self.poison_after)
    }

    /// Records an accepted job: per-tile tallies plus the cluster's
    /// affinity accounting (`natural` is the rank-0 tile the modulus
    /// hashes to, `landed` where the job was actually accepted).
    fn record(&self, landed: usize, natural: usize) {
        if landed == natural {
            self.tiles[landed].routed.fetch_add(1, Ordering::Relaxed);
            self.affinity_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.tiles[landed]
                .spilled_in
                .fetch_add(1, Ordering::Relaxed);
            self.spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spill candidates for a job homed on `home`: usable non-home
    /// tiles, most queue headroom first, truncated to the policy's hop
    /// budget. Empty under [`SpillPolicy::Strict`].
    fn spill_candidates(&self, home: usize) -> Vec<usize> {
        let SpillPolicy::Spill { max_hops } = self.spill else {
            return Vec::new();
        };
        let mut others: Vec<(usize, usize)> = (0..self.tiles.len())
            .filter(|&i| i != home)
            .filter_map(|i| {
                // One health probe per tile covers both liveness and
                // headroom — this runs on the overloaded path, where
                // extra lock traffic on tile queues hurts most.
                let health = self.tiles[i].service.health();
                self.usable_health(&health).then(|| (health.headroom(), i))
            })
            .collect();
        others.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        others.into_iter().map(|(_, i)| i).take(max_hops).collect()
    }

    fn submit_inner(&self, job: MulJob, block: bool) -> Result<Ticket, ClusterSubmitError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ClusterSubmitError::Stopped);
        }
        let Some((home, natural)) = self.route(modulus_key(&job.modulus)) else {
            return Err(ClusterSubmitError::Stopped);
        };

        let mut candidates = vec![home];
        candidates.extend(self.spill_candidates(home));
        let tried = candidates.len();
        for tile in candidates {
            match self.tiles[tile].service.try_submit(job.clone()) {
                Ok(ticket) => {
                    self.record(tile, natural);
                    return Ok(ticket);
                }
                // Full or racing its own shutdown: move to the next
                // tile the policy allows.
                Err(SubmitError::QueueFull) | Err(SubmitError::Stopped) => {}
            }
        }
        if block {
            // Every allowed tile refused without blocking; wait for
            // the home queue so sustained overload still lands with
            // affinity (and still backpressures the producer).
            match self.tiles[home].service.submit(job) {
                Ok(ticket) => {
                    self.record(home, natural);
                    Ok(ticket)
                }
                Err(_) => Err(ClusterSubmitError::Stopped),
            }
        } else {
            self.saturated_rejections.fetch_add(1, Ordering::Relaxed);
            Err(ClusterSubmitError::AllTilesSaturated { tried })
        }
    }

    fn submit_many(&self, jobs: Vec<MulJob>) -> Result<Vec<Ticket>, ClusterSubmitError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ClusterSubmitError::Stopped);
        }
        // Route every job to its home tile (bulk submission trusts
        // affinity — spilling inside a batch would interleave two
        // tiles' completions for one caller), then forward each tile's
        // share under a single queue acquisition.
        let mut per_tile: Vec<Vec<(usize, usize, MulJob)>> =
            (0..self.tiles.len()).map(|_| Vec::new()).collect();
        for (idx, job) in jobs.into_iter().enumerate() {
            let Some((home, natural)) = self.route(modulus_key(&job.modulus)) else {
                return Err(ClusterSubmitError::Stopped);
            };
            per_tile[home].push((idx, natural, job));
        }
        let total: usize = per_tile.iter().map(Vec::len).sum();
        let mut slots: Vec<Option<Ticket>> = (0..total).map(|_| None).collect();
        for (tile, share) in per_tile.into_iter().enumerate() {
            if share.is_empty() {
                continue;
            }
            let mut meta = Vec::with_capacity(share.len());
            let mut tile_jobs = Vec::with_capacity(share.len());
            for (idx, natural, job) in share {
                meta.push((idx, natural));
                tile_jobs.push(job);
            }
            let tickets = self.tiles[tile]
                .service
                .handle()
                .submit_many(tile_jobs)
                .map_err(|_| ClusterSubmitError::Stopped)?;
            // Only now are these jobs actually queued — recording
            // earlier would overcount `submitted` when a tile stops
            // mid-batch and its share (plus later tiles') never lands.
            for ((idx, natural), ticket) in meta.into_iter().zip(tickets) {
                self.record(tile, natural);
                slots[idx] = Some(ticket);
            }
        }
        Ok(slots
            .into_iter()
            .map(|t| t.expect("every job was routed to exactly one tile"))
            .collect())
    }
}

/// A cloneable cluster submission endpoint — the multi-tile analogue
/// of [`crate::service::SubmitHandle`], cheap to hand to every
/// producer thread.
#[derive(Clone)]
pub struct ClusterHandle {
    shared: Arc<ClusterShared>,
}

impl core::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClusterHandle {{ tiles: {} }}", self.shared.tiles.len())
    }
}

impl ClusterHandle {
    /// Submits one job, blocking on the home tile's queue once every
    /// tile the spill policy allows has refused without blocking.
    ///
    /// # Errors
    ///
    /// [`ClusterSubmitError::Stopped`] once the cluster has shut down
    /// or no tile is routable.
    pub fn submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.shared.submit_inner(job, true)
    }

    /// Submits one job without blocking: home tile first, then (under
    /// [`SpillPolicy::Spill`]) the least-loaded other tiles.
    ///
    /// # Errors
    ///
    /// [`ClusterSubmitError::AllTilesSaturated`] when every allowed
    /// tile is full (counted in
    /// [`ClusterStats::saturated_rejections`]),
    /// [`ClusterSubmitError::Stopped`] after shutdown.
    pub fn try_submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.shared.submit_inner(job, false)
    }

    /// Submits a whole batch, each job routed to its home tile
    /// (bulk submission never spills), with per-tile bulk queue
    /// acquisition. Tickets are returned in job order.
    ///
    /// # Errors
    ///
    /// [`ClusterSubmitError::Stopped`] if the cluster shuts down
    /// mid-batch; jobs already queued by then still drain, but their
    /// tickets are not returned.
    pub fn submit_many(&self, jobs: Vec<MulJob>) -> Result<Vec<Ticket>, ClusterSubmitError> {
        self.shared.submit_many(jobs)
    }
}

/// Per-tile routing and service statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TileStats {
    /// Jobs accepted with this tile as their natural home.
    pub routed: u64,
    /// Jobs accepted here after spilling from another tile's home.
    pub spilled_in: u64,
    /// `true` when the router currently treats this tile as poisoned.
    pub poisoned: bool,
    /// The tile's capacity/liveness probe at snapshot time.
    pub health: TileHealth,
    /// The tile's full service statistics (latency percentiles,
    /// coalesce shape, pool counters, modelled occupancy).
    pub service: ServiceStats,
}

/// Point-in-time statistics snapshot of the whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-tile breakdown, indexed by tile id.
    pub tiles: Vec<TileStats>,
    /// Jobs accepted cluster-wide.
    pub submitted: u64,
    /// Jobs that landed on their natural home tile.
    pub affinity_hits: u64,
    /// Jobs that landed off their natural home tile (backpressure
    /// spill or poison failover).
    pub spilled: u64,
    /// Non-blocking submissions refused with
    /// [`CoreError::AllTilesSaturated`].
    pub saturated_rejections: u64,
    /// Jobs completed successfully, summed over tiles.
    pub completed: u64,
    /// Jobs completed with an error, summed over tiles.
    pub failed: u64,
}

impl ClusterStats {
    /// Fraction of accepted jobs that landed on their natural home
    /// tile (1.0 when nothing was accepted yet).
    pub fn affinity_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.affinity_hits as f64 / self.submitted as f64
        }
    }

    /// The busiest tile's modelled occupancy, in device cycles — the
    /// cluster's modelled makespan, since tiles are independent macros
    /// running concurrently.
    pub fn modelled_makespan_cycles(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.service.modelled_cycles_total)
            .max()
            .unwrap_or(0)
    }
}

/// The multi-tile router (see the module docs).
pub struct ServiceCluster {
    shared: Arc<ClusterShared>,
}

impl core::fmt::Debug for ServiceCluster {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ServiceCluster {{ tiles: {}, policy: {:?} }}",
            self.shared.tiles.len(),
            self.shared.spill
        )
    }
}

impl ServiceCluster {
    /// Builds a cluster with one tile per pool, every tile running
    /// `config.service`.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty (a cluster needs at least one tile),
    /// or on the per-tile panics of [`ModSramService::new`].
    pub fn new(pools: Vec<ContextPool>, config: ClusterConfig) -> Self {
        let services = pools
            .into_iter()
            .map(|pool| ModSramService::new(pool, config.service.clone()))
            .collect();
        Self::from_services(services, config.spill, config.poison_after)
    }

    /// Builds a cluster from already-running (possibly heterogeneous)
    /// tiles.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty.
    pub fn from_services(
        services: Vec<ModSramService>,
        spill: SpillPolicy,
        poison_after: u64,
    ) -> Self {
        assert!(!services.is_empty(), "a cluster needs at least one tile");
        let tiles = services
            .into_iter()
            .map(|service| TileCell {
                service,
                routed: AtomicU64::new(0),
                spilled_in: AtomicU64::new(0),
            })
            .collect();
        ServiceCluster {
            shared: Arc::new(ClusterShared {
                tiles,
                spill,
                poison_after,
                stopped: AtomicBool::new(false),
                affinity_hits: AtomicU64::new(0),
                spilled: AtomicU64::new(0),
                saturated_rejections: AtomicU64::new(0),
            }),
        }
    }

    /// Cluster of `tiles` identical tiles over a registry engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownEngine`] for a name absent from the
    /// registry.
    pub fn for_engine_name(
        name: &str,
        tiles: usize,
        config: ClusterConfig,
    ) -> Result<Self, CoreError> {
        let pools: Result<Vec<ContextPool>, CoreError> = (0..tiles.max(1))
            .map(|_| {
                ContextPool::for_engine_name(name).ok_or_else(|| CoreError::UnknownEngine {
                    name: name.to_string(),
                })
            })
            .collect();
        Ok(Self::new(pools?, config))
    }

    /// Cluster of `tiles` identical tiles, each over its own pool of
    /// cycle-accurate ModSRAM devices.
    pub fn for_modsram(device: ModSramConfig, tiles: usize, config: ClusterConfig) -> Self {
        let pools = (0..tiles.max(1))
            .map(|_| ContextPool::for_modsram(device.clone()))
            .collect();
        Self::new(pools, config)
    }

    /// A cloneable submission endpoint for producer threads.
    pub fn handle(&self) -> ClusterHandle {
        ClusterHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits one job, blocking once every allowed tile has refused
    /// (see [`ClusterHandle::submit`]).
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::submit`].
    pub fn submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.handle().submit(job)
    }

    /// Submits one job without blocking (see
    /// [`ClusterHandle::try_submit`]).
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::try_submit`].
    pub fn try_submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.handle().try_submit(job)
    }

    /// A [`PreparedModMul`] façade over the cluster for modulus `p`:
    /// the drop-in that lets engine-generic consumers (curves,
    /// committers, NTT shards) stream through the router unchanged.
    pub fn prepared(&self, p: &UBig) -> ClusterPrepared {
        ClusterPrepared {
            handle: self.handle(),
            p: p.clone(),
        }
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.shared.tiles.len()
    }

    /// The natural home tile (rendezvous rank 0, health ignored) for a
    /// modulus — where its traffic lands in steady state.
    pub fn home_tile(&self, p: &UBig) -> usize {
        self.shared.natural_home(modulus_key(p))
    }

    /// A point-in-time statistics snapshot across every tile.
    pub fn stats(&self) -> ClusterStats {
        let tiles: Vec<TileStats> = self
            .shared
            .tiles
            .iter()
            .map(|cell| {
                let health = cell.service.health();
                TileStats {
                    routed: cell.routed.load(Ordering::Relaxed),
                    spilled_in: cell.spilled_in.load(Ordering::Relaxed),
                    poisoned: self.shared.poison_after > 0
                        && health.executor_panics >= self.shared.poison_after,
                    health,
                    service: cell.service.stats(),
                }
            })
            .collect();
        let affinity_hits = self.shared.affinity_hits.load(Ordering::Relaxed);
        let spilled = self.shared.spilled.load(Ordering::Relaxed);
        ClusterStats {
            submitted: affinity_hits + spilled,
            affinity_hits,
            spilled,
            saturated_rejections: self.shared.saturated_rejections.load(Ordering::Relaxed),
            completed: tiles.iter().map(|t| t.service.completed).sum(),
            failed: tiles.iter().map(|t| t.service.failed).sum(),
            tiles,
        }
    }

    /// Starts a fresh statistics window on every tile (see
    /// [`ModSramService::reset_window`]); routing tallies are lifetime
    /// counters and are untouched.
    pub fn reset_window(&self) {
        for cell in &self.shared.tiles {
            cell.service.reset_window();
        }
    }

    /// Gracefully stops the cluster: refuses new submissions, then
    /// fans out to every tile's draining shutdown — every accepted
    /// ticket completes exactly once before this returns. Idempotent.
    pub fn shutdown(&self) -> ClusterStats {
        self.shared.stopped.store(true, Ordering::Release);
        // Tiles drain concurrently: each `shutdown` closes that tile's
        // queue and joins its threads while the remaining tiles keep
        // executing their own backlogs.
        for cell in &self.shared.tiles {
            cell.service.shutdown();
        }
        self.stats()
    }
}

impl Drop for ServiceCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A [`PreparedModMul`] whose every multiplication is routed through a
/// [`ServiceCluster`] — the cluster analogue of
/// [`crate::service::ServicePrepared`].
///
/// Obtained from [`ServiceCluster::prepared`]. `mod_mul` submits one
/// job and blocks on its ticket; `mod_mul_batch` submits the whole
/// batch (routed home-tile-major) before waiting, so independent
/// multiplications still coalesce on their home tile.
pub struct ClusterPrepared {
    handle: ClusterHandle,
    p: UBig,
}

impl core::fmt::Debug for ClusterPrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClusterPrepared {{ p: {} }}", self.p)
    }
}

impl PreparedModMul for ClusterPrepared {
    fn engine_name(&self) -> &'static str {
        "cluster"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        let ticket = self
            .handle
            .submit(MulJob::new(a.clone(), b.clone(), self.p.clone()))
            .map_err(backend_error)?;
        ticket_result(ticket.wait())
    }

    fn mod_mul_batch(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        let jobs: Vec<MulJob> = pairs
            .iter()
            .map(|(a, b)| MulJob::new(a.clone(), b.clone(), self.p.clone()))
            .collect();
        let tickets = self.handle.submit_many(jobs).map_err(backend_error)?;
        tickets.iter().map(|t| ticket_result(t.wait())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small_config() -> ClusterConfig {
        ClusterConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 8,
                flush_interval: Duration::from_micros(50),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn rendezvous_order_is_a_stable_permutation() {
        let cluster = ServiceCluster::for_engine_name("barrett", 4, small_config()).unwrap();
        for m in [97u64, 101, 65537, 1_000_003, 0xffff_fffb] {
            let p = UBig::from(m);
            let home = cluster.home_tile(&p);
            assert!(home < 4);
            // Stable across calls and equal to the standalone planner.
            assert_eq!(home, cluster.home_tile(&p));
            assert_eq!(home, home_tile_for(&p, 4));
            let order = cluster.shared.ranked(modulus_key(&p));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "ranked() must permute tiles");
        }
    }

    #[test]
    fn moduli_spread_across_tiles() {
        let cluster = ServiceCluster::for_engine_name("barrett", 4, small_config()).unwrap();
        let mut per_tile = [0usize; 4];
        for i in 0..128u64 {
            per_tile[cluster.home_tile(&UBig::from(2 * i + 3))] += 1;
        }
        for (tile, &count) in per_tile.iter().enumerate() {
            assert!(count > 0, "tile {tile} homed no modulus out of 128");
        }
    }

    #[test]
    fn submit_routes_and_completes_with_full_affinity() {
        let cluster = ServiceCluster::for_engine_name("barrett", 2, small_config()).unwrap();
        let moduli = [97u64, 101, 1_000_003, 0xffff_fffb];
        let mut tickets = Vec::new();
        for i in 0..40u64 {
            let p = UBig::from(moduli[(i % 4) as usize]);
            let a = UBig::from(i * 7 + 1);
            let b = UBig::from(i * 11 + 2);
            let want = &(&a * &b) % &p;
            tickets.push((cluster.submit(MulJob::new(a, b, p)).unwrap(), want));
        }
        for (ticket, want) in &tickets {
            assert_eq!(&ticket.wait().unwrap(), want);
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.submitted, 40);
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.spilled, 0, "uncontended cluster never spills");
        assert_eq!(stats.affinity_hit_rate(), 1.0);
        // Routing tallies agree with the per-tile service counters.
        for tile in &stats.tiles {
            assert_eq!(tile.routed + tile.spilled_in, tile.service.submitted);
        }
    }

    #[test]
    fn submit_many_returns_tickets_in_job_order() {
        let cluster = ServiceCluster::for_engine_name("barrett", 3, small_config()).unwrap();
        let jobs: Vec<MulJob> = (0..30u64)
            .map(|i| {
                let p = UBig::from([97u64, 101, 65537][(i % 3) as usize]);
                MulJob::new(UBig::from(i + 2), UBig::from(i + 5), p)
            })
            .collect();
        let tickets = cluster.handle().submit_many(jobs.clone()).unwrap();
        assert_eq!(tickets.len(), jobs.len());
        for (job, ticket) in jobs.iter().zip(&tickets) {
            assert_eq!(ticket.wait().unwrap(), &(&job.a * &job.b) % &job.modulus);
        }
        cluster.shutdown();
    }

    #[test]
    fn stopped_cluster_refuses_submissions() {
        let cluster = ServiceCluster::for_engine_name("barrett", 2, small_config()).unwrap();
        cluster.shutdown();
        let job = MulJob::new(UBig::from(1u64), UBig::from(2u64), UBig::from(97u64));
        assert_eq!(
            cluster.submit(job.clone()).err(),
            Some(ClusterSubmitError::Stopped)
        );
        assert_eq!(
            cluster.try_submit(job.clone()).err(),
            Some(ClusterSubmitError::Stopped)
        );
        assert_eq!(
            cluster.handle().submit_many(vec![job]).err(),
            Some(ClusterSubmitError::Stopped)
        );
        // Shutdown is idempotent.
        let stats = cluster.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn cluster_submit_error_maps_into_core_error() {
        assert_eq!(
            CoreError::from(ClusterSubmitError::Stopped),
            CoreError::ClusterStopped
        );
        assert_eq!(
            CoreError::from(ClusterSubmitError::AllTilesSaturated { tried: 2 }),
            CoreError::AllTilesSaturated { tried: 2 }
        );
        assert!(CoreError::AllTilesSaturated { tried: 2 }
            .to_string()
            .contains("2 tile(s)"));
    }

    #[test]
    fn cluster_prepared_streams_through_the_router() {
        let cluster = ServiceCluster::for_engine_name("montgomery", 2, small_config()).unwrap();
        let ctx = cluster.prepared(&UBig::from(1_000_003u64));
        assert_eq!(ctx.engine_name(), "cluster");
        assert_eq!(ctx.modulus(), &UBig::from(1_000_003u64));
        assert_eq!(
            ctx.mod_mul(&UBig::from(2024u64), &UBig::from(4096u64))
                .unwrap(),
            UBig::from(2024u64 * 4096 % 1_000_003)
        );
        let pairs = vec![(UBig::from(3u64), UBig::from(5u64)); 6];
        assert_eq!(
            ctx.mod_mul_batch(&pairs).unwrap(),
            vec![UBig::from(15u64); 6]
        );
        let stats = cluster.shutdown();
        assert_eq!(stats.completed, 7);
    }
}
