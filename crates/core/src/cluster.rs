//! Multi-tile scale-out: a [`ServiceCluster`] routes a shared job
//! stream across N independent [`ModSramService`] tiles — the
//! multi-macro deployment shape (one ModSRAM macro per tile) that
//! LaMoS argues SRAM-CiM modular multiplication scales out to, grown
//! from this repo's single-tile streaming front-end.
//!
//! # Routing: modulus affinity first
//!
//! Every job is routed by **rendezvous hashing** on its modulus: each
//! `(modulus, tile)` pair gets a deterministic score and the job's
//! *home* is the highest-scoring routable tile. Two properties follow:
//!
//! * **Coalescing survives sharding.** All traffic for one modulus
//!   lands on one tile, so that tile's batcher still sees long
//!   modulus-major, multiplicand-major runs and the paper's Table 1b
//!   LUT reuse keeps amortising. Hashing jobs round-robin instead
//!   would shred exactly the locality the architecture is built on.
//! * **Stable under membership change.** When a tile leaves the
//!   routable set (drained, poisoned, or stopped), only the moduli
//!   homed on *that* tile move (to their next-ranked tile); every
//!   other modulus keeps the same score ordering and stays put — no
//!   global reshuffle, no cold LUT refills on healthy tiles. The same
//!   holds in reverse when a tile joins: only the moduli the new tile
//!   out-scores everywhere move onto it.
//!
//! # Elasticity: membership change at runtime
//!
//! Tile membership is an **epoch-versioned snapshot**
//! (`Arc<Membership>` behind an `RwLock`): every submission routes
//! against one consistent view, and [`ServiceCluster::add_tile`] /
//! [`ServiceCluster::drain_tile`] swap in a new snapshot atomically.
//! The lifecycle of a tile:
//!
//! ```text
//!   add_tile ─────────► Active ──drain_tile──► Draining ──(queue empty)──► Drained
//!                         ▲                                                  │
//!                         └── probe_tiles × probation_after (re-admission) ──┘
//! ```
//!
//! * **Draining** ([`ServiceCluster::drain_tile`]) pauses the tile's
//!   admissions (the [`ModSramService::pause_admissions`] seam), lets
//!   the existing ticket machinery deliver every already-accepted job,
//!   and re-homes *only* the moduli whose rendezvous rank-0 was the
//!   drained tile — the minimal-disruption property consistent-hashing
//!   caches rely on, proven by the `elasticity` proptest. The tile is
//!   never shut down, so it can return.
//! * **Probation** ([`ServiceCluster::probe_tiles`]) is how a drained
//!   or poisoned tile re-earns traffic: each probe passes when the
//!   tile is live and its caught-panic count has not grown since the
//!   previous probe; after [`ClusterConfig::probation_after`]
//!   consecutive passes the tile re-enters the routable set (drained
//!   tiles resume admissions; poisoned tiles get their panic count
//!   pardoned). Re-homing runs again, moving only the returning
//!   tile's moduli back.
//! * **Growing** ([`ServiceCluster::add_tile`]) appends a tile at a
//!   fresh index. Tile indices are stable for the life of the cluster
//!   (they are the rendezvous hash inputs), so draining never renumbers
//!   survivors — a drained tile's slot stays occupied until probation
//!   re-admits it.
//!
//! Re-homing invalidates LUT warmth: a moved modulus pays one context
//! preparation (Table 1b fill) on its new home, which is exactly why
//! only the moved tile's share of moduli — `1/active_tiles` of the
//! tracked set in expectation — may move per membership change.
//! [`ClusterStats::moduli_rehomed`] counts those moves.
//!
//! # Weighted routing: heterogeneous macros
//!
//! Tiles need not be equal: a tile backed by a bigger macro (or more
//! workers) can carry a proportionally larger modulus share via its
//! **capacity weight**. Weights live *inside* the epoch-versioned
//! membership snapshot, so [`ServiceCluster::set_tile_weight`] /
//! [`ServiceCluster::add_tile_weighted`] are one atomic publish plus
//! the same minimal re-home pass a drain runs — in-flight submissions
//! keep routing against the consistent snapshot they took. The score
//! uses the logarithmic method (`weight / -ln(u)` with `u` derived
//! from the rendezvous mix), which has two properties the tests pin:
//!
//! * **Equal weights ≡ legacy.** A cluster with every weight at 1
//!   places every modulus exactly where the unweighted router did —
//!   republishing weight 1 re-homes zero moduli.
//! * **Monotonicity.** Raising one tile's weight only ever pulls
//!   moduli *onto* that tile; no modulus homed elsewhere moves
//!   between two unchanged tiles. Each pulled modulus pays the usual
//!   one context preparation on its new home.
//!
//! The standalone planners have weighted variants
//! ([`weighted_home_tile_for`], [`weighted_rendezvous_ranking`]).
//!
//! # Hot-modulus replication
//!
//! Affinity routing's failure mode is a single modulus hot enough to
//! saturate its home tile while neighbours idle — under
//! [`SpillPolicy::Strict`] nothing relieves it. The cluster watches
//! for exactly that signature: every submission that finds **all** of
//! its allowed tiles full records one *saturation event* against its
//! modulus, and each [`ServiceCluster::probe_tiles`] pass closes a
//! window over those events. A modulus whose window delta reaches
//! [`ClusterConfig::replicate_after`] is **promoted** to a replica
//! set: its top-[`ClusterConfig::replica_tiles`] weighted rendezvous
//! tiles. From then on the router sends its jobs to the replica with
//! the most queue headroom (bypassing the spill policy — every
//! replica holds the modulus's prepared context, so coalescing and
//! LUT reuse survive), which is what turns one saturated macro into k
//! macros sharing the flood. The cost is one context preparation — a
//! Table 1b LUT refill on the ModSRAM backend — per replica tile,
//! paid lazily on each replica's first job, which is why promotion
//! demands *sustained* saturation rather than one refused burst.
//! Once the modulus stays calm for
//! [`ClusterConfig::probation_after`] consecutive probes it is
//! **demoted** back to plain single-home routing (the same probation
//! cadence sick tiles use). Replica sets are rebuilt on every
//! membership change and surfaced through
//! [`ClusterStats::replicated_moduli`] /
//! [`ClusterStats::replica_routed`] and
//! [`ProbeReport::promoted`] / [`ProbeReport::demoted`].
//!
//! # Backpressure: spill policies and their trade-off
//!
//! Each tile's queue is bounded, so the router must decide what to do
//! when a job's home tile refuses it with `QueueFull`. That choice is
//! the [`SpillPolicy`], and it is a genuine trade-off, not a free
//! knob:
//!
//! * [`SpillPolicy::Strict`] — never leave the home tile. Preserves
//!   perfect per-modulus affinity (every LUT refill for a modulus is
//!   paid on exactly one tile) and keeps per-tenant interference
//!   zero, at the cost of head-of-line blocking: a hot tenant
//!   saturates its home tile while neighbours idle. Non-blocking
//!   submission surfaces the saturation as
//!   [`CoreError::AllTilesSaturated`] so an upstream load-shedder can
//!   act; blocking submission waits for the home queue.
//! * [`SpillPolicy::Spill`] — after the home refuses, try up to
//!   `max_hops` other tiles, least-loaded (most queue headroom)
//!   first. Tail latency under skew improves — work flows to idle
//!   macros — but each spilled modulus is *prepared again* on the
//!   spill tile (a context-pool miss: Montgomery constants, Barrett
//!   µ, or a full Table 1b LUT fill) and the spill tile's batcher
//!   coalesces a foreign modulus it will likely never see again, so
//!   its resident tenants lose some multiplicand-run length. Spilling
//!   buys throughput under overload by diluting the very locality
//!   affinity routing exists to protect — which is why `max_hops`
//!   bounds the dilution.
//!
//! Blocking [`ClusterHandle::submit`] falls back to waiting on the
//! home tile once every allowed tile has refused without blocking; if
//! the home stops or drains mid-wait, the submission **re-routes**
//! against a fresh membership view instead of failing — the cluster
//! only reports [`ClusterSubmitError::Stopped`] when no routable tile
//! remains. Non-blocking [`ClusterHandle::try_submit`] refuses
//! instead.
//!
//! # Fault containment
//!
//! Tiles fail independently. A panicking context (see
//! [`crate::test_util::FailingPrepared`]) unwinds one executor, whose
//! guard fails that batch's tickets — waiters get
//! [`ServiceError::Stopped`](crate::service::ServiceError::Stopped)
//! instead of hanging, and other tiles never notice. The router
//! consults each tile's [`TileHealth`] and, once a tile's caught-panic
//! count (minus any probation pardon) reaches
//! [`ClusterConfig::poison_after`], treats it as poisoned and routes
//! around it (its moduli fail over to their next-ranked tile).
//! [`ServiceCluster::shutdown`] fans out to every tile and drains each
//! accepted ticket exactly once.
//!
//! # Examples
//!
//! ```
//! use modsram_bigint::UBig;
//! use modsram_core::cluster::{ClusterConfig, ServiceCluster};
//! use modsram_core::dispatch::MulJob;
//!
//! let cluster =
//!     ServiceCluster::for_engine_name("montgomery", 2, ClusterConfig::default()).unwrap();
//! let ticket = cluster
//!     .submit(MulJob::new(UBig::from(55u64), UBig::from(44u64), UBig::from(97u64)))
//!     .unwrap();
//! assert_eq!(ticket.wait().unwrap(), UBig::from(55u64 * 44 % 97));
//! let stats = cluster.shutdown();
//! assert_eq!(stats.completed, 1);
//! assert_eq!(stats.affinity_hits, 1);
//! ```
//!
//! Live membership change — drain a tile, let probation re-admit it:
//!
//! ```
//! use modsram_core::cluster::{ClusterConfig, ServiceCluster, TileState};
//!
//! let config = ClusterConfig { probation_after: 2, ..Default::default() };
//! let cluster = ServiceCluster::for_engine_name("barrett", 3, config).unwrap();
//! let report = cluster.drain_tile(1).unwrap();
//! assert_eq!(cluster.tile_state(1), Some(TileState::Drained));
//! assert_eq!(report.active_tiles, 2);
//! // Two clean probes later the tile is routable again.
//! cluster.probe_tiles();
//! let probe = cluster.probe_tiles();
//! assert_eq!(probe.readmitted, vec![1]);
//! assert_eq!(cluster.tile_state(1), Some(TileState::Active));
//! cluster.shutdown();
//! ```

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

use modsram_bigint::UBig;
use modsram_modmul::{ModMulError, PreparedModMul};

use crate::autotune::{AutoTuner, AutotuneStats, TunePolicy};
use crate::dispatch::{ContextPool, MulJob};
use crate::error::CoreError;
use crate::modsram::ModSramConfig;
use crate::service::{
    backend_error, ticket_result, ModSramService, ServiceConfig, ServiceStats, SubmitError, Ticket,
    TileHealth,
};

/// What the router does when a job's home tile refuses it with
/// `QueueFull` (see the module docs for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Stay on the home tile: block there ([`ClusterHandle::submit`])
    /// or refuse with [`CoreError::AllTilesSaturated`]
    /// ([`ClusterHandle::try_submit`]).
    Strict,
    /// Try up to `max_hops` other live tiles, most queue headroom
    /// first, before blocking on (or refusing for) the home tile.
    Spill {
        /// Maximum non-home tiles to try per submission.
        max_hops: usize,
    },
}

impl Default for SpillPolicy {
    /// One spill hop: relieves hot-tenant skew while keeping LUT
    /// dilution bounded to a single foreign tile per overloaded burst.
    fn default() -> Self {
        SpillPolicy::Spill { max_hops: 1 }
    }
}

/// Tuning knobs of a [`ServiceCluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Backpressure policy (see [`SpillPolicy`]).
    pub spill: SpillPolicy,
    /// Per-tile service configuration (every tile the cluster builds
    /// itself is configured identically; heterogeneous tiles can be
    /// built via [`ServiceCluster::from_services`] or added live via
    /// [`ServiceCluster::add_tile`]).
    pub service: ServiceConfig,
    /// Caught executor panics after which a tile is considered
    /// poisoned and routed around (`0` disables poison detection).
    pub poison_after: u64,
    /// Consecutive passing [`ServiceCluster::probe_tiles`] checks after
    /// which a drained tile is re-admitted to the routable set (and a
    /// poisoned tile's panic count is pardoned). `0` disables
    /// probation: drained tiles sit out until shutdown. Hot-modulus
    /// replica sets also de-replicate after this many consecutive
    /// calm probes.
    pub probation_after: u64,
    /// Saturation events (submissions that found every allowed tile
    /// full) one modulus must accumulate between two
    /// [`ServiceCluster::probe_tiles`] passes before it is promoted to
    /// a replica set of its top-k weighted rendezvous tiles. `0`
    /// disables hot-modulus replication entirely.
    pub replicate_after: u64,
    /// Replica-set size for a promoted hot modulus (the `k` in top-k;
    /// values below 2 are treated as 2 — a 1-replica set is just the
    /// home tile again). Each replica tile pays one context
    /// preparation (a Table 1b LUT refill for the ModSRAM backend) for
    /// the replicated modulus.
    pub replica_tiles: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            spill: SpillPolicy::default(),
            service: ServiceConfig::default(),
            poison_after: 3,
            probation_after: 3,
            replicate_after: 64,
            replica_tiles: 2,
        }
    }
}

/// Why the cluster refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterSubmitError {
    /// Every tile the spill policy allowed is at queue capacity
    /// ([`ClusterHandle::try_submit`] only — blocking submission waits
    /// on the home tile instead).
    AllTilesSaturated {
        /// Tiles whose queues refused the job.
        tried: usize,
    },
    /// The cluster (or every routable tile) has shut down.
    Stopped,
}

impl core::fmt::Display for ClusterSubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterSubmitError::AllTilesSaturated { tried } => {
                write!(f, "all {tried} tile(s) the spill policy allows are full")
            }
            ClusterSubmitError::Stopped => write!(f, "cluster has shut down"),
        }
    }
}

impl std::error::Error for ClusterSubmitError {}

impl From<ClusterSubmitError> for CoreError {
    fn from(e: ClusterSubmitError) -> Self {
        match e {
            ClusterSubmitError::AllTilesSaturated { tried } => {
                CoreError::AllTilesSaturated { tried }
            }
            ClusterSubmitError::Stopped => CoreError::ClusterStopped,
        }
    }
}

/// A bulk submission that could not queue every job: the error plus
/// the tickets of the jobs that **were** accepted before the cluster
/// lost its last routable tile. Those jobs still execute and drain —
/// dropping their tickets would strand waiters on work that will run
/// anyway, so the router hands them back instead.
#[derive(Debug)]
pub struct BulkSubmitFailure {
    /// Why the remainder could not be queued.
    pub error: ClusterSubmitError,
    /// `(job index, ticket)` for every job that was accepted, in job
    /// order. Indices refer to the submitted `Vec<MulJob>`.
    pub accepted: Vec<(usize, Ticket)>,
}

impl core::fmt::Display for BulkSubmitFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "bulk submission failed ({}) after {} job(s) were accepted",
            self.error,
            self.accepted.len()
        )
    }
}

impl std::error::Error for BulkSubmitFailure {}

/// Where a tile sits in the membership lifecycle (see the module
/// docs' elasticity section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileState {
    /// In the routable set.
    Active,
    /// [`ServiceCluster::drain_tile`] is pausing admissions and
    /// waiting for the tile's accepted tickets to deliver.
    Draining,
    /// Fully drained and out of the routable set; eligible for
    /// probation re-admission via [`ServiceCluster::probe_tiles`].
    Drained,
}

/// The outcome of one membership change ([`ServiceCluster::add_tile`]
/// or [`ServiceCluster::drain_tile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipChange {
    /// The membership epoch after the change.
    pub epoch: u64,
    /// The tile that was added or drained.
    pub tile: usize,
    /// Tracked moduli whose natural home moved because of this change
    /// (a subset of the moduli the router has seen; see
    /// [`ClusterStats::tracked_moduli`]).
    pub rehomed_moduli: u64,
    /// Routable tiles after the change.
    pub active_tiles: usize,
}

/// The outcome of one [`ServiceCluster::probe_tiles`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeReport {
    /// Drained tiles that completed probation and re-entered the
    /// routable set on this pass.
    pub readmitted: Vec<usize>,
    /// Poisoned-but-active tiles whose panic count was pardoned on
    /// this pass (they become routable again without a membership
    /// change).
    pub unpoisoned: Vec<usize>,
    /// Hot moduli promoted to a replica set on this pass (their
    /// saturation-event delta since the previous pass reached
    /// [`ClusterConfig::replicate_after`]).
    pub promoted: Vec<UBig>,
    /// Replicated moduli demoted back to single-home routing on this
    /// pass (calm for [`ClusterConfig::probation_after`] consecutive
    /// passes).
    pub demoted: Vec<UBig>,
}

/// One tile plus its routing tallies and probation bookkeeping.
///
/// The service is behind an `Arc` so out-of-band consumers (the wire
/// front-end, health scrapers) can hold a tile's submission seam via
/// [`ServiceCluster::tile_service`] while the cluster keeps routing to
/// it — both sides observe the same admissions gate.
struct TileCell {
    service: Arc<ModSramService>,
    /// Jobs accepted with this tile as their natural home.
    routed: AtomicU64,
    /// Jobs accepted here after spilling (or failing over) from
    /// another tile's home.
    spilled_in: AtomicU64,
    /// Panics forgiven by a completed probation: the poison check
    /// compares `executor_panics - pardoned_panics` against
    /// `poison_after`, so a recovered tile starts from a clean slate
    /// without the lifetime counter ever going backwards.
    pardoned_panics: AtomicU64,
    /// Consecutive passing probation probes.
    probe_ok: AtomicU64,
    /// Panic count observed by the previous probe (a probe passes only
    /// when this has not grown).
    probe_last_panics: AtomicU64,
}

impl TileCell {
    fn new(service: Arc<ModSramService>) -> Self {
        TileCell {
            service,
            routed: AtomicU64::new(0),
            spilled_in: AtomicU64::new(0),
            pardoned_panics: AtomicU64::new(0),
            probe_ok: AtomicU64::new(0),
            probe_last_panics: AtomicU64::new(0),
        }
    }
}

/// 64-bit finaliser (splitmix64) — mixes the modulus key with a tile
/// index into a rendezvous score.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The prepared-modulus routing key: equal moduli map to equal keys,
/// so all traffic for one prepared context shares one home tile.
fn modulus_key(p: &UBig) -> u64 {
    let mut h = DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

/// The weighted rendezvous score of `(modulus key, tile, weight)` —
/// **the single definition** of both the score and its tie-break,
/// shared by [`home_tile_for`] / [`weighted_home_tile_for`], the
/// router's hot-path argmax, and the full ranking, so they can never
/// drift. Higher is better.
///
/// The score uses the logarithmic method for weighted rendezvous
/// hashing: the mix is mapped to `u ∈ (0, 1)` and the score is
/// `weight / -ln(u)`, which makes each tile's win probability exactly
/// proportional to its weight. Because `u` is monotone in the mix,
/// **equal weights reproduce the unweighted mix ordering exactly** —
/// a weight-1 cluster places every modulus where the legacy
/// unweighted router did. Ties (the f64 mapping collapses nearby
/// mixes) fall back to the raw mix, then to the lower tile index
/// (`Reverse`), so the ordering stays total and deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RendezvousScore {
    score: f64,
    mix: u64,
    tie: std::cmp::Reverse<usize>,
}

impl Eq for RendezvousScore {}

impl Ord for RendezvousScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then(self.mix.cmp(&other.mix))
            .then(self.tie.cmp(&other.tie))
    }
}

impl PartialOrd for RendezvousScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn rendezvous_score(key: u64, tile: usize, weight: u32) -> RendezvousScore {
    let mix = mix64(key ^ (tile as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Top 52 mix bits → odd 53-bit numerator / 2^53: exactly
    // representable, strictly inside (0, 1) at both ends (so `ln` is
    // finite and negative), and monotone in the mix — the property the
    // equal-weights-≡-legacy guarantee rests on.
    let u = (((mix >> 12) << 1) | 1) as f64 / (1u64 << 53) as f64;
    RendezvousScore {
        score: weight as f64 / -u.ln(),
        mix,
        tie: std::cmp::Reverse(tile),
    }
}

/// The natural home tile for modulus `p` in a cluster of `tiles`
/// equal-weight tiles — the same deterministic rendezvous placement a
/// live [`ServiceCluster`] of that size computes (with every tile
/// active at weight 1), exposed standalone so workload planners
/// (capacity sizing, sweep generators) can predict placement without
/// standing a cluster up. `None` when `tiles == 0`, consistent with
/// [`rendezvous_ranking`] returning the empty ranking (and with the
/// membership's own `natural_home` when no tile is routable).
pub fn home_tile_for(p: &UBig, tiles: usize) -> Option<usize> {
    let key = modulus_key(p);
    (0..tiles).max_by_key(|&i| rendezvous_score(key, i, 1))
}

/// Tile indices `0..tiles` in rendezvous order (best score first,
/// equal weights) for modulus `p` — the full failover ranking behind
/// [`home_tile_for`] (which is its first element). Drain planners use
/// the second-ranked tile to predict where a modulus lands when its
/// home leaves.
pub fn rendezvous_ranking(p: &UBig, tiles: usize) -> Vec<usize> {
    let key = modulus_key(p);
    let mut order: Vec<usize> = (0..tiles).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rendezvous_score(key, i, 1)));
    order
}

/// The weighted natural home for modulus `p` over a fleet described
/// by one capacity weight per tile: tile `i`'s probability of homing
/// a random modulus is `weights[i] / Σ weights`. With all weights
/// equal this is exactly [`home_tile_for`] — the placement the legacy
/// unweighted router computes. A zero-weight tile scores 0 and never
/// wins while any positive-weight tile exists (the live cluster
/// refuses weight 0 outright; see
/// [`ServiceCluster::set_tile_weight`]). `None` when `weights` is
/// empty.
pub fn weighted_home_tile_for(p: &UBig, weights: &[u32]) -> Option<usize> {
    let key = modulus_key(p);
    (0..weights.len()).max_by_key(|&i| rendezvous_score(key, i, weights[i]))
}

/// Tile indices `0..weights.len()` in weighted rendezvous order (best
/// score first) for modulus `p` — the weighted analogue of
/// [`rendezvous_ranking`], and the ranking hot-modulus replication
/// takes its top-k replica tiles from.
pub fn weighted_rendezvous_ranking(p: &UBig, weights: &[u32]) -> Vec<usize> {
    let key = modulus_key(p);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rendezvous_score(key, i, weights[i])));
    order
}

/// One epoch-versioned membership snapshot: which tiles exist and
/// which are routable. Submissions clone the `Arc` once and route
/// against a consistent view; membership changes publish a new
/// snapshot instead of mutating this one.
struct Membership {
    epoch: u64,
    tiles: Vec<Arc<TileCell>>,
    states: Vec<TileState>,
    /// Per-tile capacity weight (never 0 — [`ServiceCluster`] refuses
    /// zero weights). Lives *inside* the snapshot so a weight change
    /// is one atomic epoch publish and in-flight submissions keep
    /// routing against a consistent weighted view.
    weights: Vec<u32>,
}

impl Membership {
    fn routable(&self, tile: usize) -> bool {
        self.states[tile] == TileState::Active
    }

    fn active_count(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == TileState::Active)
            .count()
    }

    fn score(&self, key: u64, tile: usize) -> RendezvousScore {
        rendezvous_score(key, tile, self.weights[tile])
    }

    /// Rank-0 routable tile for a modulus key; `None` when no tile is
    /// routable (all drained/draining).
    fn natural_home(&self, key: u64) -> Option<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.routable(i))
            .max_by_key(|&i| self.score(key, i))
    }

    /// Routable tile indices in weighted rendezvous order (best score
    /// first) — deterministic for a given key and membership.
    fn ranked(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.tiles.len())
            .filter(|&i| self.routable(i))
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.score(key, i)));
        order
    }
}

/// Bound on the tracked-modulus map: beyond this many distinct moduli
/// the router stops recording new ones (re-home statistics become a
/// sample; routing itself is unaffected).
const TRACKED_MODULI_CAP: usize = 1 << 16;

/// Bound on the saturation-event map hot-modulus replication watches:
/// beyond this many distinct saturating moduli, new ones are no
/// longer candidates for promotion (existing replica sets are
/// unaffected).
const SATURATION_TRACK_CAP: usize = 1 << 12;

/// One promoted hot modulus: the replica tiles serving it and the
/// calm-probe counter that eventually demotes it.
struct ReplicaEntry {
    /// The replicated modulus (for reporting demotions).
    p: UBig,
    /// Top-k weighted rendezvous tiles at promotion time, rebuilt on
    /// every membership change (rank 0 is the natural home).
    tiles: Vec<usize>,
    /// Consecutive probe passes without a new saturation event;
    /// reaching `probation_after` demotes the modulus.
    calm: u64,
}

/// Per-modulus saturation bookkeeping feeding promotion decisions.
struct SatWindow {
    /// The saturating modulus itself, kept so promotion can report it
    /// and future warm-up hooks can prepare replica contexts eagerly.
    p: UBig,
    /// Lifetime saturation events for this modulus.
    events: u64,
    /// `events` as of the previous [`ServiceCluster::probe_tiles`]
    /// pass — the delta over one probe window drives promotion.
    seen: u64,
}

/// State shared by the cluster front, its handles, and its prepared
/// façades.
struct ClusterShared {
    membership: RwLock<Arc<Membership>>,
    spill: SpillPolicy,
    poison_after: u64,
    probation_after: u64,
    replicate_after: u64,
    replica_tiles: usize,
    stopped: AtomicBool,
    affinity_hits: AtomicU64,
    spilled: AtomicU64,
    saturated_rejections: AtomicU64,
    replica_routed: AtomicU64,
    tiles_added: AtomicU64,
    tiles_drained: AtomicU64,
    tiles_readmitted: AtomicU64,
    moduli_rehomed: AtomicU64,
    /// Moduli the router has routed, keyed by [`modulus_key`], each
    /// with its last-known natural home — the sample set membership
    /// changes walk to count (and republish) re-homings.
    homes: RwLock<HashMap<u64, usize>>,
    /// Set once `homes` reaches [`TRACKED_MODULI_CAP`], so the
    /// submission hot path stops touching the map's lock entirely.
    homes_full: AtomicBool,
    /// Per-modulus saturation events, keyed by [`modulus_key`] —
    /// written by refused/blocked submissions, read by the promotion
    /// pass in [`ServiceCluster::probe_tiles`].
    saturation: RwLock<HashMap<u64, SatWindow>>,
    /// Currently replicated hot moduli, keyed by [`modulus_key`].
    replicas: RwLock<HashMap<u64, ReplicaEntry>>,
    /// Mirror of `replicas.len()`: lets the submission hot path skip
    /// the replica map's lock entirely while nothing is replicated —
    /// the common case.
    replicas_active: AtomicU64,
}

impl ClusterShared {
    /// The current membership snapshot (one `Arc` clone).
    fn snapshot(&self) -> Arc<Membership> {
        Arc::clone(
            &self
                .membership
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Whether a tile may be targeted at all: routable in this
    /// membership, not stopped, not paused, and not poisoned.
    fn usable(&self, m: &Membership, tile: usize) -> bool {
        m.routable(tile) && self.usable_health(&m.tiles[tile], &m.tiles[tile].service.health())
    }

    /// [`ClusterShared::usable`]'s health half over an already-taken
    /// snapshot, so callers that also need capacity probe each tile
    /// only once.
    fn usable_health(&self, cell: &TileCell, health: &TileHealth) -> bool {
        !health.stopped && !health.paused && !self.poisoned(cell, health)
    }

    /// Poison check with the probation pardon applied.
    fn poisoned(&self, cell: &TileCell, health: &TileHealth) -> bool {
        self.poison_after != 0
            && health
                .executor_panics
                // analyzer: allow(relaxed_atomic, monotonic pardon counter; a stale read only delays or hastens one poison verdict by a single probe)
                .saturating_sub(cell.pardoned_panics.load(Ordering::Relaxed))
                >= self.poison_after
    }

    /// Records a first-seen modulus in the tracked-home map (bounded
    /// by [`TRACKED_MODULI_CAP`]): once the cap is hit a `Relaxed`
    /// flag short-circuits the whole thing, and before that the fast
    /// path is one uncontended read lock + probe — cheap next to the
    /// tile-queue mutex every submission takes anyway, and the price
    /// of per-membership-change re-home accounting.
    fn track_home(&self, key: u64, natural: usize) {
        // analyzer: allow(relaxed_atomic, one-way latch written under the homes write lock; a stale false costs one extra locked probe and can never lose a home)
        if self.homes_full.load(Ordering::Relaxed) {
            return;
        }
        {
            let homes = self.homes.read().unwrap_or_else(PoisonError::into_inner);
            if homes.contains_key(&key) {
                return;
            }
        }
        let mut homes = self.homes.write().unwrap_or_else(PoisonError::into_inner);
        if homes.len() < TRACKED_MODULI_CAP {
            homes.entry(key).or_insert(natural);
        } else {
            // analyzer: allow(relaxed_atomic, latch set while holding the homes write lock that guards the state it summarises)
            self.homes_full.store(true, Ordering::Relaxed);
        }
    }

    /// Re-computes every tracked modulus's natural home against a new
    /// membership, counting (and recording) the ones that moved, and
    /// rebuilds every live replica set against the new weighted
    /// ranking. Called with the membership write lock held, so
    /// concurrent membership changes serialise their re-home
    /// accounting.
    fn rehome_tracked(&self, m: &Membership) -> u64 {
        let mut homes = self.homes.write().unwrap_or_else(PoisonError::into_inner);
        let mut moved = 0u64;
        for (key, home) in homes.iter_mut() {
            if let Some(natural) = m.natural_home(*key) {
                if natural != *home {
                    *home = natural;
                    moved += 1;
                }
            }
        }
        drop(homes);
        self.moduli_rehomed.fetch_add(moved, Ordering::Relaxed);
        // Acquire pairs with replication_pass's Release store: a
        // non-zero count means the replica map it summarises is
        // visible, so the rebuild below touches every live entry.
        if self.replicas_active.load(Ordering::Acquire) > 0 {
            let mut replicas = self
                .replicas
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            for (key, entry) in replicas.iter_mut() {
                entry.tiles = m
                    .ranked(*key)
                    .into_iter()
                    .take(self.replica_tiles.max(2))
                    .collect();
            }
        }
        moved
    }

    /// Records one saturation event for a modulus: every submission
    /// that found all its allowed tiles full bumps this, and the
    /// promotion pass in [`ServiceCluster::probe_tiles`] compares the
    /// delta over a probe window against
    /// [`ClusterConfig::replicate_after`].
    fn note_saturation(&self, key: u64, p: &UBig) {
        if self.replicate_after == 0 {
            return;
        }
        let mut sat = self
            .saturation
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(window) = sat.get_mut(&key) {
            window.events += 1;
        } else if sat.len() < SATURATION_TRACK_CAP {
            sat.insert(
                key,
                SatWindow {
                    p: p.clone(),
                    events: 1,
                    seen: 0,
                },
            );
        }
    }

    /// The usable replica tiles for a replicated modulus, most queue
    /// headroom first — `None` when the modulus is not replicated (the
    /// hot path's one `Relaxed` load answers that without a lock) or
    /// when every replica is unusable (normal routing takes over).
    fn replica_candidates(&self, m: &Membership, key: u64) -> Option<Vec<usize>> {
        // Acquire pairs with replication_pass's Release store so the
        // hot path that sees a non-zero count also sees the promoted
        // entries behind it (this load gates reading the replica map).
        if self.replicas_active.load(Ordering::Acquire) == 0 {
            return None;
        }
        let replicas = self.replicas.read().unwrap_or_else(PoisonError::into_inner);
        let entry = replicas.get(&key)?;
        let mut live: Vec<(usize, usize)> = entry
            .tiles
            .iter()
            .copied()
            .filter(|&t| t < m.tiles.len() && m.routable(t))
            .filter_map(|t| {
                let health = m.tiles[t].service.health();
                self.usable_health(&m.tiles[t], &health)
                    .then(|| (health.headroom(), t))
            })
            .collect();
        if live.is_empty() {
            return None;
        }
        live.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        Some(live.into_iter().map(|(_, t)| t).collect())
    }

    /// One promotion/demotion pass over the saturation windows, run by
    /// [`ServiceCluster::probe_tiles`]: a modulus whose saturation
    /// delta since the previous pass reaches `replicate_after` is
    /// promoted to its top-k weighted rendezvous tiles; a replicated
    /// modulus that stayed calm for `probation_after` consecutive
    /// passes is demoted back to single-home routing.
    fn replication_pass(&self, m: &Membership, report: &mut ProbeReport) {
        let mut sat = self
            .saturation
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let mut replicas = self
            .replicas
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let demote_after = self.probation_after.max(1);
        let mut demote = Vec::new();
        for (key, window) in sat.iter_mut() {
            let delta = window.events - window.seen;
            window.seen = window.events;
            if let Some(entry) = replicas.get_mut(key) {
                if delta == 0 {
                    entry.calm += 1;
                    if entry.calm >= demote_after {
                        demote.push(*key);
                    }
                } else {
                    entry.calm = 0;
                }
            } else if delta >= self.replicate_after {
                let tiles: Vec<usize> = m
                    .ranked(*key)
                    .into_iter()
                    .take(self.replica_tiles.max(2))
                    .collect();
                // A replica set needs at least two live tiles to be
                // more than the home it already has.
                if tiles.len() >= 2 {
                    report.promoted.push(window.p.clone());
                    replicas.insert(
                        *key,
                        ReplicaEntry {
                            p: window.p.clone(),
                            tiles,
                            calm: 0,
                        },
                    );
                }
            }
        }
        for key in demote {
            if let Some(entry) = replicas.remove(&key) {
                report.demoted.push(entry.p);
            }
        }
        // Release publishes the promotions/demotions above to the
        // Acquire loads that gate the lock-free fast path.
        self.replicas_active
            .store(replicas.len() as u64, Ordering::Release);
    }

    /// The home tile for a modulus key under membership `m`: the
    /// natural (rank-0 routable) tile when it is usable — the common
    /// case, probed with one health check — otherwise the first usable
    /// tile in routable rendezvous order. `None` when every routable
    /// tile is stopped or poisoned (or none is routable).
    fn route(&self, m: &Membership, key: u64) -> Option<(usize, usize)> {
        let natural = m.natural_home(key)?;
        self.track_home(key, natural);
        if self.usable(m, natural) {
            return Some((natural, natural));
        }
        m.ranked(key)
            .into_iter()
            .find(|&i| self.usable(m, i))
            .map(|home| (home, natural))
    }

    /// Records an accepted job: per-tile tallies plus the cluster's
    /// affinity accounting (`natural` is the rank-0 routable tile the
    /// modulus hashes to, `landed` where the job was actually
    /// accepted). A landing on any member of the modulus's replica set
    /// counts as an affinity hit — the replica holds a prepared
    /// context for that modulus by design, so its coalescing and LUT
    /// reuse are intact — and as `replica_routed` when it was not the
    /// natural home.
    fn record(&self, m: &Membership, landed: usize, natural: usize, replicas: Option<&[usize]>) {
        let on_replica = replicas.is_some_and(|r| r.contains(&landed));
        if landed == natural || on_replica {
            m.tiles[landed].routed.fetch_add(1, Ordering::Relaxed);
            self.affinity_hits.fetch_add(1, Ordering::Relaxed);
            if on_replica && landed != natural {
                self.replica_routed.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            m.tiles[landed].spilled_in.fetch_add(1, Ordering::Relaxed);
            self.spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spill candidates for a job homed on `home`: usable non-home
    /// tiles, most queue headroom first, truncated to the policy's hop
    /// budget. Empty under [`SpillPolicy::Strict`].
    fn spill_candidates(&self, m: &Membership, home: usize) -> Vec<usize> {
        let SpillPolicy::Spill { max_hops } = self.spill else {
            return Vec::new();
        };
        let mut others: Vec<(usize, usize)> = (0..m.tiles.len())
            .filter(|&i| i != home && m.routable(i))
            .filter_map(|i| {
                // One health probe per tile covers both liveness and
                // headroom — this runs on the overloaded path, where
                // extra lock traffic on tile queues hurts most.
                let health = m.tiles[i].service.health();
                self.usable_health(&m.tiles[i], &health)
                    .then(|| (health.headroom(), i))
            })
            .collect();
        others.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        others.into_iter().map(|(_, i)| i).take(max_hops).collect()
    }

    fn submit_inner(&self, job: MulJob, block: bool) -> Result<Ticket, ClusterSubmitError> {
        let key = modulus_key(&job.modulus);
        // The blocking path may find its home tile gone (stopped or
        // drained) by the time its queue wait resolves; re-route
        // against a fresh membership/health view instead of reporting
        // the whole cluster down. Bounded: each retry needs the home
        // to have changed state, capped defensively against flapping.
        let mut reroutes = 0usize;
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return Err(ClusterSubmitError::Stopped);
            }
            let m = self.snapshot();
            let Some((home, natural)) = self.route(&m, key) else {
                return Err(ClusterSubmitError::Stopped);
            };

            // A replicated hot modulus routes across its replica set,
            // most headroom first, instead of home-then-spill; the
            // spill policy is bypassed because every replica already
            // holds the modulus's prepared context.
            let replicas = self.replica_candidates(&m, key);
            let candidates = match &replicas {
                Some(r) => r.clone(),
                None => {
                    let mut c = vec![home];
                    c.extend(self.spill_candidates(&m, home));
                    c
                }
            };
            // The tile the blocking fall-through waits on: the best
            // replica for a replicated modulus, the home otherwise.
            let anchor = candidates[0];
            let tried = candidates.len();
            for tile in candidates {
                match m.tiles[tile].service.try_submit(job.clone()) {
                    Ok(ticket) => {
                        self.record(&m, tile, natural, replicas.as_deref());
                        return Ok(ticket);
                    }
                    // Full, draining, or racing its own shutdown: move
                    // to the next tile the policy allows.
                    Err(SubmitError::QueueFull)
                    | Err(SubmitError::Stopped)
                    | Err(SubmitError::Paused) => {}
                }
            }
            // Every allowed tile refused without blocking — a
            // saturation event for this modulus either way; enough of
            // them inside one probe window promotes it to a replica
            // set (see the module docs' replication section).
            self.note_saturation(key, &job.modulus);
            if !block {
                self.saturated_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(ClusterSubmitError::AllTilesSaturated { tried });
            }
            // Wait for the anchor queue so sustained overload still
            // lands with affinity (and still backpressures the
            // producer).
            match m.tiles[anchor].service.submit(job.clone()) {
                Ok(ticket) => {
                    self.record(&m, anchor, natural, replicas.as_deref());
                    return Ok(ticket);
                }
                Err(_) => {
                    // The home stopped or paused mid-wait. A fresh
                    // route() excludes it, so the job lands on the
                    // next-ranked live tile — the cluster is only down
                    // when no routable tile remains.
                    reroutes += 1;
                    if reroutes > m.tiles.len() + 1 {
                        return Err(ClusterSubmitError::Stopped);
                    }
                }
            }
        }
    }

    fn submit_many(&self, jobs: Vec<MulJob>) -> Result<Vec<Ticket>, BulkSubmitFailure> {
        let total = jobs.len();
        let mut slots: Vec<Option<Ticket>> = (0..total).map(|_| None).collect();
        let mut pending: Vec<(usize, MulJob)> = jobs.into_iter().enumerate().collect();
        let fail = |slots: Vec<Option<Ticket>>, error: ClusterSubmitError| BulkSubmitFailure {
            error,
            accepted: slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, t)| t.map(|t| (i, t)))
                .collect(),
        };
        let mut stalled_rounds = 0usize;
        while !pending.is_empty() {
            if self.stopped.load(Ordering::Acquire) {
                return Err(fail(slots, ClusterSubmitError::Stopped));
            }
            let m = self.snapshot();
            // Route every pending job to its home tile under this
            // snapshot (bulk submission trusts affinity — spilling
            // inside a batch would interleave two tiles' completions
            // for one caller), then forward each tile's share under a
            // single queue acquisition.
            let mut per_tile: Vec<Vec<(usize, usize, MulJob)>> =
                (0..m.tiles.len()).map(|_| Vec::new()).collect();
            for (idx, job) in pending.drain(..) {
                let Some((home, natural)) = self.route(&m, modulus_key(&job.modulus)) else {
                    return Err(fail(slots, ClusterSubmitError::Stopped));
                };
                per_tile[home].push((idx, natural, job));
            }
            let mut progressed = false;
            for (tile, share) in per_tile.into_iter().enumerate() {
                if share.is_empty() {
                    continue;
                }
                // The tile may stop mid-share; keep the originals so
                // the unqueued remainder can re-route next round
                // instead of being dropped with its waiters stranded.
                let tile_jobs: Vec<MulJob> = share.iter().map(|(_, _, job)| job.clone()).collect();
                let (tickets, err) = m.tiles[tile]
                    .service
                    .handle()
                    .submit_many_partial(tile_jobs);
                let accepted = tickets.len();
                for ((idx, natural, _), ticket) in share.iter().take(accepted).zip(tickets) {
                    self.record(&m, tile, *natural, None);
                    slots[*idx] = Some(ticket);
                    progressed = true;
                }
                if err.is_some() {
                    pending.extend(
                        share
                            .into_iter()
                            .skip(accepted)
                            .map(|(idx, _, job)| (idx, job)),
                    );
                }
            }
            if pending.is_empty() {
                break;
            }
            if progressed {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if stalled_rounds > m.tiles.len() + 1 {
                    return Err(fail(slots, ClusterSubmitError::Stopped));
                }
            }
        }
        Ok(slots
            .into_iter()
            // analyzer: allow(no_panic, loop above only breaks when pending is empty and every drained pending entry filled its slot, so None here is a routing-logic bug worth a loud stop)
            .map(|t| t.expect("every job was queued on exactly one tile"))
            .collect())
    }
}

/// A cloneable cluster submission endpoint — the multi-tile analogue
/// of [`crate::service::SubmitHandle`], cheap to hand to every
/// producer thread.
#[derive(Clone)]
pub struct ClusterHandle {
    shared: Arc<ClusterShared>,
}

impl core::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ClusterHandle {{ tiles: {} }}",
            self.shared.snapshot().tiles.len()
        )
    }
}

impl ClusterHandle {
    /// Submits one job, blocking on the home tile's queue once every
    /// tile the spill policy allows has refused without blocking. If
    /// the home tile stops or drains mid-wait the submission re-routes
    /// to the next live tile.
    ///
    /// # Errors
    ///
    /// [`ClusterSubmitError::Stopped`] once the cluster has shut down
    /// or no tile is routable.
    pub fn submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.shared.submit_inner(job, true)
    }

    /// Submits one job without blocking: home tile first, then (under
    /// [`SpillPolicy::Spill`]) the least-loaded other tiles.
    ///
    /// # Errors
    ///
    /// [`ClusterSubmitError::AllTilesSaturated`] when every allowed
    /// tile is full (counted in
    /// [`ClusterStats::saturated_rejections`]),
    /// [`ClusterSubmitError::Stopped`] after shutdown.
    pub fn try_submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.shared.submit_inner(job, false)
    }

    /// Submits a whole batch, each job routed to its home tile
    /// (bulk submission never spills), with per-tile bulk queue
    /// acquisition. Tickets are returned in job order. A tile that
    /// stops or drains mid-batch only re-routes its unqueued
    /// remainder — accepted tickets are never dropped.
    ///
    /// # Errors
    ///
    /// [`BulkSubmitFailure`] when no routable tile remains for the
    /// remainder; it carries the accepted prefix's tickets (those jobs
    /// still execute and drain).
    pub fn submit_many(&self, jobs: Vec<MulJob>) -> Result<Vec<Ticket>, BulkSubmitFailure> {
        self.shared.submit_many(jobs)
    }
}

/// Per-tile routing and service statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TileStats {
    /// Jobs accepted with this tile as their natural home (or as a
    /// replica of their modulus).
    pub routed: u64,
    /// Jobs accepted here after spilling from another tile's home.
    pub spilled_in: u64,
    /// The tile's capacity weight in the weighted rendezvous score.
    pub weight: u32,
    /// `true` when the router currently treats this tile as poisoned
    /// (caught panics minus probation pardons ≥ `poison_after`).
    pub poisoned: bool,
    /// The tile's membership lifecycle state.
    pub state: TileState,
    /// The tile's capacity/liveness probe at snapshot time.
    pub health: TileHealth,
    /// The tile's full service statistics (latency percentiles,
    /// coalesce shape, pool counters, modelled occupancy).
    pub service: ServiceStats,
}

/// Point-in-time statistics snapshot of the whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-tile breakdown, indexed by tile id (drained tiles keep
    /// their slot — tile ids are stable for the cluster's lifetime).
    pub tiles: Vec<TileStats>,
    /// The membership epoch (bumped by every add/drain/re-admission).
    pub membership_epoch: u64,
    /// Tiles currently in the routable set.
    pub active_tiles: usize,
    /// Tiles added live via [`ServiceCluster::add_tile`].
    pub tiles_added: u64,
    /// Tiles drained live via [`ServiceCluster::drain_tile`].
    pub tiles_drained: u64,
    /// Drained tiles re-admitted by probation.
    pub tiles_readmitted: u64,
    /// Tracked moduli whose natural home moved across all membership
    /// changes so far.
    pub moduli_rehomed: u64,
    /// Distinct moduli the router has tracked (bounded sample).
    pub tracked_moduli: u64,
    /// Jobs accepted cluster-wide.
    pub submitted: u64,
    /// Jobs that landed on their natural home tile.
    pub affinity_hits: u64,
    /// Jobs that landed off their natural home tile (backpressure
    /// spill or poison failover).
    pub spilled: u64,
    /// Non-blocking submissions refused with
    /// [`CoreError::AllTilesSaturated`].
    pub saturated_rejections: u64,
    /// Hot moduli currently served by a replica set.
    pub replicated_moduli: u64,
    /// Jobs that landed on a non-home member of their modulus's
    /// replica set (lifetime count — the traffic replication moved
    /// off saturated home tiles).
    pub replica_routed: u64,
    /// Jobs completed successfully, summed over tiles.
    pub completed: u64,
    /// Jobs completed with an error, summed over tiles.
    pub failed: u64,
    /// Aggregated self-tuning counters when tiles run autotuning pools
    /// ([`ServiceCluster::auto`]). Tiles sharing one tuner (the
    /// default for `auto`) are counted once, not once per tile.
    pub autotune: Option<AutotuneStats>,
}

impl ClusterStats {
    /// Fraction of accepted jobs that landed on their natural home
    /// tile (1.0 when nothing was accepted yet).
    pub fn affinity_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.affinity_hits as f64 / self.submitted as f64
        }
    }

    /// The busiest tile's modelled occupancy, in device cycles — the
    /// cluster's modelled makespan, since tiles are independent macros
    /// running concurrently.
    pub fn modelled_makespan_cycles(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.service.modelled_cycles_total)
            .max()
            .unwrap_or(0)
    }
}

/// The multi-tile router (see the module docs).
pub struct ServiceCluster {
    shared: Arc<ClusterShared>,
}

impl core::fmt::Debug for ServiceCluster {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.shared.snapshot();
        write!(
            f,
            "ServiceCluster {{ tiles: {}, active: {}, epoch: {}, policy: {:?} }}",
            m.tiles.len(),
            m.active_count(),
            m.epoch,
            self.shared.spill
        )
    }
}

impl ServiceCluster {
    /// Builds a cluster with one tile per pool, every tile running
    /// `config.service`.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty (a cluster needs at least one tile),
    /// or on the per-tile panics of [`ModSramService::new`].
    pub fn new(pools: Vec<ContextPool>, config: ClusterConfig) -> Self {
        let services = pools
            .into_iter()
            .map(|pool| ModSramService::new(pool, config.service.clone()))
            .collect();
        Self::from_services(services, &config)
    }

    /// Builds a cluster from already-running (possibly heterogeneous)
    /// tiles. `config.service` is ignored here — it only shapes tiles
    /// the cluster builds itself.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty.
    pub fn from_services(services: Vec<ModSramService>, config: &ClusterConfig) -> Self {
        assert!(!services.is_empty(), "a cluster needs at least one tile");
        let tiles: Vec<Arc<TileCell>> = services
            .into_iter()
            .map(|service| Arc::new(TileCell::new(Arc::new(service))))
            .collect();
        let states = vec![TileState::Active; tiles.len()];
        let weights = vec![1u32; tiles.len()];
        ServiceCluster {
            shared: Arc::new(ClusterShared {
                membership: RwLock::new(Arc::new(Membership {
                    epoch: 0,
                    tiles,
                    states,
                    weights,
                })),
                spill: config.spill,
                poison_after: config.poison_after,
                probation_after: config.probation_after,
                replicate_after: config.replicate_after,
                replica_tiles: config.replica_tiles,
                stopped: AtomicBool::new(false),
                affinity_hits: AtomicU64::new(0),
                spilled: AtomicU64::new(0),
                saturated_rejections: AtomicU64::new(0),
                replica_routed: AtomicU64::new(0),
                tiles_added: AtomicU64::new(0),
                tiles_drained: AtomicU64::new(0),
                tiles_readmitted: AtomicU64::new(0),
                moduli_rehomed: AtomicU64::new(0),
                homes: RwLock::new(HashMap::new()),
                homes_full: AtomicBool::new(false),
                saturation: RwLock::new(HashMap::new()),
                replicas: RwLock::new(HashMap::new()),
                replicas_active: AtomicU64::new(0),
            }),
        }
    }

    /// Cluster of `tiles` identical tiles over a registry engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownEngine`] for a name absent from the
    /// registry.
    pub fn for_engine_name(
        name: &str,
        tiles: usize,
        config: ClusterConfig,
    ) -> Result<Self, CoreError> {
        let pools: Result<Vec<ContextPool>, CoreError> = (0..tiles.max(1))
            .map(|_| {
                ContextPool::for_engine_name(name).ok_or_else(|| CoreError::unknown_engine(name))
            })
            .collect();
        Ok(Self::new(pools?, config))
    }

    /// Cluster of `tiles` identical tiles, each over its own pool of
    /// cycle-accurate ModSRAM devices.
    pub fn for_modsram(device: ModSramConfig, tiles: usize, config: ClusterConfig) -> Self {
        let pools = (0..tiles.max(1))
            .map(|_| ContextPool::for_modsram(device.clone()))
            .collect();
        Self::new(pools, config)
    }

    /// A self-tuning cluster: every tile runs an autotuning pool, and
    /// all tiles share **one** [`AutoTuner`] — a calibration race run
    /// on any tile warms the profile every tile consults, and a pool
    /// eviction on one tile never forgets a choice another tile still
    /// uses. Aggregated counters appear in [`ClusterStats::autotune`].
    pub fn auto(policy: TunePolicy, tiles: usize, config: ClusterConfig) -> Self {
        let tuner = Arc::new(AutoTuner::new(policy));
        let pools = (0..tiles.max(1))
            .map(|_| ContextPool::with_tuner(Arc::clone(&tuner)))
            .collect();
        Self::new(pools, config)
    }

    /// A cloneable submission endpoint for producer threads.
    pub fn handle(&self) -> ClusterHandle {
        ClusterHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits one job, blocking once every allowed tile has refused
    /// (see [`ClusterHandle::submit`]).
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::submit`].
    pub fn submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.handle().submit(job)
    }

    /// Submits one job without blocking (see
    /// [`ClusterHandle::try_submit`]).
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::try_submit`].
    pub fn try_submit(&self, job: MulJob) -> Result<Ticket, ClusterSubmitError> {
        self.handle().try_submit(job)
    }

    /// A [`PreparedModMul`] façade over the cluster for modulus `p`:
    /// the drop-in that lets engine-generic consumers (curves,
    /// committers, NTT shards) stream through the router unchanged.
    pub fn prepared(&self, p: &UBig) -> ClusterPrepared {
        ClusterPrepared {
            handle: self.handle(),
            p: p.clone(),
        }
    }

    /// Number of tile slots, including drained ones (tile ids are
    /// stable; see [`ServiceCluster::active_tiles`] for the routable
    /// count).
    pub fn tiles(&self) -> usize {
        self.shared.snapshot().tiles.len()
    }

    /// Tiles currently in the routable set.
    pub fn active_tiles(&self) -> usize {
        self.shared.snapshot().active_count()
    }

    /// The current membership epoch (bumped by every add, drain, and
    /// probation re-admission).
    pub fn membership_epoch(&self) -> u64 {
        self.shared.snapshot().epoch
    }

    /// A tile's membership lifecycle state, `None` for an out-of-range
    /// index.
    pub fn tile_state(&self, tile: usize) -> Option<TileState> {
        self.shared.snapshot().states.get(tile).copied()
    }

    /// A shared handle to one tile's underlying service, `None` for an
    /// out-of-range index.
    ///
    /// This is the seam a wire front-end uses to expose a single tile
    /// directly (tenant pinned to one tile) while the cluster keeps
    /// owning its lifecycle: both sides submit through the same
    /// admissions gate, so a live [`ServiceCluster::drain_tile`] is
    /// observed by the out-of-band holder as
    /// [`SubmitError`](crate::service::SubmitError)`::Paused`.
    pub fn tile_service(&self, tile: usize) -> Option<Arc<ModSramService>> {
        self.shared
            .snapshot()
            .tiles
            .get(tile)
            .map(|cell| Arc::clone(&cell.service))
    }

    /// The natural home tile (weighted rendezvous rank 0 among
    /// **routable** tiles, health ignored) for a modulus — where its
    /// traffic lands in steady state under the current membership.
    /// `None` when no tile is routable (every tile drained — possible
    /// on a fully-drained cluster), the state in which the router
    /// refuses submissions with [`ClusterSubmitError::Stopped`].
    pub fn home_tile(&self, p: &UBig) -> Option<usize> {
        self.shared.snapshot().natural_home(modulus_key(p))
    }

    /// A tile's capacity weight under the current membership, `None`
    /// for an out-of-range index.
    pub fn tile_weight(&self, tile: usize) -> Option<u32> {
        self.shared.snapshot().weights.get(tile).copied()
    }

    /// Adds a running tile to the cluster at a fresh index with
    /// weight 1 (see [`ServiceCluster::add_tile_weighted`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::ClusterStopped`] after shutdown.
    pub fn add_tile(&self, service: ModSramService) -> Result<MembershipChange, CoreError> {
        self.add_tile_weighted(service, 1)
    }

    /// Adds a running tile to the cluster at a fresh index with the
    /// given capacity weight and publishes a new membership epoch.
    /// Only the moduli the new tile out-scores everywhere re-home onto
    /// it; everything else stays put (each move costs its modulus one
    /// cold context preparation on the new tile).
    ///
    /// # Errors
    ///
    /// [`CoreError::ZeroTileWeight`] for `weight == 0`,
    /// [`CoreError::ClusterStopped`] after shutdown.
    pub fn add_tile_weighted(
        &self,
        service: ModSramService,
        weight: u32,
    ) -> Result<MembershipChange, CoreError> {
        let mut guard = self
            .shared
            .membership
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        // Checked under the write lock: shutdown() stores the flag
        // before snapshotting the tile list, so any add that passes
        // this check publishes its tile in time to be drained by that
        // very shutdown — a stopped cluster can never grow a live,
        // never-joined tile.
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(CoreError::ClusterStopped);
        }
        let tile = guard.tiles.len();
        if weight == 0 {
            return Err(CoreError::ZeroTileWeight { tile });
        }
        let mut tiles = guard.tiles.clone();
        let mut states = guard.states.clone();
        let mut weights = guard.weights.clone();
        tiles.push(Arc::new(TileCell::new(Arc::new(service))));
        states.push(TileState::Active);
        weights.push(weight);
        let next = Arc::new(Membership {
            epoch: guard.epoch + 1,
            tiles,
            states,
            weights,
        });
        *guard = Arc::clone(&next);
        self.shared.tiles_added.fetch_add(1, Ordering::Relaxed);
        let rehomed = self.shared.rehome_tracked(&next);
        Ok(MembershipChange {
            epoch: next.epoch,
            tile,
            rehomed_moduli: rehomed,
            active_tiles: next.active_count(),
        })
    }

    /// Re-weights one tile live: publishes a new membership epoch with
    /// the tile's capacity weight changed and re-homes the tracked
    /// moduli the new weighted ranking moves — raising a tile's
    /// weight only ever pulls moduli *onto* it, lowering it only ever
    /// pushes moduli *off* it (monotonicity of the weighted score),
    /// and republishing the same weight moves nothing. In-flight
    /// submissions keep routing against the snapshot they took;
    /// accepted tickets are never lost across the swap (pinned by the
    /// live-reweigh soak in `tests/elasticity.rs`).
    ///
    /// Re-weighting a draining or drained tile is allowed — the new
    /// weight takes effect when probation re-admits it.
    ///
    /// # Errors
    ///
    /// [`CoreError::ZeroTileWeight`] for `weight == 0` (weights are
    /// multiplicative capacity, not membership — drain the tile
    /// instead), [`CoreError::UnknownTile`] for an out-of-range index,
    /// [`CoreError::ClusterStopped`] after shutdown.
    pub fn set_tile_weight(&self, tile: usize, weight: u32) -> Result<MembershipChange, CoreError> {
        if weight == 0 {
            return Err(CoreError::ZeroTileWeight { tile });
        }
        let mut guard = self
            .shared
            .membership
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(CoreError::ClusterStopped);
        }
        if tile >= guard.tiles.len() {
            return Err(CoreError::UnknownTile { tile });
        }
        let mut weights = guard.weights.clone();
        weights[tile] = weight;
        let next = Arc::new(Membership {
            epoch: guard.epoch + 1,
            tiles: guard.tiles.clone(),
            states: guard.states.clone(),
            weights,
        });
        *guard = Arc::clone(&next);
        let rehomed = self.shared.rehome_tracked(&next);
        Ok(MembershipChange {
            epoch: next.epoch,
            tile,
            rehomed_moduli: rehomed,
            active_tiles: next.active_count(),
        })
    }

    /// Drains a tile live: atomically removes it from the routable set
    /// (new epoch — in-flight submissions racing the swap are refused
    /// by the paused tile and re-route), pauses its admissions, waits
    /// until the existing ticket machinery has delivered every job the
    /// tile had accepted, then marks it [`TileState::Drained`]
    /// (probation-eligible). Only the moduli whose rendezvous rank-0
    /// was this tile move; the proptest in `tests/elasticity.rs` pins
    /// that property.
    ///
    /// Draining the last routable tile is allowed (maintenance on a
    /// 1-tile cluster); submissions are refused with
    /// [`ClusterSubmitError::Stopped`] until a tile returns.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTile`] for an out-of-range index,
    /// [`CoreError::TileDraining`] if the tile is already draining or
    /// drained, [`CoreError::ClusterStopped`] after shutdown.
    pub fn drain_tile(&self, tile: usize) -> Result<MembershipChange, CoreError> {
        // Phase 1: atomically publish the tile as non-routable and
        // pause its admissions, so no submission — racing or future —
        // can land on it past this point.
        let (cell, rehomed) = {
            let mut guard = self
                .shared
                .membership
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            // Under the write lock, like add_tile: a drain racing
            // shutdown() either errors here or completes its pause
            // before the shutdown snapshot fans out.
            if self.shared.stopped.load(Ordering::Acquire) {
                return Err(CoreError::ClusterStopped);
            }
            if tile >= guard.tiles.len() {
                return Err(CoreError::UnknownTile { tile });
            }
            if guard.states[tile] != TileState::Active {
                return Err(CoreError::TileDraining { tile });
            }
            let mut states = guard.states.clone();
            states[tile] = TileState::Draining;
            let next = Arc::new(Membership {
                epoch: guard.epoch + 1,
                tiles: guard.tiles.clone(),
                states,
                weights: guard.weights.clone(),
            });
            *guard = Arc::clone(&next);
            let cell = Arc::clone(&next.tiles[tile]);
            cell.service.pause_admissions();
            let rehomed = self.shared.rehome_tracked(&next);
            (cell, rehomed)
        };
        // Phase 2: the existing ticket machinery drains the tile —
        // admissions are paused, so delivered == submitted is a
        // monotone barrier.
        while !cell.service.quiesced() {
            if self.shared.stopped.load(Ordering::Acquire) {
                // A concurrent shutdown drains every tile itself.
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        // Phase 3: mark the empty tile Drained (probation-eligible).
        let (epoch, active_tiles) = {
            let mut guard = self
                .shared
                .membership
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            if guard.states[tile] == TileState::Draining {
                let mut states = guard.states.clone();
                states[tile] = TileState::Drained;
                *guard = Arc::new(Membership {
                    epoch: guard.epoch + 1,
                    tiles: guard.tiles.clone(),
                    states,
                    weights: guard.weights.clone(),
                });
            }
            (guard.epoch, guard.active_count())
        };
        self.shared.tiles_drained.fetch_add(1, Ordering::Relaxed);
        Ok(MembershipChange {
            epoch,
            tile,
            rehomed_moduli: rehomed,
            active_tiles,
        })
    }

    /// Runs one probation pass over every sidelined tile: drained
    /// tiles and poisoned-but-active tiles each take a [`TileHealth`]
    /// probe, which **passes** when the tile is live and its caught
    /// panic count has not grown since the previous probe. After
    /// [`ClusterConfig::probation_after`] consecutive passes a drained
    /// tile resumes admissions and re-enters the routable set (new
    /// membership epoch, its moduli re-home back), and a poisoned
    /// tile's panics are pardoned. Call this on whatever cadence the
    /// deployment's health checker runs; a pass with nothing on
    /// probation is cheap. `probation_after == 0` disables
    /// re-admission entirely.
    pub fn probe_tiles(&self) -> ProbeReport {
        let mut report = ProbeReport::default();
        if self.shared.stopped.load(Ordering::Acquire) {
            return report;
        }
        let m = self.shared.snapshot();
        // Hot-modulus promotion/demotion rides the same cadence as
        // tile probation: each pass closes one saturation window.
        if self.shared.replicate_after > 0 {
            self.shared.replication_pass(&m, &mut report);
        }
        if self.probation() == 0 {
            return report;
        }
        for (tile, cell) in m.tiles.iter().enumerate() {
            match m.states[tile] {
                TileState::Draining => continue,
                TileState::Drained => {
                    if self.probe_cell(cell) && self.readmit(tile) {
                        report.readmitted.push(tile);
                    }
                }
                TileState::Active => {
                    let health = cell.service.health();
                    if !self.shared.poisoned(cell, &health) {
                        continue;
                    }
                    // A completed probation pardons inside probe_cell
                    // (the poison comparison starts over from the
                    // current count), so the tile is routable again
                    // without a membership change — it never left the
                    // Active set.
                    if self.probe_cell(cell) {
                        report.unpoisoned.push(tile);
                    }
                }
            }
        }
        report
    }

    fn probation(&self) -> u64 {
        self.shared.probation_after
    }

    /// One probe of one sidelined tile: pass ⇔ live and no new panics
    /// since the previous probe. Returns `true` when the tile has just
    /// completed its probation window.
    fn probe_cell(&self, cell: &TileCell) -> bool {
        let health = cell.service.health();
        let last = cell
            .probe_last_panics
            .swap(health.executor_panics, Ordering::Relaxed);
        if health.stopped || health.executor_panics != last {
            cell.probe_ok.store(0, Ordering::Relaxed);
            return false;
        }
        let ok = cell.probe_ok.fetch_add(1, Ordering::Relaxed) + 1;
        if ok < self.probation() {
            return false;
        }
        cell.probe_ok.store(0, Ordering::Relaxed);
        cell.pardoned_panics
            // analyzer: allow(relaxed_atomic, pardon level only trails the monotonic panic counter; a stale read re-poisons for at most one probe round)
            .store(health.executor_panics, Ordering::Relaxed);
        true
    }

    /// Re-admits a drained tile that completed probation: resumes its
    /// admissions and publishes a new epoch with the tile Active.
    /// Returns `false` if the tile was concurrently moved out of
    /// `Drained` (e.g. by a racing shutdown).
    fn readmit(&self, tile: usize) -> bool {
        let mut guard = self
            .shared
            .membership
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.states.get(tile) != Some(&TileState::Drained) {
            return false;
        }
        let mut states = guard.states.clone();
        states[tile] = TileState::Active;
        let next = Arc::new(Membership {
            epoch: guard.epoch + 1,
            tiles: guard.tiles.clone(),
            states,
            weights: guard.weights.clone(),
        });
        *guard = Arc::clone(&next);
        next.tiles[tile].service.resume_admissions();
        self.shared.tiles_readmitted.fetch_add(1, Ordering::Relaxed);
        self.shared.rehome_tracked(&next);
        true
    }

    /// A point-in-time statistics snapshot across every tile.
    pub fn stats(&self) -> ClusterStats {
        let m = self.shared.snapshot();
        let tiles: Vec<TileStats> = m
            .tiles
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let health = cell.service.health();
                TileStats {
                    routed: cell.routed.load(Ordering::Relaxed),
                    spilled_in: cell.spilled_in.load(Ordering::Relaxed),
                    weight: m.weights[i],
                    poisoned: self.shared.poisoned(cell, &health),
                    state: m.states[i],
                    health,
                    service: cell.service.stats(),
                }
            })
            .collect();
        let affinity_hits = self.shared.affinity_hits.load(Ordering::Relaxed);
        let spilled = self.shared.spilled.load(Ordering::Relaxed);
        // Aggregate tuning counters over the *distinct* tuners behind
        // the tiles: `ServiceCluster::auto` shares one tuner
        // cluster-wide, and counting it per tile would multiply every
        // number by the tile count.
        let mut seen_tuners: Vec<*const AutoTuner> = Vec::new();
        let mut autotune: Option<AutotuneStats> = None;
        for cell in m.tiles.iter() {
            let Some(tuner) = cell.service.pool().tuner() else {
                continue;
            };
            let ptr = Arc::as_ptr(tuner);
            if seen_tuners.contains(&ptr) {
                continue;
            }
            seen_tuners.push(ptr);
            let snapshot = tuner.stats();
            match &mut autotune {
                None => autotune = Some(snapshot),
                Some(agg) => agg.merge(&snapshot),
            }
        }
        ClusterStats {
            membership_epoch: m.epoch,
            active_tiles: m.active_count(),
            tiles_added: self.shared.tiles_added.load(Ordering::Relaxed),
            tiles_drained: self.shared.tiles_drained.load(Ordering::Relaxed),
            tiles_readmitted: self.shared.tiles_readmitted.load(Ordering::Relaxed),
            moduli_rehomed: self.shared.moduli_rehomed.load(Ordering::Relaxed),
            tracked_moduli: self
                .shared
                .homes
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
            submitted: affinity_hits + spilled,
            affinity_hits,
            spilled,
            saturated_rejections: self.shared.saturated_rejections.load(Ordering::Relaxed),
            replicated_moduli: self
                .shared
                .replicas
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
            replica_routed: self.shared.replica_routed.load(Ordering::Relaxed),
            completed: tiles.iter().map(|t| t.service.completed).sum(),
            failed: tiles.iter().map(|t| t.service.failed).sum(),
            autotune,
            tiles,
        }
    }

    /// Starts a fresh statistics window on every tile (see
    /// [`ModSramService::reset_window`]); routing tallies are lifetime
    /// counters and are untouched.
    pub fn reset_window(&self) {
        for cell in &self.shared.snapshot().tiles {
            cell.service.reset_window();
        }
    }

    /// Gracefully stops the cluster: refuses new submissions, then
    /// fans out to every tile's draining shutdown — every accepted
    /// ticket completes exactly once before this returns. Idempotent.
    pub fn shutdown(&self) -> ClusterStats {
        self.shared.stopped.store(true, Ordering::Release);
        // Tiles drain concurrently: each `shutdown` closes that tile's
        // queue and joins its threads while the remaining tiles keep
        // executing their own backlogs. Drained/paused tiles stop too.
        for cell in &self.shared.snapshot().tiles {
            cell.service.shutdown();
        }
        self.stats()
    }
}

impl Drop for ServiceCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A [`PreparedModMul`] whose every multiplication is routed through a
/// [`ServiceCluster`] — the cluster analogue of
/// [`crate::service::ServicePrepared`].
///
/// Obtained from [`ServiceCluster::prepared`]. `mod_mul` submits one
/// job and blocks on its ticket; `mod_mul_batch` submits the whole
/// batch (routed home-tile-major) before waiting, so independent
/// multiplications still coalesce on their home tile.
pub struct ClusterPrepared {
    handle: ClusterHandle,
    p: UBig,
}

impl core::fmt::Debug for ClusterPrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClusterPrepared {{ p: {} }}", self.p)
    }
}

impl PreparedModMul for ClusterPrepared {
    fn engine_name(&self) -> &'static str {
        "cluster"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        let ticket = self
            .handle
            .submit(MulJob::new(a.clone(), b.clone(), self.p.clone()))
            .map_err(backend_error)?;
        ticket_result(ticket.wait())
    }

    fn mod_mul_batch(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        let jobs: Vec<MulJob> = pairs
            .iter()
            .map(|(a, b)| MulJob::new(a.clone(), b.clone(), self.p.clone()))
            .collect();
        let tickets = self
            .handle
            .submit_many(jobs)
            .map_err(|f| backend_error(f.error))?;
        tickets.iter().map(|t| ticket_result(t.wait())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{slow_pool, FailureMode};
    use std::time::Duration;

    fn small_config() -> ClusterConfig {
        ClusterConfig {
            service: ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 8,
                flush_interval: Duration::from_micros(50),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn rendezvous_tie_break_prefers_the_lower_tile_index() {
        // The shared score is (score, mix, Reverse(index)): on a full
        // collision the *lower* index must win, for all call sites at
        // once — this is the single definition they share.
        let a = RendezvousScore {
            score: 1.0,
            mix: 7,
            tie: std::cmp::Reverse(1),
        };
        let b = RendezvousScore {
            score: 1.0,
            mix: 7,
            tie: std::cmp::Reverse(2),
        };
        assert!(
            a > b,
            "equal score and mix must break toward the lower index"
        );
        assert!(
            RendezvousScore {
                score: 1.0,
                mix: 8,
                tie: std::cmp::Reverse(9),
            } > a,
            "mix breaks equal scores"
        );
        assert!(
            RendezvousScore {
                score: 2.0,
                mix: 0,
                tie: std::cmp::Reverse(9),
            } > a,
            "the weighted score dominates the mix"
        );
        // The argmax and the full ranking agree on every probed key —
        // they both go through rendezvous_score, so the rank-0 of the
        // ranking IS the home.
        for key in [0u64, 1, 97, 0xDEAD_BEEF, u64::MAX] {
            for tiles in 1..=6usize {
                let best = (0..tiles)
                    .max_by_key(|&i| rendezvous_score(key, i, 1))
                    .unwrap();
                let mut order: Vec<usize> = (0..tiles).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(rendezvous_score(key, i, 1)));
                assert_eq!(order[0], best, "key {key}, {tiles} tiles");
            }
        }
    }

    #[test]
    fn planners_agree_on_degenerate_tile_counts() {
        // Regression (ISSUE 9 satellite 1): home_tile_for(p, 0) used
        // to return tile index 0 — out of range for an empty cluster —
        // while rendezvous_ranking(p, 0) returned []. Both planners
        // (and their weighted variants) must agree with
        // Membership::natural_home: no tiles, no home.
        let p = UBig::from(1_000_003u64);
        assert_eq!(home_tile_for(&p, 0), None);
        assert!(rendezvous_ranking(&p, 0).is_empty());
        assert_eq!(weighted_home_tile_for(&p, &[]), None);
        assert!(weighted_rendezvous_ranking(&p, &[]).is_empty());
        // One tile: the only possible answer, for every modulus.
        for m in [3u64, 97, 65537, 0xffff_fffb] {
            let p = UBig::from(m);
            assert_eq!(home_tile_for(&p, 1), Some(0));
            assert_eq!(rendezvous_ranking(&p, 1), vec![0]);
            assert_eq!(weighted_home_tile_for(&p, &[7]), Some(0));
            assert_eq!(weighted_rendezvous_ranking(&p, &[7]), vec![0]);
        }
    }

    #[test]
    fn equal_weights_reproduce_the_legacy_placement() {
        // The logarithmic score is monotone in the mix, so an
        // all-equal-weights fleet must rank every tile exactly as the
        // unweighted planner does — at any common weight, not just 1.
        for i in 0..200u64 {
            let p = UBig::from(2 * i + 3);
            for tiles in 1..=5usize {
                let legacy = rendezvous_ranking(&p, tiles);
                for w in [1u32, 2, 7, u32::MAX] {
                    let weights = vec![w; tiles];
                    assert_eq!(
                        weighted_rendezvous_ranking(&p, &weights),
                        legacy,
                        "weight {w}, {tiles} tiles, modulus {p}"
                    );
                    assert_eq!(weighted_home_tile_for(&p, &weights), Some(legacy[0]));
                }
            }
        }
    }

    #[test]
    fn weighted_share_tracks_weights() {
        // 2:1:1:1 over a large modulus sample: the 2× tile should home
        // ~40% of moduli (double each 1× tile's ~20%).
        let weights = [2u32, 1, 1, 1];
        let mut per_tile = [0usize; 4];
        let samples = 4000u64;
        for i in 0..samples {
            let p = UBig::from(2 * i + 3);
            per_tile[weighted_home_tile_for(&p, &weights).unwrap()] += 1;
        }
        let total: f64 = samples as f64;
        let weight_sum: u32 = weights.iter().sum();
        for (tile, &count) in per_tile.iter().enumerate() {
            let want = weights[tile] as f64 / weight_sum as f64;
            let got = count as f64 / total;
            assert!(
                (got - want).abs() / want < 0.15,
                "tile {tile}: share {got:.3} vs weight share {want:.3}"
            );
        }
    }

    #[test]
    fn rendezvous_order_is_a_stable_permutation() {
        let cluster = ServiceCluster::for_engine_name("barrett", 4, small_config()).unwrap();
        for m in [97u64, 101, 65537, 1_000_003, 0xffff_fffb] {
            let p = UBig::from(m);
            let home = cluster.home_tile(&p).unwrap();
            assert!(home < 4);
            // Stable across calls and equal to the standalone planner.
            assert_eq!(Some(home), cluster.home_tile(&p));
            assert_eq!(Some(home), home_tile_for(&p, 4));
            let order = rendezvous_ranking(&p, 4);
            assert_eq!(order[0], home, "ranking rank-0 is the home");
            let live = cluster.shared.snapshot().ranked(modulus_key(&p));
            assert_eq!(order, live, "standalone ranking == live ranking");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "ranked() must permute tiles");
        }
    }

    #[test]
    fn moduli_spread_across_tiles() {
        let cluster = ServiceCluster::for_engine_name("barrett", 4, small_config()).unwrap();
        let mut per_tile = [0usize; 4];
        for i in 0..128u64 {
            per_tile[cluster.home_tile(&UBig::from(2 * i + 3)).unwrap()] += 1;
        }
        for (tile, &count) in per_tile.iter().enumerate() {
            assert!(count > 0, "tile {tile} homed no modulus out of 128");
        }
    }

    #[test]
    fn submit_routes_and_completes_with_full_affinity() {
        let cluster = ServiceCluster::for_engine_name("barrett", 2, small_config()).unwrap();
        let moduli = [97u64, 101, 1_000_003, 0xffff_fffb];
        let mut tickets = Vec::new();
        for i in 0..40u64 {
            let p = UBig::from(moduli[(i % 4) as usize]);
            let a = UBig::from(i * 7 + 1);
            let b = UBig::from(i * 11 + 2);
            let want = &(&a * &b) % &p;
            tickets.push((cluster.submit(MulJob::new(a, b, p)).unwrap(), want));
        }
        for (ticket, want) in &tickets {
            assert_eq!(&ticket.wait().unwrap(), want);
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.submitted, 40);
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.spilled, 0, "uncontended cluster never spills");
        assert_eq!(stats.affinity_hit_rate(), 1.0);
        assert_eq!(stats.tracked_moduli, 4, "router tracked every modulus");
        assert_eq!(stats.membership_epoch, 0, "no membership change");
        // Routing tallies agree with the per-tile service counters.
        for tile in &stats.tiles {
            assert_eq!(tile.routed + tile.spilled_in, tile.service.submitted);
        }
    }

    #[test]
    fn submit_many_returns_tickets_in_job_order() {
        let cluster = ServiceCluster::for_engine_name("barrett", 3, small_config()).unwrap();
        let jobs: Vec<MulJob> = (0..30u64)
            .map(|i| {
                let p = UBig::from([97u64, 101, 65537][(i % 3) as usize]);
                MulJob::new(UBig::from(i + 2), UBig::from(i + 5), p)
            })
            .collect();
        let tickets = cluster.handle().submit_many(jobs.clone()).unwrap();
        assert_eq!(tickets.len(), jobs.len());
        for (job, ticket) in jobs.iter().zip(&tickets) {
            assert_eq!(ticket.wait().unwrap(), &(&job.a * &job.b) % &job.modulus);
        }
        cluster.shutdown();
    }

    #[test]
    fn stopped_cluster_refuses_submissions() {
        let cluster = ServiceCluster::for_engine_name("barrett", 2, small_config()).unwrap();
        cluster.shutdown();
        let job = MulJob::new(UBig::from(1u64), UBig::from(2u64), UBig::from(97u64));
        assert_eq!(
            cluster.submit(job.clone()).err(),
            Some(ClusterSubmitError::Stopped)
        );
        assert_eq!(
            cluster.try_submit(job.clone()).err(),
            Some(ClusterSubmitError::Stopped)
        );
        let bulk = cluster.handle().submit_many(vec![job]).unwrap_err();
        assert_eq!(bulk.error, ClusterSubmitError::Stopped);
        assert!(bulk.accepted.is_empty(), "nothing was queued");
        // Membership changes are refused too.
        assert_eq!(cluster.drain_tile(0).err(), Some(CoreError::ClusterStopped));
        // Shutdown is idempotent.
        let stats = cluster.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn blocking_submit_survives_a_home_tile_stop_mid_wait() {
        // Regression (ISSUE 5 satellite 1): one stopped tile + one
        // live tile. The home tile's queue is full, so the blocking
        // path parks on it; the home then stops underneath the waiter.
        // The old router mapped the home's `Stopped` to cluster-wide
        // `Stopped` even though the neighbour was live — the fix
        // re-routes and must land the job on the surviving tile.
        let config = ClusterConfig {
            spill: SpillPolicy::Strict,
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                flush_interval: Duration::ZERO,
                pipeline_depth: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let delay = Duration::from_millis(50);
        let cluster = ServiceCluster::new(vec![slow_pool(delay), slow_pool(delay)], config);
        // A modulus homed on tile 0.
        let p = (0..64u64)
            .map(|i| UBig::from(1_000_003u64 + 2 * i))
            .find(|p| cluster.home_tile(p) == Some(0))
            .expect("some modulus homes on tile 0");
        // Saturate tile 0 in two phases: the batcher drains the
        // bounded queue into the exec pipeline within microseconds, so
        // first let the pipeline absorb its fill (executor + exec
        // queue + batcher hand-off), then fill the queue itself. It
        // then stays full until the executor finishes its current
        // 50 ms multiplication — far past the shutdown below.
        let mut warm = Vec::new();
        for i in 0..3u64 {
            if let Ok(t) =
                cluster.try_submit(MulJob::new(UBig::from(i + 2), UBig::from(3u64), p.clone()))
            {
                warm.push(t);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
        let mut refused = false;
        for i in 0..8u64 {
            match cluster.try_submit(MulJob::new(UBig::from(i + 20), UBig::from(3u64), p.clone())) {
                Ok(t) => warm.push(t),
                Err(_) => refused = true,
            }
        }
        assert!(
            refused,
            "home tile must be saturated before the blocking submit"
        );
        let shared = Arc::clone(&cluster.shared);
        let job = MulJob::new(UBig::from(11u64), UBig::from(13u64), p.clone());
        let want = &(&job.a * &job.b) % &p;
        let waiter = std::thread::spawn({
            let handle = cluster.handle();
            move || handle.submit(job)
        });
        // Give the waiter time to park on tile 0's full queue, then
        // stop tile 0's service directly (not the cluster).
        std::thread::sleep(Duration::from_millis(10));
        shared.snapshot().tiles[0].service.shutdown();
        let ticket = waiter
            .join()
            .unwrap()
            .expect("submit must re-route to the live tile, not report Stopped");
        assert_eq!(ticket.wait().unwrap(), want);
        let stats = cluster.stats();
        assert!(
            stats.tiles[1].service.submitted >= 1,
            "re-routed job landed on the live tile"
        );
        cluster.shutdown();
    }

    #[test]
    fn submit_many_mid_batch_stop_returns_the_accepted_prefix() {
        // Regression (ISSUE 5 satellite 2): a bulk submission that
        // blocks on a slow tile's capacity while the cluster shuts
        // down must hand back the tickets it already queued — those
        // jobs still execute, and dropping their handles would strand
        // the waiter.
        let config = ClusterConfig {
            spill: SpillPolicy::Strict,
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                flush_interval: Duration::ZERO,
                pipeline_depth: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let cluster = ServiceCluster::new(vec![slow_pool(Duration::from_millis(20))], config);
        let p = UBig::from(1_000_003u64);
        let jobs: Vec<MulJob> = (0..16u64)
            .map(|i| MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone()))
            .collect();
        let oracle: Vec<UBig> = jobs.iter().map(|j| &(&j.a * &j.b) % &j.modulus).collect();
        let bulk = std::thread::spawn({
            let handle = cluster.handle();
            move || handle.submit_many(jobs)
        });
        // Let the bulk call queue a couple of jobs and block on the
        // tiny queue, then pull the plug.
        std::thread::sleep(Duration::from_millis(15));
        cluster.shutdown();
        let failure = bulk
            .join()
            .unwrap()
            .expect_err("shutdown mid-batch fails the bulk call");
        assert_eq!(failure.error, ClusterSubmitError::Stopped);
        assert!(
            !failure.accepted.is_empty(),
            "jobs queued before the stop must keep their tickets"
        );
        // Every accepted ticket was drained by shutdown and is correct.
        for (idx, ticket) in &failure.accepted {
            assert!(ticket.is_done(), "shutdown drains accepted tickets");
            assert_eq!(ticket.wait().unwrap(), oracle[*idx], "job {idx}");
        }
    }

    #[test]
    fn drain_tile_rejects_bad_and_repeated_indices() {
        let config = ClusterConfig {
            probation_after: 2,
            ..small_config()
        };
        let cluster = ServiceCluster::for_engine_name("barrett", 3, config).unwrap();
        assert_eq!(
            cluster.drain_tile(7).err(),
            Some(CoreError::UnknownTile { tile: 7 })
        );
        let report = cluster.drain_tile(1).unwrap();
        assert_eq!(report.tile, 1);
        assert_eq!(report.active_tiles, 2);
        assert!(report.epoch >= 1);
        assert_eq!(cluster.tile_state(1), Some(TileState::Drained));
        assert_eq!(
            cluster.drain_tile(1).err(),
            Some(CoreError::TileDraining { tile: 1 }),
            "double drain is refused"
        );
        // Jobs for every modulus still complete on the 2 live tiles,
        // and none land on the drained tile.
        let mut tickets = Vec::new();
        for i in 0..12u64 {
            let p = UBig::from(2 * i + 97);
            assert_ne!(
                cluster.home_tile(&p),
                Some(1),
                "drained tile is not routable"
            );
            let job = MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone());
            let want = &(&job.a * &job.b) % &p;
            tickets.push((cluster.submit(job).unwrap(), want));
        }
        for (t, want) in &tickets {
            assert_eq!(&t.wait().unwrap(), want);
        }
        let stats = cluster.stats();
        assert_eq!(stats.tiles[1].service.submitted, 0);
        assert_eq!(stats.tiles_drained, 1);
        assert_eq!(stats.active_tiles, 2);
        cluster.shutdown();
    }

    #[test]
    fn add_tile_grows_the_routable_set_and_rehomes_minimally() {
        let cluster = ServiceCluster::for_engine_name("barrett", 2, small_config()).unwrap();
        // Route (and track) a spread of moduli, recording their homes.
        let moduli: Vec<UBig> = (0..48u64).map(|i| UBig::from(2 * i + 101)).collect();
        for p in &moduli {
            let t = cluster
                .submit(MulJob::new(UBig::from(3u64), UBig::from(5u64), p.clone()))
                .unwrap();
            t.wait().unwrap();
        }
        let before: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
        let service = ModSramService::for_engine_name("barrett", small_config().service).unwrap();
        let report = cluster.add_tile(service).unwrap();
        assert_eq!(report.tile, 2);
        assert_eq!(report.active_tiles, 3);
        let after: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
        let mut moved = 0u64;
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert_eq!(*a, Some(2), "modulus {i} may only move TO the new tile");
                moved += 1;
            }
        }
        assert!(moved > 0, "a new tile must win some moduli");
        assert_eq!(
            report.rehomed_moduli, moved,
            "re-home accounting matches observed home moves"
        );
        // New-tile traffic actually lands there.
        let Some(p) = moduli.iter().find(|p| cluster.home_tile(p) == Some(2)) else {
            panic!("some tracked modulus homes on the new tile");
        };
        let t = cluster
            .submit(MulJob::new(UBig::from(7u64), UBig::from(9u64), p.clone()))
            .unwrap();
        t.wait().unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.tiles.len(), 3);
        assert_eq!(stats.tiles_added, 1);
        assert!(stats.tiles[2].service.submitted >= 1);
        cluster.shutdown();
    }

    #[test]
    fn poisoned_tile_is_pardoned_after_probation() {
        use crate::test_util::recovering_pool;
        // Tile 0 panics on calls 1..=2 then recovers for good. With
        // poison_after = 2 the router sidelines it; two clean probes
        // later probe_tiles() pardons it and its modulus comes home.
        let config = ClusterConfig {
            spill: SpillPolicy::Spill { max_hops: 1 },
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                max_batch: 1,
                flush_interval: Duration::ZERO,
                pipeline_depth: 1,
                ..Default::default()
            },
            poison_after: 2,
            probation_after: 2,
            ..Default::default()
        };
        let sick = recovering_pool(1, 2, FailureMode::Panic);
        let healthy = ContextPool::for_engine_name("barrett").unwrap();
        let cluster = ServiceCluster::new(vec![sick, healthy], config);
        let p = (0..64u64)
            .map(|i| UBig::from(1_000_003u64 + 2 * i))
            .find(|p| cluster.home_tile(p) == Some(0))
            .expect("some modulus homes on tile 0");
        let job = |i: u64| MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone());
        // Two panicking batches poison tile 0.
        for i in 0..2u64 {
            let t = cluster.submit(job(i)).unwrap();
            assert!(t.wait().is_err(), "panicked batch fails its ticket");
        }
        let stats = cluster.stats();
        assert!(stats.tiles[0].poisoned, "tile 0 hit poison_after");
        // Its modulus fails over to tile 1 (counted as spilled).
        let t = cluster.submit(job(10)).unwrap();
        t.wait().unwrap();
        assert!(cluster.stats().spilled >= 1);
        // Probation: the first probe only records the panic baseline
        // (the count grew since construction, so it cannot pass); the
        // next two clean probes complete the window and pardon.
        assert_eq!(cluster.probe_tiles(), ProbeReport::default());
        assert_eq!(cluster.probe_tiles(), ProbeReport::default());
        let report = cluster.probe_tiles();
        assert_eq!(report.unpoisoned, vec![0]);
        assert!(!cluster.stats().tiles[0].poisoned, "pardon cleared poison");
        // Traffic returns to the recovered home tile and succeeds
        // (the pool's fuse has burned out).
        let t = cluster.submit(job(20)).unwrap();
        let want = &(&UBig::from(22u64) * &UBig::from(23u64)) % &p;
        assert_eq!(t.wait().unwrap(), want);
        let stats = cluster.shutdown();
        assert!(
            stats.tiles[0].service.completed >= 1,
            "home tile serves again"
        );
    }

    #[test]
    fn cluster_submit_error_maps_into_core_error() {
        assert_eq!(
            CoreError::from(ClusterSubmitError::Stopped),
            CoreError::ClusterStopped
        );
        assert_eq!(
            CoreError::from(ClusterSubmitError::AllTilesSaturated { tried: 2 }),
            CoreError::AllTilesSaturated { tried: 2 }
        );
        assert!(CoreError::AllTilesSaturated { tried: 2 }
            .to_string()
            .contains("2 tile(s)"));
        assert!(CoreError::UnknownTile { tile: 9 }.to_string().contains("9"));
        assert!(CoreError::TileDraining { tile: 3 }
            .to_string()
            .contains("3"));
    }

    #[test]
    fn set_tile_weight_rejects_zero_and_unknown() {
        let cluster = ServiceCluster::for_engine_name("barrett", 2, small_config()).unwrap();
        assert_eq!(
            cluster.set_tile_weight(0, 0).err(),
            Some(CoreError::ZeroTileWeight { tile: 0 })
        );
        assert_eq!(
            cluster.set_tile_weight(9, 3).err(),
            Some(CoreError::UnknownTile { tile: 9 })
        );
        let service = ModSramService::for_engine_name("barrett", small_config().service).unwrap();
        assert!(matches!(
            cluster.add_tile_weighted(service, 0).err(),
            Some(CoreError::ZeroTileWeight { tile: 2 })
        ));
        assert_eq!(cluster.tile_weight(0), Some(1));
        assert_eq!(cluster.tile_weight(9), None);
        cluster.shutdown();
    }

    #[test]
    fn set_tile_weight_pulls_moduli_only_onto_the_raised_tile() {
        let cluster = ServiceCluster::for_engine_name("barrett", 4, small_config()).unwrap();
        // Route (and track) a spread of moduli.
        let moduli: Vec<UBig> = (0..64u64).map(|i| UBig::from(2 * i + 101)).collect();
        for p in &moduli {
            cluster
                .submit(MulJob::new(UBig::from(3u64), UBig::from(5u64), p.clone()))
                .unwrap()
                .wait()
                .unwrap();
        }
        let before: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
        // Republishing the same weight is a no-op placement-wise.
        let change = cluster.set_tile_weight(2, 1).unwrap();
        assert_eq!(change.rehomed_moduli, 0, "weight-1 republish moves nothing");
        // Raising tile 2's weight only ever pulls moduli onto tile 2.
        let change = cluster.set_tile_weight(2, 4).unwrap();
        assert_eq!(cluster.tile_weight(2), Some(4));
        let after: Vec<Option<usize>> = moduli.iter().map(|p| cluster.home_tile(p)).collect();
        let mut moved = 0u64;
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert_eq!(*a, Some(2), "modulus {i} may only move TO the raised tile");
                moved += 1;
            }
        }
        assert!(moved > 0, "a 4x tile must win some moduli from 64");
        assert_eq!(change.rehomed_moduli, moved, "re-home accounting matches");
        assert_eq!(cluster.stats().tiles[2].weight, 4);
        // The weighted standalone planner predicts the live router.
        for (p, a) in moduli.iter().zip(&after) {
            assert_eq!(weighted_home_tile_for(p, &[1, 1, 4, 1]), *a);
        }
        cluster.shutdown();
    }

    #[test]
    fn hot_modulus_replication_promotes_routes_and_demotes() {
        // One modulus hot enough to saturate its Strict home must be
        // promoted to a replica set, served by both replicas, and
        // demoted once the pressure subsides.
        let config = ClusterConfig {
            spill: SpillPolicy::Strict,
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                flush_interval: Duration::ZERO,
                pipeline_depth: 1,
                ..Default::default()
            },
            poison_after: 0,
            probation_after: 2,
            replicate_after: 3,
            replica_tiles: 2,
        };
        let delay = Duration::from_millis(2);
        let cluster = ServiceCluster::new(vec![slow_pool(delay), slow_pool(delay)], config);
        let p = (0..64u64)
            .map(|i| UBig::from(1_000_003u64 + 2 * i))
            .find(|p| cluster.home_tile(p) == Some(0))
            .expect("some modulus homes on tile 0");
        let job = |i: u64| MulJob::new(UBig::from(i + 2), UBig::from(i + 3), p.clone());
        // Saturate the home: accepted jobs fill the tiny queue, then
        // refused try_submits rack up saturation events.
        let mut tickets = Vec::new();
        let mut refused = 0u64;
        for i in 0..32u64 {
            match cluster.try_submit(job(i)) {
                Ok(t) => tickets.push(t),
                Err(_) => refused += 1,
            }
        }
        assert!(refused >= 3, "the Strict home must have refused a burst");
        for t in tickets.drain(..) {
            t.wait().unwrap();
        }
        // The probe window closes: the modulus is promoted.
        let report = cluster.probe_tiles();
        assert_eq!(report.promoted, vec![p.clone()], "hot modulus promoted");
        assert_eq!(cluster.stats().replicated_moduli, 1);
        // A modest burst (within the two replicas' combined buffering,
        // so it saturates nothing and the calm window below is clean)
        // now lands across both replicas, most headroom first.
        for i in 100..106u64 {
            tickets.push(cluster.submit(job(i)).unwrap());
        }
        for t in tickets.drain(..) {
            t.wait().unwrap();
        }
        let stats = cluster.stats();
        assert!(
            stats.replica_routed >= 1,
            "some jobs must land on the non-home replica (stats: {} replica_routed)",
            stats.replica_routed
        );
        assert!(
            stats.tiles[1].routed >= 1,
            "the replica tile serves the hot modulus as affinity traffic"
        );
        assert_eq!(stats.spilled, 0, "replica landings are not spills");
        // Demotion takes `probation_after = 2` *consecutive* calm
        // probes, so the very next probe can never demote: the calm
        // counter is at most 1 (it is 0 if the burst itself recorded a
        // saturation event before the replicas absorbed it).
        assert!(cluster.probe_tiles().demoted.is_empty());
        // Within two further idle probes the calm window closes.
        let mut demoted = cluster.probe_tiles().demoted;
        if demoted.is_empty() {
            demoted = cluster.probe_tiles().demoted;
        }
        assert_eq!(demoted, vec![p.clone()], "calm modulus demoted");
        assert_eq!(cluster.stats().replicated_moduli, 0);
        cluster.shutdown();
    }

    #[test]
    fn cluster_prepared_streams_through_the_router() {
        let cluster = ServiceCluster::for_engine_name("montgomery", 2, small_config()).unwrap();
        let ctx = cluster.prepared(&UBig::from(1_000_003u64));
        assert_eq!(ctx.engine_name(), "cluster");
        assert_eq!(ctx.modulus(), &UBig::from(1_000_003u64));
        assert_eq!(
            ctx.mod_mul(&UBig::from(2024u64), &UBig::from(4096u64))
                .unwrap(),
            UBig::from(2024u64 * 4096 % 1_000_003)
        );
        let pairs = vec![(UBig::from(3u64), UBig::from(5u64)); 6];
        assert_eq!(
            ctx.mod_mul_batch(&pairs).unwrap(),
            vec![UBig::from(15u64); 6]
        );
        let stats = cluster.shutdown();
        assert_eq!(stats.completed, 7);
    }
}
