//! Sharded batch dispatch over prepared contexts: the serving layer of
//! the paper's §6 system-level direction.
//!
//! Three pieces compose into a multi-modulus batch scheduler:
//!
//! * [`Chunk`] planning — a batch of `(a, b)` pairs is cut into
//!   contiguous chunks, each carrying a **cost estimate** that charges
//!   [`LUT_REFILL_COST`] work units for every multiplicand change
//!   inside the chunk (Table 1b is rebuilt when `B` changes, so a chunk
//!   full of distinct multiplicands is genuinely more expensive than a
//!   same-length run sharing one — the reason plain round-robin
//!   assignment is no longer within one job of optimal).
//! * [`Dispatcher`] — real `std::thread::scope` workers over the
//!   chunked queue. Chunks are seeded onto per-worker deques by
//!   **least-loaded** greedy assignment over the cost estimates; under
//!   [`StealPolicy::WorkStealing`] an idle worker then steals from the
//!   *back* of the most recently seeded victim ranges (owners drain
//!   front-to-back, preserving multiplicand-run locality). Results are
//!   stitched back in input order and per-worker tallies (items, busy
//!   nanoseconds, steals) are aggregated into [`DispatchStats`].
//! * [`ContextPool`] — a thread-safe cache of prepared contexts keyed
//!   by modulus, so mixed-modulus batches (ECDSA verify over `n` and
//!   `p`, Pedersen over two curves) reuse Montgomery/Barrett/LUT
//!   preparation instead of re-deriving it per request.
//!
//! Chunk claiming is lock-free and race-proof: seeded ranges are only
//! advisory orderings, and every chunk carries an atomic claim flag
//! that exactly one worker can win, whether it arrives as the owner or
//! as a thief.
//!
//! This module is the **staged** half of the serving story: callers
//! materialise a whole batch and dispatch it in one call. The
//! **streaming** half lives in [`crate::service`]: a
//! [`crate::service::ModSramService`] owns a bounded submission queue
//! and a coalescing batcher whose knobs
//! ([`crate::service::ServiceConfig::max_batch`],
//! [`crate::service::ServiceConfig::flush_interval`]) control how many
//! queued jobs are merged into each multiplicand-major batch handed to
//! this dispatcher.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use modsram_bigint::UBig;
//! use modsram_core::dispatch::{ContextPool, Dispatcher, MulJob};
//!
//! let pool = ContextPool::for_engine_name("barrett").unwrap();
//! let dispatcher = Dispatcher::new(2);
//! let jobs: Vec<MulJob> = [(3u64, 4u64, 97u64), (5, 6, 101), (7, 8, 97)]
//!     .iter()
//!     .map(|&(a, b, p)| MulJob::new(UBig::from(a), UBig::from(b), UBig::from(p)))
//!     .collect();
//! let (results, stats) = dispatcher.dispatch_jobs(&pool, &jobs).unwrap();
//! assert_eq!(results, vec![UBig::from(12u64), UBig::from(30u64), UBig::from(56u64)]);
//! assert_eq!(stats.items, 3);
//! assert_eq!(pool.len(), 2); // 97 prepared once, shared by jobs 0 and 2
//! ```

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use modsram_bigint::UBig;
use modsram_modmul::{EngineCtor, ModMulError, PreparedModMul, ENGINE_REGISTRY};

use crate::autotune::{AutoTuner, TunePolicy};
use crate::error::CoreError;
use crate::modsram::{ModSramConfig, PreparedModSram};

// The refill cost constant moved to `crate::cycles` alongside the other
// modelled-cycle numbers; the re-export keeps `dispatch::LUT_REFILL_COST`
// paths compiling.
pub use crate::cycles::LUT_REFILL_COST;

/// A contiguous slice of the work queue plus its estimated cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Item index range into the submitted batch.
    pub range: Range<usize>,
    /// Estimated cost in multiplication-equivalents (items plus
    /// [`LUT_REFILL_COST`] per multiplicand change).
    pub cost: u64,
}

impl Chunk {
    /// Number of items in the chunk.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` when the chunk covers no items.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// Picks a chunk size that gives every worker several chunks to smooth
/// imbalance without drowning small batches in scheduling overhead.
pub fn auto_chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers.max(1) * 4)).max(1)
}

/// Cuts `pairs` into chunks of at most `target` items, costing each
/// chunk by its length plus [`LUT_REFILL_COST`] per multiplicand
/// change (the first pair of a chunk always counts as a change — a
/// fresh bank has to fill Table 1b no matter what ran before).
pub fn plan_mul_chunks(pairs: &[(UBig, UBig)], target: usize) -> Vec<Chunk> {
    plan_chunks_by(pairs.len(), target, |i| &pairs[i].1, |_| true)
}

/// As [`plan_mul_chunks`], but also splits at every modulus boundary so
/// a chunk never mixes jobs for two different prepared contexts.
pub fn plan_job_chunks(jobs: &[MulJob], target: usize) -> Vec<Chunk> {
    plan_chunks_by(
        jobs.len(),
        target,
        |i| &jobs[i].b,
        |i| jobs[i].modulus == jobs[i - 1].modulus,
    )
}

/// Shared chunk-planning walk: cut at `target` items or wherever
/// `may_join(i)` forbids item `i` from joining item `i − 1`'s chunk.
fn plan_chunks_by<'a>(
    items: usize,
    target: usize,
    multiplicand: impl Fn(usize) -> &'a UBig,
    may_join: impl Fn(usize) -> bool,
) -> Vec<Chunk> {
    let target = target.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut cost = 0u64;
    for i in 0..items {
        if i > start && (i - start >= target || !may_join(i)) {
            chunks.push(Chunk {
                range: start..i,
                cost,
            });
            start = i;
            cost = 0;
        }
        let changed = i == start || multiplicand(i) != multiplicand(i - 1);
        cost += 1 + if changed { LUT_REFILL_COST } else { 0 };
    }
    if start < items {
        chunks.push(Chunk {
            range: start..items,
            cost,
        });
    }
    chunks
}

/// Greedy least-loaded seeding: chunks are assigned, in index order, to
/// whichever worker currently carries the smallest summed cost (ties
/// break toward the lowest worker index). Replaces the seed's
/// `i % n_banks` round-robin, whose optimality claim stopped holding
/// once per-chunk multiplicand-change precompute made costs uneven.
pub fn seed_assignments(chunks: &[Chunk], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut load = vec![0u64; workers];
    let mut assignments = vec![Vec::new(); workers];
    for (id, chunk) in chunks.iter().enumerate() {
        // `workers >= 1`, so the fold always visits at least index 0.
        let lightest = (1..workers).fold(0, |best, w| if load[w] < load[best] { w } else { best });
        load[lightest] += chunk.cost;
        assignments[lightest].push(id);
    }
    assignments
}

/// Whether idle workers may take chunks seeded onto other workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Idle workers steal from the back of victims' queues — maximum
    /// host throughput; which worker executes a chunk depends on OS
    /// scheduling.
    #[default]
    WorkStealing,
    /// Every worker executes exactly its seeded chunks. Deterministic
    /// worker-to-chunk mapping — what a tile of physical macros with
    /// private queues does, and what cycle-accurate per-bank statistics
    /// require (see [`crate::BankedModSram`]).
    Static,
}

/// Per-run tallies aggregated from the workers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchStats {
    /// Items executed.
    pub items: u64,
    /// Chunks the batch was cut into.
    pub chunks: u64,
    /// Chunks executed by a worker other than the one they were seeded
    /// on (always 0 under [`StealPolicy::Static`]).
    pub steals: u64,
    /// Items executed per worker.
    pub per_worker_items: Vec<u64>,
    /// Nanoseconds each worker spent executing chunks (excludes queue
    /// scanning and thread start-up).
    pub per_worker_busy_ns: Vec<u64>,
    /// Wall-clock nanoseconds for the whole dispatch.
    pub elapsed_ns: u64,
}

impl DispatchStats {
    /// Modelled parallel speedup: total busy time over the critical
    /// path (the busiest worker). This is the speedup a tile with one
    /// physical lane per worker achieves, independent of how many host
    /// cores the simulation itself was timesliced onto.
    pub fn busy_speedup(&self) -> f64 {
        let total: u64 = self.per_worker_busy_ns.iter().sum();
        let max = self.per_worker_busy_ns.iter().copied().max().unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            total as f64 / max as f64
        }
    }
}

/// One multiplication request in a mixed-modulus batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulJob {
    /// Multiplier.
    pub a: UBig,
    /// Multiplicand (the operand whose LUT is rebuilt on change).
    pub b: UBig,
    /// Modulus; the pool resolves it to a prepared context.
    pub modulus: UBig,
}

impl MulJob {
    /// Bundles a request.
    pub fn new(a: UBig, b: UBig, modulus: UBig) -> Self {
        MulJob { a, b, modulus }
    }
}

/// How a [`ContextPool`] prepares a context for a new modulus.
type Preparer = Box<dyn Fn(&UBig) -> Result<Box<dyn PreparedModMul>, ModMulError> + Send + Sync>;

/// A cached context plus the logical timestamp of its last use (the
/// LRU ordering key when the pool is capacity-bounded).
struct PoolEntry {
    ctx: Arc<dyn PreparedModMul>,
    last_used: u64,
}

/// A thread-safe cache of prepared contexts keyed by modulus.
///
/// Preparation (Montgomery `R²`/`−p⁻¹`, Barrett `µ`, LUT rows, or a
/// whole modulus-loaded ModSRAM device) runs at most once per distinct
/// modulus; every later request for the same modulus gets the cached
/// `Arc`. Safe to share across threads — concurrent first requests for
/// one modulus may race to prepare, but exactly one context wins the
/// cache and everyone receives that winner.
///
/// Unbounded by default; [`ContextPool::with_capacity`] bounds the
/// cache for long mixed-modulus streams, evicting the least-recently
/// used modulus once the bound is exceeded (contexts already handed
/// out stay alive through their `Arc`s — eviction only drops the
/// cache's reference, so a re-request re-prepares).
pub struct ContextPool {
    preparer: Preparer,
    cache: Mutex<HashMap<UBig, PoolEntry>>,
    capacity: Option<usize>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Present on autotuning pools ([`ContextPool::auto`]): the
    /// decision engine that picks a per-modulus engine and remembers
    /// the choice across evictions.
    tuner: Option<Arc<AutoTuner>>,
}

impl std::fmt::Debug for ContextPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ContextPool {{ moduli: {}, capacity: {:?}, hits: {}, misses: {}, evictions: {} }}",
            self.len(),
            self.capacity,
            self.hits(),
            self.misses(),
            self.evictions()
        )
    }
}

impl ContextPool {
    /// Builds a pool around an arbitrary preparation function.
    pub fn new(
        preparer: impl Fn(&UBig) -> Result<Box<dyn PreparedModMul>, ModMulError> + Send + Sync + 'static,
    ) -> Self {
        ContextPool {
            preparer: Box::new(preparer),
            cache: Mutex::new(HashMap::new()),
            capacity: None,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tuner: None,
        }
    }

    /// A self-tuning pool: each distinct modulus gets whatever engine
    /// `policy` decides — pinned, profile-table lookup, or a prepare-
    /// time calibration race — instead of one pool-wide constructor.
    /// See [`crate::autotune`] for the decision machinery.
    pub fn auto(policy: TunePolicy) -> Self {
        Self::with_tuner(Arc::new(AutoTuner::new(policy)))
    }

    /// A self-tuning pool sharing an existing [`AutoTuner`] — the way a
    /// cluster gives every tile the benefit of every tile's
    /// calibration (and an eviction on one tile never forgets a
    /// choice another tile still uses).
    pub fn with_tuner(tuner: Arc<AutoTuner>) -> Self {
        let decision = Arc::clone(&tuner);
        let mut pool = Self::new(move |p| decision.prepare(p));
        pool.tuner = Some(tuner);
        pool
    }

    /// The autotuner behind this pool, if it was built with
    /// [`ContextPool::auto`]/[`ContextPool::with_tuner`].
    pub fn tuner(&self) -> Option<&Arc<AutoTuner>> {
        self.tuner.as_ref()
    }

    /// Bounds the cache to `max_moduli` distinct moduli (at least 1).
    /// When a fresh preparation would exceed the bound, the
    /// least-recently-used modulus is evicted and counted in
    /// [`ContextPool::evictions`].
    pub fn with_capacity(mut self, max_moduli: usize) -> Self {
        self.capacity = Some(max_moduli.max(1));
        self
    }

    /// Pool over a registry engine constructor.
    pub fn for_engine_ctor(ctor: EngineCtor) -> Self {
        Self::new(move |p| ctor().prepare(p))
    }

    /// Pool over a registry engine by name, or `None` for an unknown
    /// name.
    pub fn for_engine_name(name: &str) -> Option<Self> {
        let (_, ctor) = ENGINE_REGISTRY.iter().find(|(n, _)| *n == name)?;
        Some(Self::for_engine_ctor(*ctor))
    }

    /// Pool of cycle-accurate ModSRAM devices: each distinct modulus
    /// gets its own modulus-loaded device sized for that modulus.
    pub fn for_modsram(config: ModSramConfig) -> Self {
        Self::new(move |p| {
            Ok(Box::new(PreparedModSram::new(p, &config)?) as Box<dyn PreparedModMul>)
        })
    }

    /// Locks the cache, refusing (instead of unwinding) when a previous
    /// holder panicked mid-update.
    fn lock_cache(&self) -> Result<std::sync::MutexGuard<'_, HashMap<UBig, PoolEntry>>, CoreError> {
        self.cache.lock().map_err(|_| CoreError::PoisonedLock {
            what: "context pool",
        })
    }

    /// Returns the prepared context for `p`, preparing it on first use.
    ///
    /// # Errors
    ///
    /// Propagates the preparation error (zero modulus, even modulus for
    /// the Montgomery family, …) as [`CoreError::ModMul`]; failures are
    /// not cached. [`CoreError::PoisonedLock`] if a previous caller
    /// panicked while holding the cache.
    pub fn context(&self, p: &UBig) -> Result<Arc<dyn PreparedModMul>, CoreError> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut cache = self.lock_cache()?;
            if let Some(entry) = cache.get_mut(p) {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.ctx));
            }
        }
        // Prepare outside the lock so a slow preparation (device
        // construction, LUT fill) doesn't serialise unrelated moduli.
        let fresh: Arc<dyn PreparedModMul> =
            Arc::from((self.preparer)(p).map_err(CoreError::ModMul)?);
        let mut cache = self.lock_cache()?;
        // A concurrent preparer may have won the race; keep the cached
        // one so every caller shares a single canonical context, and
        // count the race loser as a hit — `misses` stays "distinct
        // cache fills", deterministic no matter how requests race.
        let ctx = match cache.entry(p.clone()) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let entry = entry.get_mut();
                entry.last_used = entry.last_used.max(stamp);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&entry.ctx)
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(
                    &slot
                        .insert(PoolEntry {
                            ctx: fresh,
                            last_used: stamp,
                        })
                        .ctx,
                )
            }
        };
        self.evict_over_capacity(&mut cache, p);
        Ok(ctx)
    }

    /// Evicts least-recently-used entries (never `keep`) until the
    /// cache fits the configured capacity.
    fn evict_over_capacity(&self, cache: &mut HashMap<UBig, PoolEntry>, keep: &UBig) {
        let Some(cap) = self.capacity else { return };
        while cache.len() > cap {
            let victim = cache
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    cache.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    // The tuner's learned choice outlives the context:
                    // a re-request re-prepares the remembered winner
                    // without re-racing.
                    if let Some(tuner) = &self.tuner {
                        tuner.note_eviction(&k);
                    }
                }
                None => break,
            }
        }
    }

    /// Number of distinct moduli currently cached.
    pub fn len(&self) -> usize {
        // Read-only observation: recover the map from a poisoned lock
        // rather than failing a stats probe.
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when no modulus has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Distinct cache fills: requests whose preparation actually
    /// entered the cache. When concurrent first requests for one
    /// modulus race, exactly one counts here and the losers count as
    /// hits — so `misses` equals the number of distinct moduli
    /// prepared-and-cached, deterministic under any interleaving.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Contexts dropped from a capacity-bounded cache.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A work-stealing batch scheduler over `std::thread::scope` workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatcher {
    workers: usize,
    chunk_size: Option<usize>,
    policy: StealPolicy,
}

impl Dispatcher {
    /// A dispatcher with `workers` threads, automatic chunk sizing, and
    /// work stealing enabled.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Dispatcher {
            workers,
            chunk_size: None,
            policy: StealPolicy::default(),
        }
    }

    /// Overrides the automatic chunk size.
    pub fn chunk_size(mut self, items: usize) -> Self {
        self.chunk_size = Some(items.max(1));
        self
    }

    /// Sets the steal policy.
    pub fn policy(mut self, policy: StealPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The chunk size used for a batch of `items`.
    pub fn chunk_size_for(&self, items: usize) -> usize {
        self.chunk_size
            .unwrap_or_else(|| auto_chunk_size(items, self.workers))
    }

    /// The generic work-stealing core: executes pre-planned `chunks`,
    /// giving each worker its own state from `init` (built on the
    /// worker thread, so it need not be `Send`), and stitches the
    /// per-chunk result vectors back together in input order.
    ///
    /// `work` must return exactly `chunk.len()` results on success.
    ///
    /// # Errors
    ///
    /// Returns the first chunk error encountered; remaining chunks are
    /// abandoned as soon as workers observe the abort flag.
    ///
    /// # Panics
    ///
    /// Panics if a `work` call returns a result vector whose length
    /// differs from its chunk, or if a worker thread panics.
    pub fn run_chunks<S, R, E>(
        &self,
        chunks: Vec<Chunk>,
        init: impl Fn(usize) -> S + Sync,
        work: impl Fn(&mut S, &Chunk) -> Result<Vec<R>, E> + Sync,
    ) -> Result<(Vec<R>, DispatchStats), E>
    where
        R: Send,
        E: Send,
    {
        let total_items: usize = chunks.iter().map(Chunk::len).sum();
        let workers = self.workers.min(chunks.len()).max(1);
        let mut stats = DispatchStats {
            items: 0,
            chunks: chunks.len() as u64,
            steals: 0,
            per_worker_items: vec![0; workers],
            per_worker_busy_ns: vec![0; workers],
            elapsed_ns: 0,
        };
        if chunks.is_empty() {
            return Ok((Vec::new(), stats));
        }

        let assignments = seed_assignments(&chunks, workers);
        let claimed: Vec<AtomicBool> = (0..chunks.len()).map(|_| AtomicBool::new(false)).collect();
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<E>> = Mutex::new(None);
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        let steals = AtomicU64::new(0);
        let worker_items: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let worker_busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let started = Instant::now();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let assignments = &assignments;
                let chunks = &chunks;
                let claimed = &claimed;
                let abort = &abort;
                let first_error = &first_error;
                let parts = &parts;
                let steals = &steals;
                let worker_items = &worker_items;
                let worker_busy = &worker_busy;
                let init = &init;
                let work = &work;
                let policy = self.policy;
                scope.spawn(move || {
                    let mut state = init(w);
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    let mut items = 0u64;
                    let mut busy = 0u64;
                    let mut execute = |id: usize, state: &mut S| {
                        let chunk = &chunks[id];
                        let t0 = Instant::now();
                        let outcome = work(state, chunk);
                        busy += t0.elapsed().as_nanos() as u64;
                        match outcome {
                            Ok(results) => {
                                assert_eq!(
                                    results.len(),
                                    chunk.len(),
                                    "work returned a wrong-sized chunk result"
                                );
                                items += results.len() as u64;
                                local.push((id, results));
                            }
                            Err(e) => {
                                // A poisoned error slot means another
                                // worker panicked; recover the slot —
                                // the abort flag still wins the race.
                                let mut slot =
                                    first_error.lock().unwrap_or_else(PoisonError::into_inner);
                                slot.get_or_insert(e);
                                abort.store(true, Ordering::Release);
                            }
                        }
                    };
                    // Own queue, front to back: preserves the seeded
                    // multiplicand-run locality.
                    for &id in &assignments[w] {
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        if !claimed[id].swap(true, Ordering::AcqRel) {
                            execute(id, &mut state);
                        }
                    }
                    // Steal from victims, back to front, until a full
                    // sweep finds nothing unclaimed.
                    if policy == StealPolicy::WorkStealing {
                        loop {
                            if abort.load(Ordering::Acquire) {
                                break;
                            }
                            let mut found = false;
                            for offset in 1..workers {
                                let victim = (w + offset) % workers;
                                for &id in assignments[victim].iter().rev() {
                                    if abort.load(Ordering::Acquire) {
                                        break;
                                    }
                                    if !claimed[id].swap(true, Ordering::AcqRel) {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        found = true;
                                        execute(id, &mut state);
                                    }
                                }
                            }
                            if !found {
                                break;
                            }
                        }
                    }
                    parts
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .append(&mut local);
                    worker_items[w].store(items, Ordering::Relaxed);
                    worker_busy[w].store(busy, Ordering::Relaxed);
                });
            }
        });

        stats.elapsed_ns = started.elapsed().as_nanos() as u64;
        if let Some(e) = first_error
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(e);
        }
        stats.steals = steals.into_inner();
        for (w, (i, b)) in worker_items.iter().zip(&worker_busy).enumerate() {
            stats.per_worker_items[w] = i.load(Ordering::Relaxed);
            stats.per_worker_busy_ns[w] = b.load(Ordering::Relaxed);
        }
        stats.items = stats.per_worker_items.iter().sum();

        let mut parts = parts.into_inner().unwrap_or_else(PoisonError::into_inner);
        parts.sort_unstable_by_key(|(id, _)| chunks[*id].range.start);
        let mut results = Vec::with_capacity(total_items);
        for (_, mut part) in parts {
            results.append(&mut part);
        }
        debug_assert_eq!(results.len(), total_items);
        Ok((results, stats))
    }

    /// Work-stealing parallel map over `items` independent tasks, with
    /// per-worker state. Convenience wrapper over [`Dispatcher::run_chunks`]
    /// with uniform chunking.
    ///
    /// # Errors
    ///
    /// Returns the first task error encountered.
    pub fn run_items<S, R, E>(
        &self,
        items: usize,
        init: impl Fn(usize) -> S + Sync,
        task: impl Fn(&mut S, usize) -> Result<R, E> + Sync,
    ) -> Result<(Vec<R>, DispatchStats), E>
    where
        R: Send,
        E: Send,
    {
        let target = self.chunk_size_for(items);
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while start < items {
            let end = (start + target).min(items);
            chunks.push(Chunk {
                range: start..end,
                cost: (end - start) as u64,
            });
            start = end;
        }
        self.run_chunks(chunks, init, |state, chunk| {
            chunk
                .range
                .clone()
                .map(|i| task(state, i))
                .collect::<Result<Vec<R>, E>>()
        })
    }

    /// Dispatches one batch over a single shared context (the pure
    /// functional engines are `Sync`, so every worker multiplies
    /// through the same preparation).
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    pub fn dispatch(
        &self,
        ctx: &dyn PreparedModMul,
        pairs: &[(UBig, UBig)],
    ) -> Result<(Vec<UBig>, DispatchStats), CoreError> {
        let chunks = plan_mul_chunks(pairs, self.chunk_size_for(pairs.len()));
        self.run_chunks(
            chunks,
            |_| (),
            |(), chunk| {
                ctx.mod_mul_batch(&pairs[chunk.range.clone()])
                    .map_err(CoreError::ModMul)
            },
        )
    }

    /// Dispatches one batch over per-worker shard contexts: worker `w`
    /// multiplies through `shards[w % shards.len()]`. This is the
    /// banked path — each shard is typically a modulus-loaded device or
    /// an independently prepared engine context.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the shards disagree on modulus.
    pub fn dispatch_sharded(
        &self,
        shards: &[Arc<dyn PreparedModMul>],
        pairs: &[(UBig, UBig)],
    ) -> Result<(Vec<UBig>, DispatchStats), CoreError> {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(
            shards.iter().all(|s| s.modulus() == shards[0].modulus()),
            "shards must share one modulus"
        );
        let chunks = plan_mul_chunks(pairs, self.chunk_size_for(pairs.len()));
        self.run_chunks(
            chunks,
            |w| Arc::clone(&shards[w % shards.len()]),
            |ctx, chunk| {
                ctx.mod_mul_batch(&pairs[chunk.range.clone()])
                    .map_err(CoreError::ModMul)
            },
        )
    }

    /// Dispatches a mixed-modulus batch: chunks never span a modulus
    /// boundary, and every worker resolves its chunk's modulus through
    /// the pool (so interleaved moduli still prepare each modulus only
    /// once). Results come back in job order.
    ///
    /// # Errors
    ///
    /// Propagates the first preparation or multiplication error.
    pub fn dispatch_jobs(
        &self,
        pool: &ContextPool,
        jobs: &[MulJob],
    ) -> Result<(Vec<UBig>, DispatchStats), CoreError> {
        let chunks = plan_job_chunks(jobs, self.chunk_size_for(jobs.len()));
        self.run_chunks(
            chunks,
            |_| (),
            |(), chunk| {
                let slice = &jobs[chunk.range.clone()];
                let first = slice.first().ok_or(CoreError::EmptyChunk)?;
                let ctx = pool.context(&first.modulus)?;
                let pairs: Vec<(UBig, UBig)> =
                    slice.iter().map(|j| (j.a.clone(), j.b.clone())).collect();
                ctx.mod_mul_batch(&pairs).map_err(CoreError::ModMul)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsram_modmul::{DirectEngine, ModMulEngine};

    fn pairs_with_multiplicands(bs: &[u64]) -> Vec<(UBig, UBig)> {
        bs.iter()
            .enumerate()
            .map(|(i, &b)| (UBig::from(i as u64 + 2), UBig::from(b)))
            .collect()
    }

    #[test]
    fn chunk_costs_charge_multiplicand_changes() {
        // Run of 4 sharing b=5, then 4 distinct multiplicands.
        let pairs = pairs_with_multiplicands(&[5, 5, 5, 5, 9, 11, 13, 17]);
        let chunks = plan_mul_chunks(&pairs, 4);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].cost, 4 + LUT_REFILL_COST);
        assert_eq!(chunks[1].cost, 4 + 4 * LUT_REFILL_COST);
    }

    #[test]
    fn least_loaded_seeding_balances_uneven_costs() {
        // One expensive chunk (all-distinct multiplicands) and three
        // cheap ones: round-robin over 2 workers puts the expensive
        // chunk plus a cheap one on worker 0 (cost 40+12 vs 12+12);
        // least-loaded pairs the expensive chunk with nothing else.
        let chunks = vec![
            Chunk {
                range: 0..4,
                cost: 40,
            },
            Chunk {
                range: 4..8,
                cost: 12,
            },
            Chunk {
                range: 8..12,
                cost: 12,
            },
            Chunk {
                range: 12..16,
                cost: 12,
            },
        ];
        let assignments = seed_assignments(&chunks, 2);
        let load = |ids: &[usize]| ids.iter().map(|&i| chunks[i].cost).sum::<u64>();
        assert_eq!(assignments[0], vec![0]);
        assert_eq!(assignments[1], vec![1, 2, 3]);
        assert_eq!(load(&assignments[0]), 40);
        assert_eq!(load(&assignments[1]), 36);
    }

    #[test]
    fn job_chunks_never_span_moduli() {
        let jobs: Vec<MulJob> = [(1u64, 2u64, 97u64), (3, 4, 97), (5, 6, 101), (7, 8, 97)]
            .iter()
            .map(|&(a, b, p)| MulJob::new(UBig::from(a), UBig::from(b), UBig::from(p)))
            .collect();
        let chunks = plan_job_chunks(&jobs, 64);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].range, 0..2);
        assert_eq!(chunks[1].range, 2..3);
        assert_eq!(chunks[2].range, 3..4);
    }

    #[test]
    fn dispatch_preserves_input_order() {
        let p = UBig::from(1_000_003u64);
        let ctx = DirectEngine::new().prepare(&p).unwrap();
        let pairs: Vec<(UBig, UBig)> = (0..37u64)
            .map(|i| (UBig::from(i * 7 + 1), UBig::from(i * 13 + 2)))
            .collect();
        for workers in [1usize, 2, 8] {
            let d = Dispatcher::new(workers).chunk_size(3);
            let (results, stats) = d.dispatch(ctx.as_ref(), &pairs).unwrap();
            for ((a, b), c) in pairs.iter().zip(&results) {
                assert_eq!(c, &(&(a * b) % &p), "workers={workers}");
            }
            assert_eq!(stats.items, 37);
            assert_eq!(stats.per_worker_items.iter().sum::<u64>(), 37);
        }
    }

    #[test]
    fn static_policy_reports_zero_steals() {
        let p = UBig::from(97u64);
        let ctx = DirectEngine::new().prepare(&p).unwrap();
        let pairs: Vec<(UBig, UBig)> = (0..16u64)
            .map(|i| (UBig::from(i), UBig::from(i + 1)))
            .collect();
        let d = Dispatcher::new(4).chunk_size(1).policy(StealPolicy::Static);
        let (results, stats) = d.dispatch(ctx.as_ref(), &pairs).unwrap();
        assert_eq!(results.len(), 16);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.chunks, 16);
    }

    #[test]
    fn empty_batch_is_fine() {
        let p = UBig::from(97u64);
        let ctx = DirectEngine::new().prepare(&p).unwrap();
        let (results, stats) = Dispatcher::new(4).dispatch(ctx.as_ref(), &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.items, 0);
        assert_eq!(stats.busy_speedup(), 1.0);
    }

    #[test]
    fn errors_surface_and_abort() {
        let d = Dispatcher::new(2).chunk_size(1);
        let err = d
            .run_items(8, |_| (), |(), i| if i == 5 { Err("boom") } else { Ok(i) })
            .unwrap_err();
        assert_eq!(err, "boom");
    }

    #[test]
    fn pool_caches_by_modulus() {
        let pool = ContextPool::for_engine_ctor(|| Box::new(DirectEngine::new()));
        let p1 = UBig::from(97u64);
        let p2 = UBig::from(101u64);
        let a = pool.context(&p1).unwrap();
        let b = pool.context(&p1).unwrap();
        let c = pool.context(&p2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same modulus must share one context");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.misses(), 2);
        assert_eq!(pool.hits(), 1);
        assert_eq!(
            a.mod_mul(&UBig::from(10u64), &UBig::from(10u64)).unwrap(),
            UBig::from(3u64)
        );
    }

    #[test]
    fn pool_rejects_unknown_engine_and_bad_modulus() {
        assert!(ContextPool::for_engine_name("no-such-engine").is_none());
        let pool = ContextPool::for_engine_name("montgomery").unwrap();
        assert_eq!(
            pool.context(&UBig::zero()).err(),
            Some(CoreError::ModMul(ModMulError::ZeroModulus))
        );
        assert_eq!(
            pool.context(&UBig::from(8u64)).err(),
            Some(CoreError::ModMul(ModMulError::EvenModulus))
        );
        assert!(pool.is_empty(), "failures are not cached");
    }

    #[test]
    fn bounded_pool_evicts_least_recently_used() {
        let pool = ContextPool::for_engine_ctor(|| Box::new(DirectEngine::new())).with_capacity(2);
        let (p1, p2, p3) = (UBig::from(97u64), UBig::from(101u64), UBig::from(103u64));
        let first = pool.context(&p1).unwrap();
        let _ = pool.context(&p2).unwrap();
        // Touch p1 so p2 becomes the LRU victim when p3 arrives.
        let _ = pool.context(&p1).unwrap();
        let _ = pool.context(&p3).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 1);
        assert_eq!(pool.capacity(), Some(2));
        // p1 survived (same Arc), p2 was dropped and re-prepares.
        let again = pool.context(&p1).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "p1 must still be cached");
        let misses_before = pool.misses();
        let _ = pool.context(&p2).unwrap();
        assert_eq!(pool.misses(), misses_before + 1, "p2 was evicted");
        // The evicted-then-reprepared context still multiplies correctly.
        assert_eq!(
            pool.context(&p2)
                .unwrap()
                .mod_mul(&UBig::from(10u64), &UBig::from(11u64))
                .unwrap(),
            UBig::from(110u64 % 101)
        );
    }

    #[test]
    fn unbounded_pool_never_evicts() {
        let pool = ContextPool::for_engine_ctor(|| Box::new(DirectEngine::new()));
        for i in 0..16u64 {
            let _ = pool.context(&UBig::from(101 + 2 * i)).unwrap();
        }
        assert_eq!(pool.len(), 16);
        assert_eq!(pool.evictions(), 0);
        assert_eq!(pool.capacity(), None);
    }

    #[test]
    fn busy_speedup_is_work_over_critical_path() {
        let stats = DispatchStats {
            per_worker_busy_ns: vec![100, 100, 200],
            ..Default::default()
        };
        assert!((stats.busy_speedup() - 2.0).abs() < 1e-9);
    }
}
