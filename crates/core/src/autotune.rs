//! Self-tuning engine selection: pick the fastest modmul path per
//! modulus the way a JIT picks a code path.
//!
//! The registry holds eight engines whose relative speed shifts with
//! bit-width, modulus parity, and batch shape, yet a classic
//! [`ContextPool`](crate::dispatch::ContextPool) is pinned to one engine
//! ctor chosen by the caller. This module makes the choice automatic:
//!
//! - [`EngineProfile`] — a measured `(bit_width, parity, engine)` →
//!   ns/mul table, serialisable to/from `results/engine_profile.json`
//!   with the vendored `serde_json` shim, so one process's calibration
//!   work is the next process's warm start.
//! - [`TunePolicy`] — `Pinned` (today's behaviour), `Profile` (consult
//!   the table, fall back to the engines' closed-form `CycleModel`
//!   ranking when cold), and `Race` (micro-race the candidates on a
//!   deterministic calibration batch at prepare time, amortization
//!   guarded, feeding measurements back into the profile).
//! - [`AutoTuner`] — the `Send + Sync` decision engine a pool plugs in
//!   via [`ContextPool::auto`](crate::dispatch::ContextPool::auto). It
//!   remembers every per-modulus decision independently of the pool's
//!   context cache, so LRU eviction never discards what was learned: a
//!   re-prepared modulus re-prepares the remembered winner and skips
//!   the race.
//!
//! Candidate enumeration respects parity constraints
//! ([`engine_candidates_for`]): the Montgomery family never races an
//! even modulus. The `direct` oracle is excluded from tuning — it
//! corresponds to no hardware design and instead supplies the expected
//! results every calibration pass is checked against.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use modsram_bigint::UBig;
use modsram_modmul::{
    engine_by_name, engine_candidates_for, engine_supports_modulus, modelled_cycles_by_name,
    ModMulError, PreparedModMul,
};
use serde_json::Value;

/// Timed repetitions per candidate in a calibration race; the best of
/// the repetitions is recorded, so one scheduling hiccup cannot crown
/// the wrong engine.
pub const RACE_REPS: usize = 2;

/// Default calibration batch size for [`TunePolicy::race`].
pub const DEFAULT_CALIB_PAIRS: usize = 32;

/// Default amortization budget for [`TunePolicy::race`]: the race is
/// skipped unless its multiplication count fits this many serving
/// multiplications.
pub const DEFAULT_REPAY_MULTS: u64 = 100_000;

/// Modulus parity — one axis of the profile key, because the candidate
/// set differs (Montgomery requires odd) and so do the winners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Parity {
    /// Odd modulus: every registry engine is a candidate.
    Odd,
    /// Even modulus: the Montgomery family is excluded.
    Even,
}

impl Parity {
    /// The parity of `p` (zero counts as even; preparation will reject
    /// it before parity ever matters).
    pub fn of(p: &UBig) -> Self {
        if p.is_even() {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// Stable lowercase label used in JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Parity::Odd => "odd",
            Parity::Even => "even",
        }
    }

    /// Parses [`Parity::label`] output.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "odd" => Some(Parity::Odd),
            "even" => Some(Parity::Even),
            _ => None,
        }
    }
}

/// One measured profile cell: the running-average ns per multiplication
/// observed for an engine at a `(bit_width, parity)` point, plus the
/// engine's modelled cycles there for model-vs-measurement comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSample {
    /// Running-average wall nanoseconds per multiplication.
    pub ns_per_mul: f64,
    /// Closed-form `CycleModel` cycles at this width (`None` for
    /// engines with no hardware model).
    pub modelled_cycles: Option<u64>,
    /// Number of calibration measurements averaged in.
    pub samples: u64,
}

/// The measured `(bit_width, parity, engine)` → ns/mul table.
///
/// Deterministically ordered (`BTreeMap`) so serialisation and best-of
/// lookups are stable across runs — the `Profile` policy with a fixed
/// table always picks the same engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineProfile {
    entries: BTreeMap<(usize, Parity, String), ProfileSample>,
}

impl EngineProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of measured cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been measured or loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds one measurement into the running average for
    /// `(bits, parity, engine)`.
    pub fn record(&mut self, bits: usize, parity: Parity, engine: &str, ns_per_mul: f64) {
        let cell = self
            .entries
            .entry((bits, parity, engine.to_string()))
            .or_insert(ProfileSample {
                ns_per_mul: 0.0,
                modelled_cycles: modelled_cycles_by_name(engine, bits),
                samples: 0,
            });
        let n = cell.samples as f64;
        cell.ns_per_mul = (cell.ns_per_mul * n + ns_per_mul) / (n + 1.0);
        cell.samples += 1;
    }

    /// The measured cell for `(bits, parity, engine)`, if any.
    pub fn sample(&self, bits: usize, parity: Parity, engine: &str) -> Option<&ProfileSample> {
        self.entries.get(&(bits, parity, engine.to_string()))
    }

    /// `true` when every candidate has a measurement at
    /// `(bits, parity)` — the point where racing stops paying.
    pub fn covers_all(&self, bits: usize, parity: Parity, candidates: &[&str]) -> bool {
        candidates
            .iter()
            .all(|c| self.sample(bits, parity, c).is_some())
    }

    /// The measured-fastest candidate at `(bits, parity)`, or `None`
    /// when no candidate has a measurement. Ties keep the earlier
    /// candidate, so the answer is deterministic for a fixed table.
    pub fn best(&self, bits: usize, parity: Parity, candidates: &[&str]) -> Option<String> {
        let mut best: Option<(&str, f64)> = None;
        for c in candidates {
            if let Some(cell) = self.sample(bits, parity, c) {
                if best.is_none_or(|(_, ns)| cell.ns_per_mul < ns) {
                    best = Some((c, cell.ns_per_mul));
                }
            }
        }
        best.map(|(name, _)| name.to_string())
    }

    /// Serialises the table as a `serde_json` shim [`Value`].
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|((bits, parity, engine), cell)| {
                Value::Object(vec![
                    ("bits".to_string(), Value::Int(*bits as i128)),
                    (
                        "parity".to_string(),
                        Value::String(parity.label().to_string()),
                    ),
                    ("engine".to_string(), Value::String(engine.clone())),
                    ("ns_per_mul".to_string(), Value::Float(cell.ns_per_mul)),
                    (
                        "modelled_cycles".to_string(),
                        match cell.modelled_cycles {
                            Some(c) => Value::Int(c as i128),
                            None => Value::Null,
                        },
                    ),
                    ("samples".to_string(), Value::Int(cell.samples as i128)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("modsram-engine-profile/v1".to_string()),
            ),
            ("entries".to_string(), Value::Array(entries)),
        ])
    }

    /// Rebuilds a profile from [`EngineProfile::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let entries = value
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("profile document has no `entries` array")?;
        let mut profile = EngineProfile::new();
        for (i, entry) in entries.iter().enumerate() {
            let field = |name: &str| {
                entry
                    .get(name)
                    .ok_or_else(|| format!("entry {i} is missing `{name}`"))
            };
            let bits = field("bits")?
                .as_u64()
                .ok_or_else(|| format!("entry {i}: `bits` is not an integer"))?
                as usize;
            let parity = field("parity")?
                .as_str()
                .and_then(Parity::from_label)
                .ok_or_else(|| format!("entry {i}: `parity` is not odd/even"))?;
            let engine = field("engine")?
                .as_str()
                .ok_or_else(|| format!("entry {i}: `engine` is not a string"))?
                .to_string();
            let ns_per_mul = field("ns_per_mul")?
                .as_f64()
                .ok_or_else(|| format!("entry {i}: `ns_per_mul` is not a number"))?;
            let samples = entry.get("samples").and_then(Value::as_u64).unwrap_or(1);
            let modelled_cycles = entry.get("modelled_cycles").and_then(Value::as_u64);
            profile.entries.insert(
                (bits, parity, engine),
                ProfileSample {
                    ns_per_mul,
                    modelled_cycles,
                    samples: samples.max(1),
                },
            );
        }
        Ok(profile)
    }

    /// Writes the profile to `path` as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let text = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }

    /// Reads a profile previously written by [`EngineProfile::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON or a malformed
    /// table maps to [`io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let value = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Self::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// How an autotuning pool decides which engine serves a modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunePolicy {
    /// Always the named registry engine — today's pinned behaviour,
    /// expressed through the same machinery so stats stay comparable.
    Pinned(String),
    /// Consult the profile table; when the `(bits, parity)` point is
    /// cold, fall back to the engines' closed-form `CycleModel`
    /// ranking. Never spends time measuring.
    Profile,
    /// Micro-race the parity-legal candidates on a deterministic
    /// calibration batch at prepare time, and feed the measurements
    /// back into the profile so later moduli at the same
    /// `(bits, parity)` skip the race.
    Race {
        /// Calibration `(a, b)` pairs per candidate per repetition.
        calib_pairs: usize,
        /// Amortization guard: skip the race (falling back to the
        /// `Profile` decision path) unless the race's total
        /// multiplication count — `candidates × calib_pairs ×`
        /// [`RACE_REPS`] — fits within this many serving
        /// multiplications.
        repay_mults: u64,
    },
}

impl TunePolicy {
    /// A `Pinned` policy for the named engine.
    pub fn pinned(name: impl Into<String>) -> Self {
        TunePolicy::Pinned(name.into())
    }

    /// A `Race` policy with the default calibration size and
    /// amortization budget.
    pub fn race() -> Self {
        TunePolicy::Race {
            calib_pairs: DEFAULT_CALIB_PAIRS,
            repay_mults: DEFAULT_REPAY_MULTS,
        }
    }

    /// Stable label used in stats and artifacts.
    pub fn label(&self) -> String {
        match self {
            TunePolicy::Pinned(name) => format!("pinned:{name}"),
            TunePolicy::Profile => "profile".to_string(),
            TunePolicy::Race { .. } => "race".to_string(),
        }
    }
}

/// A point-in-time snapshot of an [`AutoTuner`]'s counters, surfaced
/// through `ServiceStats`/`ClusterStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AutotuneStats {
    /// Active policy label ([`TunePolicy::label`]).
    pub policy: String,
    /// Distinct moduli with a committed engine choice.
    pub tuned_moduli: u64,
    /// Calibration races actually run.
    pub races_run: u64,
    /// Races skipped by the amortization guard.
    pub races_skipped: u64,
    /// Total wall nanoseconds spent in calibration races.
    pub calibration_ns: u64,
    /// Pool evictions that hit a tuned modulus (the learned choice
    /// survived; only the prepared context was dropped).
    pub evicted_tuned: u64,
    /// Committed choices later moved by production-traffic evidence
    /// ([`AutoTuner::adopt_choice`]).
    pub refinements: u64,
    /// Per-engine win counters, sorted by engine name.
    pub engine_wins: Vec<(String, u64)>,
}

impl AutotuneStats {
    /// Folds another tuner's counters into this snapshot — used by
    /// cluster aggregation when tiles run *distinct* tuners. Policies
    /// that differ collapse to `"mixed"`.
    pub fn merge(&mut self, other: &AutotuneStats) {
        if self.policy != other.policy {
            self.policy = "mixed".to_string();
        }
        self.tuned_moduli += other.tuned_moduli;
        self.races_run += other.races_run;
        self.races_skipped += other.races_skipped;
        self.calibration_ns += other.calibration_ns;
        self.evicted_tuned += other.evicted_tuned;
        self.refinements += other.refinements;
        let mut wins: BTreeMap<String, u64> = self.engine_wins.drain(..).collect();
        for (engine, n) in &other.engine_wins {
            *wins.entry(engine.clone()).or_insert(0) += n;
        }
        self.engine_wins = wins.into_iter().collect();
    }
}

/// The `Send + Sync` decision engine behind
/// [`ContextPool::auto`](crate::dispatch::ContextPool::auto).
///
/// Per-modulus decisions live in the tuner, not the pool cache, so a
/// capacity-bounded pool can evict and re-prepare a modulus without
/// ever re-racing it. One tuner may back several pools — a
/// `ServiceCluster` shares a single tuner across its tiles so every
/// tile benefits from every tile's calibration.
pub struct AutoTuner {
    policy: TunePolicy,
    profile: Mutex<EngineProfile>,
    chosen: Mutex<HashMap<UBig, String>>,
    wins: Mutex<BTreeMap<String, u64>>,
    races_run: AtomicU64,
    races_skipped: AtomicU64,
    calibration_ns: AtomicU64,
    evicted_tuned: AtomicU64,
    refinements: AtomicU64,
}

impl std::fmt::Debug for AutoTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "AutoTuner {{ policy: {}, tuned_moduli: {}, races_run: {}, races_skipped: {} }}",
            stats.policy, stats.tuned_moduli, stats.races_run, stats.races_skipped
        )
    }
}

impl AutoTuner {
    /// A tuner with an empty (cold) profile.
    pub fn new(policy: TunePolicy) -> Self {
        Self::with_profile(policy, EngineProfile::new())
    }

    /// A tuner warm-started from an existing profile table (e.g. loaded
    /// from `results/engine_profile.json`).
    pub fn with_profile(policy: TunePolicy, profile: EngineProfile) -> Self {
        AutoTuner {
            policy,
            profile: Mutex::new(profile),
            chosen: Mutex::new(HashMap::new()),
            wins: Mutex::new(BTreeMap::new()),
            races_run: AtomicU64::new(0),
            races_skipped: AtomicU64::new(0),
            calibration_ns: AtomicU64::new(0),
            evicted_tuned: AtomicU64::new(0),
            refinements: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &TunePolicy {
        &self.policy
    }

    /// The engines eligible to serve `p`: the parity-legal registry
    /// candidates minus the `direct` oracle, which corresponds to no
    /// hardware design and is reserved for checking results.
    pub fn tunable_candidates(p: &UBig) -> Vec<&'static str> {
        engine_candidates_for(p)
            .into_iter()
            .filter(|n| *n != "direct")
            .collect()
    }

    /// The candidate with the cheapest closed-form `CycleModel` at
    /// `bits` (ties keep the earlier candidate; engines with no model
    /// never win). This is the cold-table fallback.
    pub fn model_rank(bits: usize, candidates: &[&str]) -> Option<String> {
        candidates
            .iter()
            .min_by_key(|n| modelled_cycles_by_name(n, bits).unwrap_or(u64::MAX))
            .map(|n| n.to_string())
    }

    /// The engine already committed for `p`, if any.
    pub fn chosen_engine(&self, p: &UBig) -> Option<String> {
        self.chosen
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(p)
            .cloned()
    }

    /// A snapshot of the current profile table.
    pub fn profile_snapshot(&self) -> EngineProfile {
        self.profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Counter snapshot for `ServiceStats`/`ClusterStats`.
    pub fn stats(&self) -> AutotuneStats {
        AutotuneStats {
            policy: self.policy.label(),
            tuned_moduli: self
                .chosen
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
            races_run: self.races_run.load(Ordering::Relaxed),
            races_skipped: self.races_skipped.load(Ordering::Relaxed),
            calibration_ns: self.calibration_ns.load(Ordering::Relaxed),
            evicted_tuned: self.evicted_tuned.load(Ordering::Relaxed),
            refinements: self.refinements.load(Ordering::Relaxed),
            engine_wins: self
                .wins
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Called by a capacity-bounded pool when it evicts `p`'s context.
    /// The learned choice is deliberately kept — only the counter
    /// moves, so the eviction is visible in stats.
    pub fn note_eviction(&self, p: &UBig) {
        if self
            .chosen
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(p)
        {
            self.evicted_tuned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Feeds a production-measured data point into the profile table
    /// (running average with the calibration samples), so
    /// `TunePolicy::Profile` ranks future cold shapes on real traffic,
    /// not just the small calibration batches.
    pub fn observe(&self, p: &UBig, engine: &str, ns_per_mul: f64) {
        self.profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(p.bit_len(), Parity::of(p), engine, ns_per_mul);
    }

    /// Moves the committed choice for `p` to `engine` — the
    /// continuous-tuning hook. A calibration race decides on a small
    /// batch; when production-shaped traffic measures a different
    /// winner (near-tied engines flip with batch shape), the caller
    /// reports the evidence and the tuner follows it. Returns `false`
    /// without changing anything under `Pinned` or for an engine that
    /// cannot serve `p`'s parity; re-adopting the current choice
    /// returns `true` without counting a refinement.
    pub fn adopt_choice(&self, p: &UBig, engine: &str) -> bool {
        if matches!(self.policy, TunePolicy::Pinned(_)) || !engine_supports_modulus(engine, p) {
            return false;
        }
        let mut chosen = self.chosen.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = chosen.insert(p.clone(), engine.to_string());
        if prev.as_deref() == Some(engine) {
            return true;
        }
        let mut wins = self.wins.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(prev) = prev {
            if let Some(n) = wins.get_mut(&prev) {
                *n = n.saturating_sub(1);
            }
        }
        *wins.entry(engine.to_string()).or_insert(0) += 1;
        self.refinements.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Decides (or recalls) the engine for `p` and prepares its
    /// context. This is the preparer an autotuning pool installs.
    ///
    /// # Errors
    ///
    /// Propagates preparation errors; a calibration result that
    /// disagrees with the `direct` oracle maps to
    /// [`ModMulError::Backend`].
    pub fn prepare(&self, p: &UBig) -> Result<Box<dyn PreparedModMul>, ModMulError> {
        if let Some(name) = self.chosen_engine(p) {
            // Eviction survivor: re-prepare the remembered winner, no
            // new race, no new win counted.
            return prepare_named(&name, p);
        }
        let (name, ctx) = match &self.policy {
            TunePolicy::Pinned(name) => (name.clone(), prepare_named(name, p)?),
            TunePolicy::Profile => {
                let name = self.table_choice(p)?;
                let ctx = prepare_named(&name, p)?;
                (name, ctx)
            }
            TunePolicy::Race {
                calib_pairs,
                repay_mults,
            } => self.race_or_table(p, *calib_pairs, *repay_mults)?,
        };
        self.commit_choice(p, &name);
        Ok(ctx)
    }

    /// The `Profile` decision path: measured best, else model ranking.
    fn table_choice(&self, p: &UBig) -> Result<String, ModMulError> {
        let candidates = Self::tunable_candidates(p);
        let bits = p.bit_len();
        let parity = Parity::of(p);
        let table_best = self
            .profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .best(bits, parity, &candidates);
        table_best
            .or_else(|| Self::model_rank(bits, &candidates))
            .ok_or_else(|| ModMulError::Backend {
                reason: format!("no candidate engine for modulus of {bits} bits"),
            })
    }

    /// The `Race` decision path: race when the table is cold at
    /// `(bits, parity)` and the amortization guard allows it; otherwise
    /// fall back to the `Profile` path.
    fn race_or_table(
        &self,
        p: &UBig,
        calib_pairs: usize,
        repay_mults: u64,
    ) -> Result<(String, Box<dyn PreparedModMul>), ModMulError> {
        let candidates = Self::tunable_candidates(p);
        let bits = p.bit_len();
        let parity = Parity::of(p);
        let warm = self
            .profile
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .covers_all(bits, parity, &candidates);
        let race_mults = (candidates.len() * calib_pairs.max(1) * RACE_REPS) as u64;
        if warm || race_mults > repay_mults {
            if !warm {
                self.races_skipped.fetch_add(1, Ordering::Relaxed);
            }
            let name = self.table_choice(p)?;
            let ctx = prepare_named(&name, p)?;
            return Ok((name, ctx));
        }
        self.race(p, calib_pairs.max(1), &candidates)
    }

    /// Runs the calibration race: every candidate executes the same
    /// deterministic batch, every result is checked against the
    /// `direct` oracle, best-of-[`RACE_REPS`] ns/mul is folded into the
    /// profile, and the fastest candidate's context is returned.
    fn race(
        &self,
        p: &UBig,
        calib_pairs: usize,
        candidates: &[&str],
    ) -> Result<(String, Box<dyn PreparedModMul>), ModMulError> {
        let race_start = Instant::now();
        let pairs = calibration_pairs(p, calib_pairs);
        let expected: Vec<UBig> = pairs.iter().map(|(a, b)| &(a * b) % p).collect();
        let mut winner: Option<(String, Box<dyn PreparedModMul>, f64)> = None;
        for name in candidates {
            let ctx = prepare_named(name, p)?;
            let mut best_ns = f64::INFINITY;
            for _ in 0..RACE_REPS {
                let t0 = Instant::now();
                let out = ctx.mod_mul_batch(&pairs)?;
                let elapsed = t0.elapsed().as_nanos() as f64;
                if out != expected {
                    return Err(ModMulError::Backend {
                        reason: format!(
                            "calibration oracle mismatch: engine '{name}' disagrees with direct"
                        ),
                    });
                }
                best_ns = best_ns.min(elapsed);
            }
            let ns_per_mul = best_ns / pairs.len() as f64;
            self.profile
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(p.bit_len(), Parity::of(p), name, ns_per_mul);
            let beats = winner.as_ref().is_none_or(|(_, _, ns)| ns_per_mul < *ns);
            if beats {
                winner = Some((name.to_string(), ctx, ns_per_mul));
            }
        }
        self.races_run.fetch_add(1, Ordering::Relaxed);
        self.calibration_ns
            .fetch_add(race_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let (name, ctx, _) = winner.ok_or_else(|| ModMulError::Backend {
            reason: "calibration race had no candidates".to_string(),
        })?;
        Ok((name, ctx))
    }

    /// Records the first decision for `p`; concurrent racers agree on
    /// whoever commits first, and the win counter moves exactly once
    /// per modulus.
    fn commit_choice(&self, p: &UBig, name: &str) {
        let mut chosen = self.chosen.lock().unwrap_or_else(PoisonError::into_inner);
        if chosen.contains_key(p) {
            return;
        }
        chosen.insert(p.clone(), name.to_string());
        drop(chosen);
        *self
            .wins
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_insert(0) += 1;
    }
}

/// Prepares the named registry engine for `p`.
fn prepare_named(name: &str, p: &UBig) -> Result<Box<dyn PreparedModMul>, ModMulError> {
    engine_by_name(name)
        .ok_or_else(|| ModMulError::Backend {
            reason: format!("unknown engine '{name}'"),
        })?
        .prepare(p)
}

/// The deterministic calibration batch for `p`: operands are seeded
/// from the modulus limbs (same modulus → same batch, no RNG state),
/// reduced mod `p`, with multiplicand-reuse runs of 8 mirroring the
/// coalesced traffic the batcher produces — so LUT-refill-sensitive
/// engines are measured on representative traffic.
pub fn calibration_pairs(p: &UBig, count: usize) -> Vec<(UBig, UBig)> {
    let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (p.bit_len() as u64);
    for &limb in p.limbs() {
        seed = seed
            .rotate_left(7)
            .wrapping_add(limb.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    }
    if seed == 0 {
        seed = 1;
    }
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let limb_count = p.limbs().len().max(1);
    let below_p = |next: &mut dyn FnMut() -> u64| {
        let limbs: Vec<u64> = (0..limb_count).map(|_| next()).collect();
        &UBig::from_limbs(limbs) % p
    };
    let mut pairs = Vec::with_capacity(count);
    let mut b = below_p(&mut next);
    for i in 0..count {
        if i % 8 == 0 {
            b = below_p(&mut next);
        }
        let a = below_p(&mut next);
        pairs.push((a, b.clone()));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn odd_modulus() -> UBig {
        UBig::from(0xffff_ffff_ffff_ffc5u64) // largest 64-bit prime
    }

    #[test]
    fn parity_candidates_respect_montgomery() {
        let odd = AutoTuner::tunable_candidates(&odd_modulus());
        assert!(odd.contains(&"montgomery"));
        assert!(!odd.contains(&"direct"));
        let even = AutoTuner::tunable_candidates(&UBig::from(0xffff_ffff_ffff_ffc4u64));
        assert!(!even.contains(&"montgomery"));
        assert!(even.contains(&"barrett"));
    }

    #[test]
    fn model_rank_never_picks_unmodelled() {
        let name = AutoTuner::model_rank(256, &["direct", "barrett"]).unwrap();
        assert_eq!(name, "barrett");
    }

    #[test]
    fn calibration_batch_is_deterministic_and_reduced() {
        let p = odd_modulus();
        let a = calibration_pairs(&p, 24);
        let b = calibration_pairs(&p, 24);
        assert_eq!(a, b);
        assert!(a.iter().all(|(x, y)| *x < p && *y < p));
        // Multiplicand reuse runs of 8.
        assert_eq!(a[0].1, a[7].1);
        assert_ne!(a[0].1, a[8].1);
    }

    #[test]
    fn race_commits_once_and_survives_eviction() {
        let tuner = AutoTuner::new(TunePolicy::Race {
            calib_pairs: 8,
            repay_mults: 1_000_000,
        });
        let p = odd_modulus();
        tuner.prepare(&p).unwrap();
        let first = tuner.chosen_engine(&p).unwrap();
        let races = tuner.stats().races_run;
        assert_eq!(races, 1);
        tuner.note_eviction(&p);
        tuner.prepare(&p).unwrap();
        assert_eq!(
            tuner.stats().races_run,
            races,
            "re-prepare must not re-race"
        );
        assert_eq!(tuner.chosen_engine(&p).unwrap(), first);
        assert_eq!(tuner.stats().evicted_tuned, 1);
        assert_eq!(tuner.stats().tuned_moduli, 1);
    }

    #[test]
    fn amortization_guard_skips_unaffordable_races() {
        let tuner = AutoTuner::new(TunePolicy::Race {
            calib_pairs: 64,
            repay_mults: 10, // race would cost far more than 10 mults
        });
        let p = odd_modulus();
        tuner.prepare(&p).unwrap();
        let stats = tuner.stats();
        assert_eq!(stats.races_run, 0);
        assert_eq!(stats.races_skipped, 1);
        // Cold table + skipped race → model ranking (Barrett's 3w²+2
        // is the cheapest closed form at every width).
        assert_eq!(tuner.chosen_engine(&p).unwrap(), "barrett");
    }

    #[test]
    fn race_warms_into_profile_for_same_shape() {
        let tuner = AutoTuner::new(TunePolicy::Race {
            calib_pairs: 8,
            repay_mults: 1_000_000,
        });
        let p1 = odd_modulus();
        let p2 = UBig::from(0xffff_ffff_ffff_ff71u64); // odd, same bit width
        assert_eq!(p1.bit_len(), p2.bit_len());
        tuner.prepare(&p1).unwrap();
        assert_eq!(tuner.stats().races_run, 1);
        tuner.prepare(&p2).unwrap();
        assert_eq!(
            tuner.stats().races_run,
            1,
            "second modulus at a measured (bits, parity) must reuse the table"
        );
        assert_eq!(tuner.stats().tuned_moduli, 2);
    }

    #[test]
    fn profile_json_round_trips() {
        let mut profile = EngineProfile::new();
        profile.record(256, Parity::Odd, "montgomery", 812.5);
        profile.record(256, Parity::Odd, "montgomery", 787.5); // running average
        profile.record(64, Parity::Even, "carryfree", 91.0);
        let round = EngineProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(round, profile);
        let cell = round.sample(256, Parity::Odd, "montgomery").unwrap();
        assert_eq!(cell.samples, 2);
        assert!((cell.ns_per_mul - 800.0).abs() < 1e-9);
    }

    #[test]
    fn profile_best_is_deterministic() {
        let mut profile = EngineProfile::new();
        profile.record(256, Parity::Odd, "montgomery", 100.0);
        profile.record(256, Parity::Odd, "barrett", 100.0); // exact tie
        profile.record(256, Parity::Odd, "r4csa-lut", 250.0);
        let candidates = ["barrett", "montgomery", "r4csa-lut"];
        for _ in 0..4 {
            assert_eq!(
                profile.best(256, Parity::Odd, &candidates).unwrap(),
                "barrett",
                "ties keep the earlier candidate"
            );
        }
    }

    #[test]
    fn pinned_policy_counts_wins() {
        let tuner = AutoTuner::new(TunePolicy::pinned("r4csa-lut"));
        tuner.prepare(&odd_modulus()).unwrap();
        let stats = tuner.stats();
        assert_eq!(stats.engine_wins, vec![("r4csa-lut".to_string(), 1)]);
        assert_eq!(stats.policy, "pinned:r4csa-lut");
    }

    #[test]
    fn oracle_check_runs_on_every_calibration() {
        // An even modulus exercises the reduced candidate set end to
        // end; the race must still agree with direct everywhere.
        let tuner = AutoTuner::new(TunePolicy::race());
        let p = UBig::from(0xffff_ffff_ffff_ffc4u64);
        let ctx = tuner.prepare(&p).unwrap();
        let pairs = calibration_pairs(&p, 8);
        for (a, b) in &pairs {
            assert_eq!(ctx.mod_mul(a, b).unwrap(), &(a * b) % &p);
        }
        assert!(!tuner
            .chosen_engine(&p)
            .unwrap()
            .eq_ignore_ascii_case("montgomery"));
    }
}
