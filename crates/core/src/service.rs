//! The streaming front-end of the serving stack: a [`ModSramService`]
//! accepts individual [`MulJob`]s from any number of threads and keeps
//! the dispatch layer saturated without callers ever staging a batch.
//!
//! The ROADMAP's staged path ([`Dispatcher::dispatch_jobs`]) forces
//! every consumer to materialise a `Vec<MulJob>` before anything runs —
//! fine for a solver that owns its whole workload, wrong for a server
//! multiplexing ECDSA verifications, Pedersen commitments, and NTT
//! stages from independent tenants. The service closes that gap with
//! three pieces:
//!
//! * **Submission handles** — [`ModSramService::handle`] returns a
//!   cloneable [`SubmitHandle`]; [`SubmitHandle::submit`] enqueues one
//!   job and returns a [`Ticket`] redeemable for the product
//!   (blocking [`Ticket::wait`] or non-blocking [`Ticket::try_poll`]).
//! * **Backpressure** — the queue is bounded
//!   ([`ServiceConfig::queue_capacity`]). `submit` blocks until space
//!   frees; [`SubmitHandle::try_submit`] refuses immediately with
//!   [`SubmitError::QueueFull`] so open-loop producers can shed load.
//! * **A coalescing batcher** — a dedicated thread drains the queue
//!   into batches of at most [`ServiceConfig::max_batch`] jobs,
//!   waiting at most [`ServiceConfig::flush_interval`] for stragglers,
//!   sorts each batch **multiplicand-major** (modulus-major, then by
//!   `b`) so the paper's Table 1b reuse survives interleaved tenants,
//!   and executes it through the existing [`Dispatcher`] over a shared
//!   [`ContextPool`]. Results are routed back to tickets in
//!   submission order regardless of the coalesced execution order.
//!
//! [`ModSramService::shutdown`] closes the queue, lets the batcher
//! drain every in-flight ticket, and returns the final
//! [`ServiceStats`] (queue depth, coalesce sizes, and p50/p99 latency
//! in both wall-clock nanoseconds and modelled device cycles).
//!
//! # Examples
//!
//! ```
//! use modsram_bigint::UBig;
//! use modsram_core::service::{ModSramService, ServiceConfig};
//! use modsram_core::dispatch::MulJob;
//!
//! let service = ModSramService::for_engine_name(
//!     "montgomery",
//!     ServiceConfig::default(),
//! ).unwrap();
//! let handle = service.handle();
//! let ticket = handle
//!     .submit(MulJob::new(UBig::from(55u64), UBig::from(44u64), UBig::from(97u64)))
//!     .unwrap();
//! assert_eq!(ticket.wait().unwrap(), UBig::from(55u64 * 44 % 97));
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modsram_bigint::UBig;
use modsram_modmul::{ModMulError, PreparedModMul};

use crate::autotune::{AutotuneStats, TunePolicy};
use crate::cluster::ServiceCluster;
use crate::dispatch::{ContextPool, Dispatcher, MulJob, StealPolicy};
use crate::error::CoreError;
use crate::modsram::ModSramConfig;

// The modelled-cycle constants and formulas were defined here before
// `crate::cycles` became their shared home; the re-export keeps every
// historical `service::modelled_*` path compiling.
pub use crate::cycles::{modelled_batch_cycles, modelled_mul_cycles, MODELLED_REFILL_CYCLES};

/// Tuning knobs of a [`ModSramService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Dispatcher workers executing each coalesced batch.
    pub workers: usize,
    /// Bound on queued-but-not-yet-drained jobs: `submit` blocks and
    /// `try_submit` returns [`SubmitError::QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Coalescing size trigger: a batch is dispatched as soon as this
    /// many jobs have been drained.
    pub max_batch: usize,
    /// Coalescing time trigger: after the first job of a batch is
    /// drained, the batcher waits at most this long for more before
    /// flushing a short batch. `Duration::ZERO` flushes immediately
    /// with whatever the queue held.
    pub flush_interval: Duration,
    /// Optional dispatcher chunk-size override (defaults to the
    /// dispatcher's automatic sizing).
    pub chunk_size: Option<usize>,
    /// Steal policy for batch execution.
    pub policy: StealPolicy,
    /// Executor threads pipelining coalesced batches: while one batch
    /// executes, the next is already being sorted and planned. `1`
    /// serialises batches (deterministic batch order; lowest thread
    /// count); the default of 2 overlaps bookkeeping with execution,
    /// which closed-loop throughput needs to track staged dispatch.
    pub pipeline_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 1024,
            max_batch: 512,
            flush_interval: Duration::from_micros(100),
            chunk_size: None,
            policy: StealPolicy::WorkStealing,
            pipeline_depth: 2,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full ([`SubmitHandle::try_submit`] only —
    /// the blocking [`SubmitHandle::submit`] waits instead).
    QueueFull,
    /// The service has shut down; no further jobs are accepted.
    Stopped,
    /// Admissions are paused ([`ModSramService::pause_admissions`]) —
    /// the tile is draining or on probation. Already-queued jobs keep
    /// executing; new ones are refused without blocking, so a cluster
    /// router can re-route them instead of wedging a producer on a
    /// tile that will never admit again this epoch.
    Paused,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is full"),
            SubmitError::Stopped => write!(f, "service has shut down"),
            SubmitError::Paused => write!(f, "service admissions are paused"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted job ultimately failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The service stopped before the job completed: an executor
    /// thread panicked mid-batch (its unwind guard fails the batch's
    /// remaining tickets rather than leaving waiters hung). A graceful
    /// [`ModSramService::shutdown`] never produces this — it drains.
    Stopped,
    /// The execution layer rejected the job (bad modulus for the
    /// configured engine, poisoned pool, …).
    Mul(CoreError),
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::Stopped => write!(f, "service stopped before the job ran"),
            ServiceError::Mul(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for CoreError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Stopped => CoreError::ServiceStopped,
            ServiceError::Mul(core) => core,
        }
    }
}

/// One ticket's completion slot.
struct TicketState {
    slot: Mutex<Option<Result<UBig, ServiceError>>>,
    ready: Condvar,
}

impl TicketState {
    fn new() -> Arc<Self> {
        Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Delivers a result if none has been delivered yet; returns
    /// whether this call won the slot (later calls are no-ops, which
    /// makes the executor's panic guard idempotent with normal
    /// delivery).
    fn complete(&self, result: Result<UBig, ServiceError>) -> bool {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let won = slot.is_none();
        if won {
            *slot = Some(result);
        }
        self.ready.notify_all();
        won
    }
}

/// A claim on one submitted job's eventual product.
///
/// Redeem with [`Ticket::wait`] (blocking) or poll with
/// [`Ticket::try_poll`]; both may be called repeatedly and from the
/// thread of your choice.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl core::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Ticket {{ done: {} }}", self.is_done())
    }
}

impl Ticket {
    /// Blocks until the job completes and returns its result.
    pub fn wait(&self) -> Result<UBig, ServiceError> {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the job completes or `timeout` elapses.
    ///
    /// Returns `None` on timeout — the ticket is still live and may be
    /// waited on again (connection handlers use this to bound how long
    /// a writer thread parks on one response without abandoning it).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<UBig, ServiceError>> {
        self.wait_deadline(Instant::now() + timeout)
    }

    /// Like [`Ticket::wait_timeout`], but against an absolute deadline:
    /// a `try_poll` loop that parks on the completion condvar between
    /// polls, so callers iterating many tickets toward one shared
    /// deadline don't accumulate per-ticket timeout drift.
    pub fn wait_deadline(&self, deadline: Instant) -> Option<Result<UBig, ServiceError>> {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())?;
            let (guard, timed_out) = self
                .state
                .ready
                .wait_timeout(slot, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
            if timed_out.timed_out() && slot.is_none() {
                return None;
            }
        }
    }

    /// Returns the result if the job has completed, `None` while it is
    /// still queued or executing.
    pub fn try_poll(&self) -> Option<Result<UBig, ServiceError>> {
        self.state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// `true` once a result (success or failure) is available.
    pub fn is_done(&self) -> bool {
        self.try_poll().is_some()
    }
}

/// One accepted job waiting in the queue.
struct Queued {
    job: MulJob,
    ticket: Arc<TicketState>,
    submitted: Instant,
}

/// Queue state guarded by the service mutex.
struct QueueInner {
    jobs: VecDeque<Queued>,
    closed: bool,
    /// Admissions paused (drain/probation seam): submissions are
    /// refused with [`SubmitError::Paused`] while queued jobs keep
    /// draining. Unlike `closed`, this is reversible.
    paused: bool,
}

/// Fixed-size reservoir sample of `u64` observations with a
/// deterministic xorshift replacement stream — bounded memory no matter
/// how long the service runs, unbiased enough for p50/p99 reporting.
struct Reservoir {
    cap: usize,
    seen: u64,
    rng: u64,
    samples: Vec<u64>,
}

impl Reservoir {
    fn new(cap: usize) -> Self {
        Reservoir {
            cap: cap.max(1),
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            samples: Vec::new(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, no external RNG dependency.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn push(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            let j = self.next_rand() % self.seen;
            if let Some(slot) = self.samples.get_mut(j as usize) {
                *slot = v;
            }
        }
    }

    /// Forgets every observation (the sample and the seen-count); the
    /// replacement stream keeps its position so refilled windows stay
    /// deterministic per service lifetime.
    fn clear(&mut self) {
        self.seen = 0;
        self.samples.clear();
    }

    /// Nearest-rank percentile over the sample (`q` in `[0, 1]`); 0
    /// when nothing has been observed.
    fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted.get(rank).copied().unwrap_or(0)
    }
}

/// Counters and latency reservoirs shared by handles, the batcher, and
/// stats readers.
///
/// Two lifetimes coexist here: the plain counters (`submitted`,
/// `completed`, `batches`, …) accumulate forever, while the
/// **window** metrics (coalesce shape and the two latency reservoirs)
/// cover the span since construction or the last
/// [`ModSramService::reset_window`] — the distinction sweeps need to
/// measure a steady-state phase instead of a lifetime aggregate.
struct StatsCell {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    executor_panics: AtomicU64,
    health_probes: AtomicU64,
    modelled_cycles_total: AtomicU64,
    window_batches: AtomicU64,
    window_jobs: AtomicU64,
    coalesce_min: AtomicU64,
    coalesce_max: AtomicU64,
    wall_ns: Mutex<Reservoir>,
    cycles: Mutex<Reservoir>,
}

impl StatsCell {
    fn new() -> Self {
        StatsCell {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            executor_panics: AtomicU64::new(0),
            health_probes: AtomicU64::new(0),
            modelled_cycles_total: AtomicU64::new(0),
            window_batches: AtomicU64::new(0),
            window_jobs: AtomicU64::new(0),
            coalesce_min: AtomicU64::new(u64::MAX),
            coalesce_max: AtomicU64::new(0),
            wall_ns: Mutex::new(Reservoir::new(4096)),
            cycles: Mutex::new(Reservoir::new(4096)),
        }
    }

    /// Clears the window metrics (coalesce min/mean/max and both
    /// latency reservoirs); lifetime counters are untouched.
    fn reset_window(&self) {
        self.window_batches.store(0, Ordering::Relaxed);
        self.window_jobs.store(0, Ordering::Relaxed);
        self.coalesce_min.store(u64::MAX, Ordering::Relaxed);
        self.coalesce_max.store(0, Ordering::Relaxed);
        self.wall_ns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.cycles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// Queue + stats shared between the service, its handles, and the
/// batcher thread.
struct Shared {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    stats: StatsCell,
}

impl Shared {
    fn lock_inner(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The bounded hand-off between the batcher and the executor pool:
/// coalesced batches queue here so sorting/planning/dispatching of
/// batch `N+1` overlaps the execution of batch `N`.
struct ExecQueue {
    inner: Mutex<(VecDeque<Vec<Queued>>, bool)>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ExecQueue {
    fn new(capacity: usize) -> Self {
        ExecQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a batch, blocking while the pipeline is full.
    fn push(&self, batch: Vec<Queued>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while inner.0.len() >= self.capacity && !inner.1 {
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        inner.0.push_back(batch);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Dequeues the next batch; `None` once closed and drained.
    fn pop(&self) -> Option<Vec<Queued>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(batch) = inner.0.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(batch);
            }
            if inner.1 {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks the pipeline closed; executors drain what remains.
    fn close(&self) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).1 = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A cloneable submission endpoint: cheap to hand to every producer
/// thread; all clones feed the one bounded queue.
#[derive(Clone)]
pub struct SubmitHandle {
    shared: Arc<Shared>,
}

impl core::fmt::Debug for SubmitHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SubmitHandle {{ queue_depth: {} }}",
            self.shared.lock_inner().jobs.len()
        )
    }
}

impl SubmitHandle {
    fn enqueue(&self, job: MulJob, inner: &mut QueueInner) -> Ticket {
        let state = TicketState::new();
        inner.jobs.push_back(Queued {
            job,
            ticket: Arc::clone(&state),
            submitted: Instant::now(),
        });
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        Ticket { state }
    }

    /// Submits one job, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once the service has shut down,
    /// [`SubmitError::Paused`] while admissions are paused (returned
    /// without blocking, even if the pause lands mid-wait).
    pub fn submit(&self, job: MulJob) -> Result<Ticket, SubmitError> {
        let mut inner = self.shared.lock_inner();
        loop {
            if inner.closed {
                return Err(SubmitError::Stopped);
            }
            if inner.paused {
                return Err(SubmitError::Paused);
            }
            if inner.jobs.len() < self.shared.capacity {
                break;
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let ticket = self.enqueue(job, &mut inner);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(ticket)
    }

    /// Submits one job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the queue is at capacity (the
    /// rejection is counted in [`ServiceStats::rejected`]),
    /// [`SubmitError::Stopped`] after shutdown, [`SubmitError::Paused`]
    /// while admissions are paused.
    pub fn try_submit(&self, job: MulJob) -> Result<Ticket, SubmitError> {
        let mut inner = self.shared.lock_inner();
        if inner.closed {
            return Err(SubmitError::Stopped);
        }
        if inner.paused {
            return Err(SubmitError::Paused);
        }
        if inner.jobs.len() >= self.shared.capacity {
            drop(inner);
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull);
        }
        let ticket = self.enqueue(job, &mut inner);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(ticket)
    }

    /// Submits a whole slice of jobs under one queue acquisition —
    /// per-job locking vanishes from the producer's hot path, while
    /// backpressure still applies (the call blocks whenever the queue
    /// is at capacity, releasing the lock until space frees).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] (or [`SubmitError::Paused`]) if the
    /// service stops admitting before every job is queued. Jobs
    /// already queued by then still execute and drain, but their
    /// tickets are not returned — treat the whole call as failed, or
    /// use [`SubmitHandle::submit_many_partial`] to keep the accepted
    /// prefix's tickets.
    pub fn submit_many(&self, jobs: Vec<MulJob>) -> Result<Vec<Ticket>, SubmitError> {
        let (tickets, err) = self.submit_many_partial(jobs);
        match err {
            None => Ok(tickets),
            Some(e) => Err(e),
        }
    }

    /// Bulk submission that never orphans a ticket: queues jobs in
    /// order under one lock acquisition (blocking on capacity like
    /// [`SubmitHandle::submit_many`]) and, if the service stops or
    /// pauses admissions mid-batch, returns the tickets of the
    /// **accepted prefix** alongside the error instead of dropping
    /// them. The accepted jobs still execute and drain; the remainder
    /// was never queued. This is the primitive a cluster router uses so
    /// a tile stopping mid-batch cannot strand waiters whose jobs will
    /// still run.
    pub fn submit_many_partial(&self, jobs: Vec<MulJob>) -> (Vec<Ticket>, Option<SubmitError>) {
        let mut tickets = Vec::with_capacity(jobs.len());
        let mut inner = self.shared.lock_inner();
        for job in jobs {
            loop {
                if inner.closed {
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return (tickets, Some(SubmitError::Stopped));
                }
                if inner.paused {
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return (tickets, Some(SubmitError::Paused));
                }
                if inner.jobs.len() < self.shared.capacity {
                    break;
                }
                self.shared.not_empty.notify_one();
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            tickets.push(self.enqueue(job, &mut inner));
        }
        drop(inner);
        self.shared.not_empty.notify_one();
        (tickets, None)
    }

    /// Jobs currently queued (excludes the batch being executed).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_inner().jobs.len()
    }
}

/// Point-in-time statistics snapshot of a running service.
///
/// Lifetime counters (`submitted` through `modelled_cycles_total`)
/// accumulate from construction; the coalesce shape and the latency
/// percentiles are **window** metrics covering the span since
/// construction or the last [`ModSramService::reset_window`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Jobs currently queued (not yet drained into a batch).
    pub queue_depth: usize,
    /// Jobs accepted (blocking and non-blocking submissions).
    pub submitted: u64,
    /// `try_submit` calls refused with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs completed with an error.
    pub failed: u64,
    /// Coalesced batches dispatched.
    pub batches: u64,
    /// Executor panics caught by the unwind guard (each one failed its
    /// batch's undelivered tickets with [`ServiceError::Stopped`]).
    pub executor_panics: u64,
    /// [`ModSramService::health`] probes taken, from every caller:
    /// routing consults health per submission, probation per check,
    /// and statistics snapshots (including
    /// [`ServiceCluster`](crate::cluster::ServiceCluster)`::stats`)
    /// once per tile — so on an idle cluster this climbs with the
    /// monitoring cadence, not with traffic.
    pub health_probes: u64,
    /// Total modelled device occupancy, in cycles: the sum of every
    /// dispatched batch's [`modelled_batch_cycles`] makespan. Batches
    /// on one tile are serialised in the modelled domain, so this is
    /// the tile's busy time — the quantity a multi-tile cluster sweep
    /// takes the per-tile max of.
    pub modelled_cycles_total: u64,
    /// Smallest batch dispatched in the window (0 before the first).
    pub coalesce_min: u64,
    /// Largest batch dispatched in the window.
    pub coalesce_max: u64,
    /// Mean jobs per dispatched batch in the window.
    pub coalesce_mean: f64,
    /// Median submit→complete latency, wall-clock nanoseconds
    /// (includes queue wait and coalescing delay). Window metric.
    pub wall_p50_ns: u64,
    /// 99th-percentile wall-clock latency, nanoseconds. Window metric.
    pub wall_p99_ns: u64,
    /// Median modelled latency in device cycles: the
    /// [`modelled_batch_cycles`] makespan of the batch the job rode in.
    /// Window metric.
    pub modelled_p50_cycles: u64,
    /// 99th-percentile modelled latency, device cycles. Window metric.
    pub modelled_p99_cycles: u64,
    /// Context-pool cache hits.
    pub pool_hits: u64,
    /// Context-pool cache misses (preparations run).
    pub pool_misses: u64,
    /// Context-pool LRU evictions.
    pub pool_evictions: u64,
    /// Self-tuning counters when the tile runs an autotuning pool
    /// ([`ModSramService::auto`]): tuned moduli, races run/skipped,
    /// calibration nanoseconds, per-engine wins. `None` on pinned
    /// pools.
    pub autotune: Option<AutotuneStats>,
}

/// A point-in-time capacity/liveness probe of one service tile — the
/// seam a [`ServiceCluster`](crate::cluster::ServiceCluster) routes on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileHealth {
    /// Jobs currently queued (not yet drained into a batch).
    pub queue_depth: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// `true` once the tile has shut down.
    pub stopped: bool,
    /// `true` while admissions are paused
    /// ([`ModSramService::pause_admissions`]) — the tile is draining
    /// or sitting out a probation window; queued jobs keep executing.
    pub paused: bool,
    /// Executor panics caught so far — a tile whose panics keep
    /// climbing has a poisoned context and should be routed around.
    pub executor_panics: u64,
}

impl TileHealth {
    /// Queue slots still free.
    pub fn headroom(&self) -> usize {
        self.queue_capacity.saturating_sub(self.queue_depth)
    }

    /// `true` while the tile can accept a non-blocking submission.
    pub fn accepting(&self) -> bool {
        !self.stopped && !self.paused && self.headroom() > 0
    }
}

/// The streaming modular-multiplication service (see the module docs).
pub struct ModSramService {
    shared: Arc<Shared>,
    pool: Arc<ContextPool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    config: ServiceConfig,
}

impl core::fmt::Debug for ModSramService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ModSramService {{ workers: {}, capacity: {}, queue_depth: {} }}",
            self.config.workers,
            self.config.queue_capacity,
            self.queue_depth()
        )
    }
}

impl ModSramService {
    /// Starts a service executing through `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers`, `config.queue_capacity`, or
    /// `config.max_batch` is zero.
    pub fn new(pool: ContextPool, config: ServiceConfig) -> Self {
        Self::with_shared_pool(Arc::new(pool), config)
    }

    /// Starts a service over an already-shared pool (e.g. one also
    /// serving staged dispatch elsewhere).
    ///
    /// # Panics
    ///
    /// As [`ModSramService::new`], plus when the OS refuses to spawn a
    /// service thread — use
    /// [`ModSramService::try_with_shared_pool`] to handle that case.
    pub fn with_shared_pool(pool: Arc<ContextPool>, config: ServiceConfig) -> Self {
        // analyzer: allow(no_panic, panicking convenience ctor by contract; the fallible path is try_with_shared_pool)
        Self::try_with_shared_pool(pool, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Starts a service over an already-shared pool, surfacing a
    /// thread-spawn refusal as [`CoreError::Spawn`] instead of
    /// panicking — the constructor an admission-controlled front-end
    /// (which must shed load, not unwind) should call.
    ///
    /// # Panics
    ///
    /// As [`ModSramService::new`] for zero `workers`,
    /// `queue_capacity`, `max_batch`, or `pipeline_depth` (those are
    /// caller bugs, not runtime conditions).
    ///
    /// # Errors
    ///
    /// [`CoreError::Spawn`] when the OS cannot start an executor or
    /// batcher thread; every thread spawned before the failure is shut
    /// down cleanly before returning.
    pub fn try_with_shared_pool(
        pool: Arc<ContextPool>,
        config: ServiceConfig,
    ) -> Result<Self, CoreError> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        assert!(config.pipeline_depth > 0, "need at least one executor");
        let shared = Arc::new(Shared {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity,
            stats: StatsCell::new(),
        });
        let exec_queue = Arc::new(ExecQueue::new(config.pipeline_depth));
        let mut threads = Vec::with_capacity(1 + config.pipeline_depth);
        for e in 0..config.pipeline_depth {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            let config = config.clone();
            let thread_queue = Arc::clone(&exec_queue);
            let spawned = std::thread::Builder::new()
                .name(format!("modsram-exec-{e}"))
                .spawn(move || executor_loop(shared, pool, config, thread_queue));
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(_) => {
                    // Unwind the partial construction: closing the exec
                    // queue wakes and retires the executors spawned so
                    // far, so no thread outlives the failed ctor.
                    exec_queue.close();
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(CoreError::Spawn {
                        what: "executor thread",
                    });
                }
            }
        }
        let thread_shared = Arc::clone(&shared);
        let thread_config = config.clone();
        let exec_handoff = Arc::clone(&exec_queue);
        let batcher = std::thread::Builder::new()
            .name("modsram-batcher".into())
            .spawn(move || batcher_loop(thread_shared, thread_config, exec_handoff));
        match batcher {
            Ok(handle) => threads.insert(0, handle),
            Err(_) => {
                exec_queue.close();
                for t in threads {
                    let _ = t.join();
                }
                return Err(CoreError::Spawn {
                    what: "batcher thread",
                });
            }
        }
        Ok(ModSramService {
            shared,
            pool,
            threads: Mutex::new(threads),
            config,
        })
    }

    /// Service over a registry engine by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownEngine`] for a name absent from the
    /// registry.
    pub fn for_engine_name(name: &str, config: ServiceConfig) -> Result<Self, CoreError> {
        let pool =
            ContextPool::for_engine_name(name).ok_or_else(|| CoreError::unknown_engine(name))?;
        Ok(Self::new(pool, config))
    }

    /// Service over a pool of cycle-accurate ModSRAM devices (one
    /// modulus-loaded device per distinct modulus).
    pub fn for_modsram(device: ModSramConfig, config: ServiceConfig) -> Self {
        Self::new(ContextPool::for_modsram(device), config)
    }

    /// A self-tuning service: each distinct modulus is served by
    /// whatever engine `policy` decides — pinned, profile-table
    /// lookup, or a prepare-time calibration race (see
    /// [`crate::autotune`]). Tuning counters appear in
    /// [`ServiceStats::autotune`].
    pub fn auto(policy: TunePolicy, config: ServiceConfig) -> Self {
        Self::new(ContextPool::auto(policy), config)
    }

    /// A cloneable submission endpoint for producer threads.
    pub fn handle(&self) -> SubmitHandle {
        SubmitHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits one job, blocking while the queue is at capacity (see
    /// [`SubmitHandle::submit`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] once the service has shut down.
    pub fn submit(&self, job: MulJob) -> Result<Ticket, SubmitError> {
        self.handle().submit(job)
    }

    /// Submits one job without blocking (see
    /// [`SubmitHandle::try_submit`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Stopped`]
    /// after shutdown.
    pub fn try_submit(&self, job: MulJob) -> Result<Ticket, SubmitError> {
        self.handle().try_submit(job)
    }

    /// A [`PreparedModMul`] façade over this service for modulus `p`:
    /// every `mod_mul` submits through the queue, so existing
    /// engine-generic consumers (curves, committers, NTT shards)
    /// stream their multiplications through the shared tile.
    pub fn prepared(&self, p: &UBig) -> ServicePrepared {
        ServicePrepared {
            handle: self.handle(),
            p: p.clone(),
        }
    }

    /// The shared context pool (for staged callers riding the same
    /// preparations).
    pub fn pool(&self) -> &Arc<ContextPool> {
        &self.pool
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_inner().jobs.len()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared.stats;
        let window_batches = s.window_batches.load(Ordering::Relaxed);
        let window_jobs = s.window_jobs.load(Ordering::Relaxed);
        let min = s.coalesce_min.load(Ordering::Relaxed);
        let (wall_p50, wall_p99) = {
            let r = s.wall_ns.lock().unwrap_or_else(PoisonError::into_inner);
            (r.percentile(0.50), r.percentile(0.99))
        };
        let (cyc_p50, cyc_p99) = {
            let r = s.cycles.lock().unwrap_or_else(PoisonError::into_inner);
            (r.percentile(0.50), r.percentile(0.99))
        };
        ServiceStats {
            queue_depth: self.queue_depth(),
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            // Acquire pairs with the executor's Release bump so a
            // non-zero panic count implies the ticket failures that
            // accompanied it are visible too.
            executor_panics: s.executor_panics.load(Ordering::Acquire),
            health_probes: s.health_probes.load(Ordering::Relaxed),
            modelled_cycles_total: s.modelled_cycles_total.load(Ordering::Relaxed),
            coalesce_min: if min == u64::MAX { 0 } else { min },
            coalesce_max: s.coalesce_max.load(Ordering::Relaxed),
            coalesce_mean: if window_batches == 0 {
                0.0
            } else {
                window_jobs as f64 / window_batches as f64
            },
            wall_p50_ns: wall_p50,
            wall_p99_ns: wall_p99,
            modelled_p50_cycles: cyc_p50,
            modelled_p99_cycles: cyc_p99,
            pool_hits: self.pool.hits(),
            pool_misses: self.pool.misses(),
            pool_evictions: self.pool.evictions(),
            autotune: self.pool.tuner().map(|t| t.stats()),
        }
    }

    /// Starts a fresh statistics **window**: clears the coalesce
    /// min/mean/max aggregates and both latency reservoirs while
    /// leaving every lifetime counter (submitted, completed, batches,
    /// panics, modelled occupancy) untouched.
    ///
    /// Sweeps call this between phases — e.g. after a warm-up pass that
    /// paid the per-modulus preparation cost — so the percentiles and
    /// coalesce shape they report describe one steady-state phase
    /// instead of a lifetime aggregate that smears phases together.
    pub fn reset_window(&self) {
        self.shared.stats.reset_window();
    }

    /// The capacity/liveness probe a cluster router consults before
    /// targeting this tile. Every probe is counted in
    /// [`ServiceStats::health_probes`].
    pub fn health(&self) -> TileHealth {
        self.shared
            .stats
            .health_probes
            .fetch_add(1, Ordering::Relaxed);
        let inner = self.shared.lock_inner();
        TileHealth {
            queue_depth: inner.jobs.len(),
            queue_capacity: self.config.queue_capacity,
            stopped: inner.closed,
            paused: inner.paused,
            // Acquire pairs with the executor's Release bump: a router
            // steering away from a panicking tile must also observe the
            // failure state that justified the bump.
            executor_panics: self.shared.stats.executor_panics.load(Ordering::Acquire),
        }
    }

    /// Pauses admissions: every subsequent (or currently blocked)
    /// submission is refused with [`SubmitError::Paused`], while the
    /// queue keeps draining and every already-accepted ticket still
    /// completes. This is the drain seam a
    /// [`ServiceCluster`](crate::cluster::ServiceCluster) uses: pause,
    /// wait for [`ModSramService::quiesced`], and the tile is empty
    /// without ever being shut down — so it can
    /// [`resume_admissions`](ModSramService::resume_admissions) after a
    /// probation window instead of being rebuilt. Idempotent.
    pub fn pause_admissions(&self) {
        {
            let mut inner = self.shared.lock_inner();
            inner.paused = true;
        }
        // Wake blocked submitters so they observe the pause and refuse
        // instead of waiting for capacity that may never be offered to
        // them again this epoch.
        self.shared.not_full.notify_all();
    }

    /// Re-opens admissions after [`ModSramService::pause_admissions`].
    /// Idempotent; a no-op on a stopped service.
    pub fn resume_admissions(&self) {
        {
            let mut inner = self.shared.lock_inner();
            inner.paused = false;
        }
        self.shared.not_full.notify_all();
    }

    /// `true` while admissions are paused.
    pub fn admissions_paused(&self) -> bool {
        self.shared.lock_inner().paused
    }

    /// `true` once every accepted job has been delivered (completed or
    /// failed) — with admissions paused, the moment the tile is fully
    /// drained. Meaningful as a drain barrier only while no new
    /// submissions can land (paused or stopped).
    pub fn quiesced(&self) -> bool {
        let s = &self.shared.stats;
        let delivered = s.completed.load(Ordering::Acquire) + s.failed.load(Ordering::Acquire);
        delivered == s.submitted.load(Ordering::Acquire)
    }

    /// Gracefully stops the service: refuses new submissions, lets the
    /// batcher drain and complete every queued ticket, joins the
    /// batcher thread, and returns the final statistics. Idempotent.
    pub fn shutdown(&self) -> ServiceStats {
        {
            let mut inner = self.shared.lock_inner();
            inner.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        // The batcher drains the submission queue, forwards the final
        // batches, and closes the executor pipeline; executors finish
        // whatever is in flight before exiting — so joining in order
        // completes every accepted ticket.
        let threads =
            std::mem::take(&mut *self.threads.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in threads {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for ModSramService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drains queued jobs into `batch` until it holds `max_batch` or the
/// queue runs dry.
fn drain_into(inner: &mut QueueInner, batch: &mut Vec<Queued>, max_batch: usize) {
    while batch.len() < max_batch {
        match inner.jobs.pop_front() {
            Some(q) => batch.push(q),
            None => break,
        }
    }
}

/// The batcher thread: wait → coalesce → forward, until the queue is
/// both closed and empty; then close the executor pipeline.
fn batcher_loop(shared: Arc<Shared>, config: ServiceConfig, exec_queue: Arc<ExecQueue>) {
    loop {
        let mut batch: Vec<Queued> = Vec::new();
        {
            let mut inner = shared.lock_inner();
            while inner.jobs.is_empty() && !inner.closed {
                inner = shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if inner.jobs.is_empty() && inner.closed {
                drop(inner);
                exec_queue.close();
                return;
            }
            drain_into(&mut inner, &mut batch, config.max_batch);
            // Coalescing window: give stragglers up to `flush_interval`
            // to join this batch, unless it is already full or the
            // service is draining for shutdown.
            if batch.len() < config.max_batch && !inner.closed && !config.flush_interval.is_zero() {
                let deadline = Instant::now() + config.flush_interval;
                while batch.len() < config.max_batch && !inner.closed {
                    if !inner.jobs.is_empty() {
                        drain_into(&mut inner, &mut batch, config.max_batch);
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shared
                        .not_empty
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                    if timeout.timed_out() && inner.jobs.is_empty() {
                        break;
                    }
                }
                drain_into(&mut inner, &mut batch, config.max_batch);
            }
        }
        // Capacity freed: wake every blocked submitter.
        shared.not_full.notify_all();
        exec_queue.push(batch);
    }
}

/// An executor thread: sorts, plans, dispatches, and delivers batches
/// handed over by the batcher, until the pipeline closes and drains.
///
/// Execution runs under an unwind guard: if anything in the dispatch
/// path panics, the batch's undelivered tickets fail with
/// [`ServiceError::Stopped`] instead of hanging their waiters, and the
/// executor keeps serving later batches.
fn executor_loop(
    shared: Arc<Shared>,
    pool: Arc<ContextPool>,
    config: ServiceConfig,
    exec_queue: Arc<ExecQueue>,
) {
    let mut dispatcher = Dispatcher::new(config.workers).policy(config.policy);
    if let Some(chunk) = config.chunk_size {
        dispatcher = dispatcher.chunk_size(chunk);
    }
    while let Some(batch) = exec_queue.pop() {
        let tickets: Vec<Arc<TicketState>> = batch.iter().map(|q| Arc::clone(&q.ticket)).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_batch(&shared, &pool, &dispatcher, &config, batch);
        }));
        if outcome.is_err() {
            // Release so a monitor that observes the bumped count also
            // sees the ticket failures published below it (the counter
            // gates "did anything go wrong" health probes).
            shared.stats.executor_panics.fetch_add(1, Ordering::Release);
            let mut failed = 0u64;
            for ticket in &tickets {
                if ticket.complete(Err(ServiceError::Stopped)) {
                    failed += 1;
                }
            }
            shared.stats.failed.fetch_add(failed, Ordering::Relaxed);
        }
    }
}

/// A cheap grouping key for multiplicand-major coalescing: jobs with
/// equal `(modulus, b)` map to equal keys, so sorting by the key
/// produces the contiguous shared-multiplicand runs the LUT engines
/// amortise — without O(n log n) big-integer comparisons on the
/// batcher's critical path. (A hash collision merely places two
/// unrelated runs next to each other; the chunk planner still splits
/// at real modulus boundaries, so correctness never depends on the
/// key.)
fn group_key(job: &MulJob) -> (u64, u64) {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut h = DefaultHasher::new();
    job.modulus.hash(&mut h);
    let modulus = h.finish();
    let mut h = DefaultHasher::new();
    job.b.hash(&mut h);
    (modulus, h.finish())
}

/// Sorts a drained batch multiplicand-major, executes it through the
/// dispatcher, and delivers each result to its ticket.
fn execute_batch(
    shared: &Shared,
    pool: &ContextPool,
    dispatcher: &Dispatcher,
    config: &ServiceConfig,
    mut batch: Vec<Queued>,
) {
    if batch.is_empty() {
        return;
    }
    let stats = &shared.stats;
    let n = batch.len() as u64;
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.window_batches.fetch_add(1, Ordering::Relaxed);
    stats.window_jobs.fetch_add(n, Ordering::Relaxed);
    stats.coalesce_min.fetch_min(n, Ordering::Relaxed);
    stats.coalesce_max.fetch_max(n, Ordering::Relaxed);

    // Multiplicand-major coalescing: group by modulus, then by `b`, so
    // interleaved tenants still hand the LUT engines long shared-`B`
    // runs. Each entry carries its own ticket, so execution order and
    // delivery need no permutation bookkeeping.
    batch.sort_by_cached_key(|q| group_key(&q.job));
    let mut jobs = Vec::with_capacity(batch.len());
    let mut meta = Vec::with_capacity(batch.len());
    for queued in batch {
        jobs.push(queued.job);
        meta.push((queued.ticket, queued.submitted));
    }

    let chunk_target = dispatcher.chunk_size_for(jobs.len());
    let makespan_cycles = modelled_batch_cycles(&jobs, config.workers, chunk_target);
    stats
        .modelled_cycles_total
        .fetch_add(makespan_cycles, Ordering::Relaxed);

    let outcomes: Vec<Result<UBig, ServiceError>> = match dispatcher.dispatch_jobs(pool, &jobs) {
        Ok((results, _)) => results.into_iter().map(Ok).collect(),
        // A whole-batch failure (one bad modulus, say) must not take
        // innocent coalesced neighbours down with it: fall back to
        // per-job execution and give every ticket its own verdict.
        Err(_) => jobs
            .iter()
            .map(|job| {
                pool.context(&job.modulus)
                    .and_then(|ctx| ctx.mod_mul(&job.a, &job.b).map_err(CoreError::ModMul))
                    .map_err(ServiceError::Mul)
            })
            .collect(),
    };

    let done = Instant::now();
    let mut wall = stats.wall_ns.lock().unwrap_or_else(PoisonError::into_inner);
    let mut cycles = stats.cycles.lock().unwrap_or_else(PoisonError::into_inner);
    let (mut ok, mut errs) = (0u64, 0u64);
    for ((ticket, submitted), outcome) in meta.into_iter().zip(outcomes) {
        match &outcome {
            Ok(_) => ok += 1,
            Err(_) => errs += 1,
        }
        wall.push(done.saturating_duration_since(submitted).as_nanos() as u64);
        cycles.push(makespan_cycles);
        ticket.complete(outcome);
    }
    stats.completed.fetch_add(ok, Ordering::Relaxed);
    stats.failed.fetch_add(errs, Ordering::Relaxed);
}

/// A [`PreparedModMul`] whose every multiplication streams through a
/// [`ModSramService`] — the bridge that lets engine-generic consumers
/// (curves over dynamic field contexts, Pedersen committers, NTT
/// shards) interleave on one shared tile.
///
/// Obtained from [`ModSramService::prepared`]. `mod_mul` submits one
/// job and blocks on its ticket; `mod_mul_batch` submits the whole
/// batch before waiting, so independent multiplications coalesce.
pub struct ServicePrepared {
    handle: SubmitHandle,
    p: UBig,
}

impl core::fmt::Debug for ServicePrepared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ServicePrepared {{ p: {} }}", self.p)
    }
}

pub(crate) fn backend_error(e: impl core::fmt::Display) -> ModMulError {
    ModMulError::Backend {
        reason: e.to_string(),
    }
}

/// Unwraps a ticket result into the engine error space: algorithmic
/// errors pass through, service-level failures become
/// [`ModMulError::Backend`].
pub(crate) fn ticket_result(result: Result<UBig, ServiceError>) -> Result<UBig, ModMulError> {
    match result {
        Ok(v) => Ok(v),
        Err(ServiceError::Mul(CoreError::ModMul(e))) => Err(e),
        Err(other) => Err(backend_error(other)),
    }
}

impl PreparedModMul for ServicePrepared {
    fn engine_name(&self) -> &'static str {
        "service"
    }

    fn modulus(&self) -> &UBig {
        &self.p
    }

    fn mod_mul(&self, a: &UBig, b: &UBig) -> Result<UBig, ModMulError> {
        let ticket = self
            .handle
            .submit(MulJob::new(a.clone(), b.clone(), self.p.clone()))
            .map_err(backend_error)?;
        ticket_result(ticket.wait())
    }

    fn mod_mul_batch(&self, pairs: &[(UBig, UBig)]) -> Result<Vec<UBig>, ModMulError> {
        let jobs: Vec<MulJob> = pairs
            .iter()
            .map(|(a, b)| MulJob::new(a.clone(), b.clone(), self.p.clone()))
            .collect();
        let tickets = self.handle.submit_many(jobs).map_err(backend_error)?;
        tickets.iter().map(|t| ticket_result(t.wait())).collect()
    }
}

/// The two ways batch consumers execute their modular multiplications:
/// a **one-shot** staged dispatch the caller owns end to end, or a
/// **shared** streaming service multiple consumers feed concurrently.
///
/// The dispatched NTT (`NttPlan::forward_via`), the `*_via` curve
/// constructors, and `apps::ecdsa::verify_batch_via` take this, so the
/// same verification/NTT/MSM code serves both a batch CLI tool and a
/// mixed-tenant server.
pub enum ExecBackend<'a> {
    /// Stage whole batches through a caller-owned dispatcher and pool.
    Staged {
        /// The dispatcher executing each staged batch.
        dispatcher: &'a Dispatcher,
        /// Per-modulus context cache.
        pool: &'a ContextPool,
    },
    /// Stream every job through a shared service queue.
    Service(&'a ModSramService),
    /// Stream every job through a multi-tile cluster: the router picks
    /// each job's home tile by modulus affinity (spilling on
    /// backpressure per the cluster's policy), so the same consumer
    /// code scales from one macro to a rack of them.
    Cluster(&'a ServiceCluster),
}

impl core::fmt::Debug for ExecBackend<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecBackend::Staged { dispatcher, .. } => {
                write!(
                    f,
                    "ExecBackend::Staged {{ workers: {} }}",
                    dispatcher.workers()
                )
            }
            ExecBackend::Service(_) => write!(f, "ExecBackend::Service"),
            ExecBackend::Cluster(cluster) => {
                write!(f, "ExecBackend::Cluster {{ tiles: {} }}", cluster.tiles())
            }
        }
    }
}

impl ExecBackend<'_> {
    /// Executes a batch of jobs, returning products in job order.
    ///
    /// # Errors
    ///
    /// Propagates the first preparation/execution error; a stopped
    /// service surfaces as [`CoreError::ServiceStopped`], a stopped
    /// cluster as [`CoreError::ClusterStopped`].
    pub fn mul_jobs(&self, jobs: &[MulJob]) -> Result<Vec<UBig>, CoreError> {
        match self {
            ExecBackend::Staged { dispatcher, pool } => {
                dispatcher.dispatch_jobs(pool, jobs).map(|(r, _)| r)
            }
            ExecBackend::Service(service) => {
                let tickets = service
                    .handle()
                    .submit_many(jobs.to_vec())
                    .map_err(|_| CoreError::ServiceStopped)?;
                tickets
                    .iter()
                    .map(|t| t.wait().map_err(CoreError::from))
                    .collect()
            }
            ExecBackend::Cluster(cluster) => {
                let tickets = cluster
                    .handle()
                    .submit_many(jobs.to_vec())
                    .map_err(|failure| CoreError::from(failure.error))?;
                tickets
                    .iter()
                    .map(|t| t.wait().map_err(CoreError::from))
                    .collect()
            }
        }
    }

    /// A shareable prepared context for `p`: the pooled context on the
    /// staged path, a [`ServicePrepared`] stream on the service path, a
    /// cluster-routed stream on the cluster path.
    ///
    /// # Errors
    ///
    /// Staged: the pool's preparation error. Service/cluster: never
    /// fails here — invalid moduli surface on first use.
    pub fn context(&self, p: &UBig) -> Result<Arc<dyn PreparedModMul>, CoreError> {
        match self {
            ExecBackend::Staged { pool, .. } => pool.context(p),
            ExecBackend::Service(service) => Ok(Arc::new(service.prepared(p))),
            ExecBackend::Cluster(cluster) => Ok(Arc::new(cluster.prepared(p))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_mod(p: u64, count: u64) -> Vec<MulJob> {
        (0..count)
            .map(|i| MulJob::new(UBig::from(i * 3 + 1), UBig::from(i * 7 + 2), UBig::from(p)))
            .collect()
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            flush_interval: Duration::from_micros(50),
            ..Default::default()
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = ModSramService::for_engine_name("barrett", tiny_config()).unwrap();
        let tickets: Vec<Ticket> = jobs_mod(97, 20)
            .into_iter()
            .map(|j| service.submit(j).unwrap())
            .collect();
        for (i, t) in tickets.iter().enumerate() {
            let i = i as u64;
            assert_eq!(
                t.wait().unwrap(),
                UBig::from((i * 3 + 1) * (i * 7 + 2) % 97)
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.coalesce_max <= 8);
    }

    #[test]
    fn submit_many_matches_per_job_submission() {
        let service = ModSramService::for_engine_name("barrett", tiny_config()).unwrap();
        let jobs = jobs_mod(1_000_003, 25);
        let tickets = service.handle().submit_many(jobs.clone()).unwrap();
        assert_eq!(tickets.len(), 25);
        for (job, ticket) in jobs.iter().zip(&tickets) {
            assert_eq!(ticket.wait().unwrap(), &(&job.a * &job.b) % &job.modulus);
        }
        // Bulk submission larger than the queue capacity still drains
        // (the call blocks per slot, the batcher frees space).
        let big = jobs_mod(97, 200);
        let tickets = service.handle().submit_many(big.clone()).unwrap();
        for (job, ticket) in big.iter().zip(&tickets) {
            assert_eq!(ticket.wait().unwrap(), &(&job.a * &job.b) % &job.modulus);
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 225);
        // submit_many after shutdown is refused.
        assert_eq!(
            service.handle().submit_many(jobs_mod(97, 2)).err(),
            Some(SubmitError::Stopped)
        );
    }

    #[test]
    fn try_poll_transitions_to_done() {
        let service = ModSramService::for_engine_name("direct", tiny_config()).unwrap();
        let ticket = service
            .submit(MulJob::new(
                UBig::from(6u64),
                UBig::from(7u64),
                UBig::from(97u64),
            ))
            .unwrap();
        let value = ticket.wait().unwrap();
        assert_eq!(value, UBig::from(42u64));
        assert_eq!(ticket.try_poll(), Some(Ok(UBig::from(42u64))));
        assert!(ticket.is_done());
    }

    #[test]
    fn wait_timeout_on_time_path_returns_result() {
        let service = ModSramService::for_engine_name("direct", tiny_config()).unwrap();
        let ticket = service
            .submit(MulJob::new(
                UBig::from(6u64),
                UBig::from(7u64),
                UBig::from(97u64),
            ))
            .unwrap();
        // Generous budget: the job completes well inside it.
        let got = ticket.wait_timeout(Duration::from_secs(30));
        assert_eq!(got, Some(Ok(UBig::from(42u64))));
        // A completed ticket keeps answering instantly, even with a
        // zero budget or an already-expired deadline.
        assert_eq!(
            ticket.wait_timeout(Duration::ZERO),
            Some(Ok(UBig::from(42u64)))
        );
        assert_eq!(
            ticket.wait_deadline(Instant::now() - Duration::from_secs(1)),
            Some(Ok(UBig::from(42u64)))
        );
        service.shutdown();
    }

    #[test]
    fn wait_timeout_expires_on_pending_ticket_then_redeems() {
        // A hand-built pending ticket: nothing completes it until the
        // test does, so the timeout path is deterministic.
        let state = TicketState::new();
        let ticket = Ticket {
            state: Arc::clone(&state),
        };
        let start = Instant::now();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(20)), None);
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "timeout returned early"
        );
        assert_eq!(ticket.wait_deadline(Instant::now()), None);
        assert!(!ticket.is_done(), "timing out must not consume the ticket");
        // Late delivery still redeems: the same ticket can be waited on
        // again after any number of timeouts.
        let deliverer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            state.complete(Ok(UBig::from(9u64)));
        });
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(30)),
            Some(Ok(UBig::from(9u64)))
        );
        deliverer.join().unwrap();
    }

    #[test]
    fn bad_modulus_fails_only_its_own_ticket() {
        // Montgomery rejects even moduli: a coalesced batch mixing good
        // and bad jobs must fail only the bad ones.
        let service = ModSramService::for_engine_name("montgomery", tiny_config()).unwrap();
        let good = service
            .submit(MulJob::new(
                UBig::from(5u64),
                UBig::from(6u64),
                UBig::from(97u64),
            ))
            .unwrap();
        let bad = service
            .submit(MulJob::new(
                UBig::from(5u64),
                UBig::from(6u64),
                UBig::from(96u64),
            ))
            .unwrap();
        assert_eq!(good.wait().unwrap(), UBig::from(30u64));
        assert_eq!(
            bad.wait(),
            Err(ServiceError::Mul(CoreError::ModMul(
                ModMulError::EvenModulus
            )))
        );
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let service = ModSramService::for_engine_name("direct", tiny_config()).unwrap();
        service.shutdown();
        assert_eq!(
            service
                .submit(MulJob::new(
                    UBig::from(1u64),
                    UBig::from(2u64),
                    UBig::from(97u64)
                ))
                .err(),
            Some(SubmitError::Stopped)
        );
        assert_eq!(
            service
                .try_submit(MulJob::new(
                    UBig::from(1u64),
                    UBig::from(2u64),
                    UBig::from(97u64)
                ))
                .err(),
            Some(SubmitError::Stopped)
        );
    }

    #[test]
    fn service_prepared_context_multiplies() {
        let service = ModSramService::for_engine_name("montgomery", tiny_config()).unwrap();
        let ctx = service.prepared(&UBig::from(1_000_003u64));
        assert_eq!(ctx.engine_name(), "service");
        assert_eq!(ctx.modulus(), &UBig::from(1_000_003u64));
        assert_eq!(
            ctx.mod_mul(&UBig::from(2024u64), &UBig::from(4096u64))
                .unwrap(),
            UBig::from(2024u64 * 4096 % 1_000_003)
        );
        let pairs = vec![(UBig::from(3u64), UBig::from(5u64)); 4];
        assert_eq!(
            ctx.mod_mul_batch(&pairs).unwrap(),
            vec![UBig::from(15u64); 4]
        );
    }

    #[test]
    fn exec_backend_staged_and_service_agree() {
        let jobs: Vec<MulJob> = jobs_mod(97, 9)
            .into_iter()
            .chain(jobs_mod(1_000_003, 9))
            .collect();
        let pool = ContextPool::for_engine_name("barrett").unwrap();
        let dispatcher = Dispatcher::new(2);
        let staged = ExecBackend::Staged {
            dispatcher: &dispatcher,
            pool: &pool,
        }
        .mul_jobs(&jobs)
        .unwrap();
        let service = ModSramService::for_engine_name("barrett", tiny_config()).unwrap();
        let streamed = ExecBackend::Service(&service).mul_jobs(&jobs).unwrap();
        assert_eq!(staged, streamed);
        for (job, got) in jobs.iter().zip(&staged) {
            assert_eq!(got, &(&(&job.a * &job.b) % &job.modulus));
        }
    }

    #[test]
    fn modelled_cycles_match_paper_anchor() {
        // One 256-bit multiplication: 767 cycles plus one LUT refill.
        let p = &UBig::pow2(256) - &UBig::from(189u64);
        let jobs = vec![MulJob::new(UBig::from(3u64), UBig::from(4u64), p)];
        assert_eq!(modelled_mul_cycles(256), 767);
        assert_eq!(
            modelled_batch_cycles(&jobs, 1, 1),
            767 + MODELLED_REFILL_CYCLES
        );
        // A shared-multiplicand run pays one refill; distinct
        // multiplicands pay one each.
        let shared: Vec<MulJob> = (0..4u64)
            .map(|i| MulJob::new(UBig::from(i + 1), UBig::from(9u64), UBig::from(97u64)))
            .collect();
        let cycles_97 = modelled_mul_cycles(7);
        assert_eq!(
            modelled_batch_cycles(&shared, 1, 64),
            4 * cycles_97 + MODELLED_REFILL_CYCLES
        );
    }

    #[test]
    fn reservoir_percentiles_are_sane() {
        let mut r = Reservoir::new(128);
        for v in 1..=100u64 {
            r.push(v);
        }
        assert_eq!(r.percentile(0.0), 1);
        assert_eq!(r.percentile(1.0), 100);
        let p50 = r.percentile(0.5);
        assert!((49..=52).contains(&p50), "p50 {p50}");
        // Overflow the capacity: samples stay bounded, stats plausible.
        let mut r = Reservoir::new(16);
        for v in 0..10_000u64 {
            r.push(v);
        }
        assert_eq!(r.samples.len(), 16);
        assert!(r.percentile(1.0) <= 9_999);
    }
}
