//! Wordline allocation on the ModSRAM array (§5.2, Figure 6).

use modsram_modmul::LutOverflow;

/// Fixed wordline map for one modular-multiplication context.
///
/// Mirrors the paper's §5.2 data organisation: each wordline stores one
/// full operand; the radix-4 and overflow LUTs occupy 13 wordlines that
/// are *reused* across iterations and across multiplications sharing the
/// same multiplicand/modulus. Four extra instrumented "spill" rows hold
/// the overflow entries 8–11 that exact accounting can touch (see
/// DESIGN.md §3.2); the `lut_usage` experiment reports whether they are
/// ever used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    rows: usize,
    cols: usize,
}

impl MemoryMap {
    /// Modulus row.
    pub const P: usize = 0;
    /// Multiplicand row (`B`).
    pub const B: usize = 1;
    /// Multiplier row (`A`).
    pub const A: usize = 2;
    /// Sum intermediate row.
    pub const SUM: usize = 3;
    /// Carry intermediate row.
    pub const CARRY: usize = 4;
    /// First radix-4 LUT row; the five rows follow Table 1b order
    /// (`0, +B, +2B, −2B, −B`).
    pub const LUT4_BASE: usize = 5;
    /// First overflow LUT row; entries `w = 0..8` (Table 2).
    pub const LUTOV_BASE: usize = 10;
    /// First instrumented spill row (overflow entries 8..12).
    pub const LUTOV_SPILL_BASE: usize = 18;
    /// Number of spill rows allocated.
    pub const LUTOV_SPILL_ROWS: usize = 4;
    /// First free scratch row (elliptic-curve working set).
    pub const SCRATCH_BASE: usize = 22;

    /// Builds the map for an array of `rows` × `cols`.
    ///
    /// # Panics
    ///
    /// Panics if the array has fewer than [`Self::required_rows`] rows.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows >= Self::required_rows(),
            "array needs at least {} rows",
            Self::required_rows()
        );
        MemoryMap { rows, cols }
    }

    /// Minimum wordlines the map needs (operands + intermediates + LUTs
    /// + spill).
    pub fn required_rows() -> usize {
        Self::SCRATCH_BASE
    }

    /// Wordlines used by the paper's accounting: 3 operands + 2
    /// intermediates + 13 LUT rows = 18.
    pub fn paper_rows_used() -> usize {
        3 + 2 + Self::lut_rows_paper()
    }

    /// The paper's LUT wordline budget: 5 radix-4 + 8 overflow = 13.
    pub fn lut_rows_paper() -> usize {
        5 + LutOverflow::PAPER_ENTRIES
    }

    /// The radix-4 LUT row for a Table 1b index (0..5).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 5`.
    pub fn lut4_row(&self, index: usize) -> usize {
        assert!(index < 5, "radix-4 LUT has 5 rows");
        Self::LUT4_BASE + index
    }

    /// The overflow LUT row for weight `w` (0..12); weights 8..12 map to
    /// the instrumented spill rows.
    ///
    /// # Panics
    ///
    /// Panics if `w >= 12` (exact accounting bounds the index by 11).
    pub fn lutov_row(&self, w: usize) -> usize {
        if w < LutOverflow::PAPER_ENTRIES {
            Self::LUTOV_BASE + w
        } else {
            let spill = w - LutOverflow::PAPER_ENTRIES;
            assert!(
                spill < Self::LUTOV_SPILL_ROWS,
                "overflow weight {w} outside even the spill range"
            );
            Self::LUTOV_SPILL_BASE + spill
        }
    }

    /// `true` when the given overflow weight lives on a spill row (i.e.
    /// beyond the paper's Table 2).
    pub fn is_spill_weight(w: usize) -> bool {
        w >= LutOverflow::PAPER_ENTRIES
    }

    /// Number of scratch rows available for application working sets.
    pub fn scratch_rows(&self) -> usize {
        self.rows - Self::SCRATCH_BASE
    }

    /// A scratch row by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= scratch_rows()`.
    pub fn scratch_row(&self, index: usize) -> usize {
        assert!(index < self.scratch_rows(), "scratch row out of range");
        Self::SCRATCH_BASE + index
    }

    /// Array geometry.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array geometry.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The working set of an elliptic-curve point addition staged in the
    /// array (§5.2: "accommodated to fit operands of a point addition").
    pub fn point_add_working_set(&self) -> PointAddWorkingSet {
        PointAddWorkingSet::for_map(self)
    }
}

/// Row budget for one Jacobian point addition staged entirely in-array.
///
/// A mixed Jacobian+affine point addition needs the 6 input coordinates,
/// 3 output coordinates, and up to 7 live temporaries; every temporary is
/// one wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointAddWorkingSet {
    /// Input/output coordinate rows.
    pub coordinate_rows: usize,
    /// Temporary rows.
    pub temporary_rows: usize,
    /// Scratch rows the map actually has available.
    pub available_rows: usize,
}

impl PointAddWorkingSet {
    fn for_map(map: &MemoryMap) -> Self {
        PointAddWorkingSet {
            coordinate_rows: 9,
            temporary_rows: 7,
            available_rows: map.scratch_rows(),
        }
    }

    /// Total rows the working set needs.
    pub fn required(&self) -> usize {
        self.coordinate_rows + self.temporary_rows
    }

    /// `true` when the array can hold the whole working set at once.
    pub fn fits(&self) -> bool {
        self.required() <= self.available_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_is_13_lut_rows_18_total() {
        assert_eq!(MemoryMap::lut_rows_paper(), 13);
        assert_eq!(MemoryMap::paper_rows_used(), 18);
    }

    #[test]
    fn rows_do_not_collide() {
        let map = MemoryMap::new(64, 256);
        let mut seen = std::collections::HashSet::new();
        let mut check = |r: usize| assert!(seen.insert(r), "row {r} allocated twice");
        for r in [
            MemoryMap::P,
            MemoryMap::B,
            MemoryMap::A,
            MemoryMap::SUM,
            MemoryMap::CARRY,
        ] {
            check(r);
        }
        for i in 0..5 {
            check(map.lut4_row(i));
        }
        for w in 0..12 {
            check(map.lutov_row(w));
        }
        for s in 0..map.scratch_rows() {
            check(map.scratch_row(s));
        }
        assert!(seen.iter().all(|&r| r < 64));
    }

    #[test]
    fn spill_rows_start_after_paper_entries() {
        let map = MemoryMap::new(64, 256);
        assert_eq!(map.lutov_row(7), MemoryMap::LUTOV_BASE + 7);
        assert_eq!(map.lutov_row(8), MemoryMap::LUTOV_SPILL_BASE);
        assert!(MemoryMap::is_spill_weight(8));
        assert!(!MemoryMap::is_spill_weight(7));
    }

    #[test]
    #[should_panic(expected = "spill range")]
    fn weight_12_is_rejected() {
        MemoryMap::new(64, 256).lutov_row(12);
    }

    #[test]
    fn point_add_fits_the_64_row_array() {
        // §5.2: the design fits an EC point addition's operands.
        let map = MemoryMap::new(64, 256);
        let ws = map.point_add_working_set();
        assert_eq!(map.scratch_rows(), 42);
        assert!(ws.fits());
        assert_eq!(ws.required(), 16);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_array_panics() {
        MemoryMap::new(8, 256);
    }
}
