//! Dataflow snapshots for the Figure 3 illustration.

use modsram_bigint::UBig;

/// Which half of the iteration a snapshot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Multiplier fetch into the near-memory FF.
    Fetch,
    /// Radix-4 LUT carry-save phase (Alg. 3 lines 7–9).
    Radix4,
    /// Overflow LUT carry-save phase (Alg. 3 lines 10–12).
    Overflow,
    /// Near-memory final addition and reduction (line 14).
    Finalize,
}

/// One per-cycle snapshot of the architectural state, captured when
/// tracing is enabled.
#[derive(Debug, Clone)]
pub struct DataflowSnapshot {
    /// Controller cycle (1-based).
    pub cycle: u64,
    /// Loop iteration (1-based; 0 for fetch/finalize).
    pub iteration: u64,
    /// Phase within the iteration.
    pub phase: Phase,
    /// Human-readable description of the micro-op executed this cycle.
    pub micro_op: String,
    /// Wordlines involved.
    pub rows: Vec<usize>,
    /// Full sum value (SRAM row + MSB flip-flop).
    pub sum: UBig,
    /// Full carry value (SRAM row + MSB flip-flop).
    pub carry: UBig,
    /// Overflow FFs `(ov_sum, ov_carry, pending)`.
    pub ov_ffs: (u8, u8, u8),
}

impl DataflowSnapshot {
    /// Renders the snapshot as one fixed-width trace line (binary values
    /// of `width` bits), in the spirit of Figure 3.
    pub fn render(&self, width: usize) -> String {
        format!(
            "cyc {:>4} it {:>3} {:<8} sum:{} carry:{} ov:({},{},{})  {}",
            self.cycle,
            self.iteration,
            match self.phase {
                Phase::Fetch => "fetch",
                Phase::Radix4 => "radix4",
                Phase::Overflow => "overflow",
                Phase::Finalize => "finalize",
            },
            self.sum.to_bin(width),
            self.carry.to_bin(width),
            self.ov_ffs.0,
            self.ov_ffs.1,
            self.ov_ffs.2,
            self.micro_op,
        )
    }
}
