//! The ModSRAM accelerator: a cycle-accurate model of the paper's
//! architecture (§4) executing R4CSA-LUT inside a simulated 8T SRAM
//! array.
//!
//! The pieces mirror Figure 4:
//!
//! * [`MemoryMap`] — wordline allocation on the 64×256 array: operands
//!   `A`/`B`/`p`, the `sum`/`carry` intermediate rows, the 13 LUT
//!   wordlines (5 radix-4 + 8 overflow), instrumented spill rows, and the
//!   scratch region sized for an elliptic-curve point addition (§5.2).
//! * [`Nmc`] — the near-memory circuit: Booth encoder, overflow
//!   combinational logic, the three full-width flip-flops (multiplier,
//!   sum, carry) plus small overflow FFs, and the shift-by-1/2 write-back
//!   paths. Counts its register writes (Figure 7's metric).
//! * `controller` — the FSM micro-op schedule. One multiplier fetch,
//!   then six cycles per radix-4 digit (two LUT phases, each
//!   activate-and-sense / write-back sum / write-back carry), with the
//!   two provably-zero carry write-backs of the first iteration elided:
//!   `1 + 4 + 6·(k−1) = 6k − 1` cycles — **767** at 256 bits, the
//!   paper's Table 3 headline.
//! * [`ModSram`] — the top-level device: owns the array, runs
//!   precomputation (LUT fill, reused across calls while `B`/`p` are
//!   unchanged — the paper's data-reuse claim), executes multiplications,
//!   and optionally verifies every phase against the word-level
//!   functional model from `modsram-modmul` in lock-step.
//! * [`cycles`] — the single home of the modelled-cycle constants and
//!   formulas (`6k − 1` per multiplication, the 13-wordline refill
//!   charge, per-engine latency models) shared by the service,
//!   dispatcher, and benches.
//! * [`dispatch`] — the staged serving layer: a work-stealing
//!   [`dispatch::Dispatcher`] over chunked batches, a per-modulus
//!   (optionally LRU-bounded) [`dispatch::ContextPool`], and the
//!   cost-aware chunk planner that [`BankedModSram`] seeds its banks
//!   with.
//! * [`autotune`] — self-tuning engine selection: an
//!   [`autotune::AutoTuner`] behind [`dispatch::ContextPool::auto`]
//!   picks the fastest registry engine per modulus (pinned, cached
//!   [`autotune::EngineProfile`] lookup, or a prepare-time calibration
//!   race) the way a JIT picks a code path.
//! * [`service`] — the streaming front-end: a [`service::ModSramService`]
//!   with cloneable submission handles, bounded-queue backpressure,
//!   completion tickets, and a coalescing batcher that drains the
//!   request stream into multiplicand-major batches for the
//!   dispatcher.
//! * [`cluster`] — multi-tile scale-out: a [`cluster::ServiceCluster`]
//!   routes jobs across N service tiles by per-modulus rendezvous
//!   affinity, spills to the least-loaded tile on backpressure
//!   ([`cluster::SpillPolicy`]), and routes around poisoned tiles.
//! * [`test_util`] — deterministic fault-injection doubles
//!   ([`test_util::FailingPrepared`], [`test_util::SlowPrepared`]) the
//!   service/cluster test suites drive the failure paths with.
//!
//! # Examples
//!
//! ```
//! use modsram_core::ModSram;
//! use modsram_bigint::UBig;
//!
//! let p = UBig::from(0xffff_fffb_u64); // a 32-bit prime
//! let mut dev = ModSram::for_modulus(&p).unwrap();
//! let (c, stats) = dev
//!     .mod_mul(&UBig::from(0x5ead_beefu64), &UBig::from(0x1234_5678u64))
//!     .unwrap();
//! assert_eq!(c, UBig::from((0x5ead_beefu64 * 0x1234_5678u64) % 0xffff_fffb));
//! assert_eq!(stats.cycles, 6 * 16 - 1); // ⌈32/2⌉ digits, MSB-clear multiplier
//! ```

pub mod autotune;
pub mod bank;
pub mod cluster;
mod controller;
pub mod cycles;
pub mod dispatch;
mod error;
pub mod isa;
mod memmap;
mod modsram;
mod nmc;
pub mod service;
pub mod session;
mod stats;
pub mod test_util;
pub mod trace;

pub use autotune::{AutoTuner, AutotuneStats, EngineProfile, Parity, TunePolicy};
pub use bank::{BankedModSram, BatchStats};
pub use cluster::{
    home_tile_for, rendezvous_ranking, weighted_home_tile_for, weighted_rendezvous_ranking,
    ClusterConfig, ClusterHandle, ClusterStats, ClusterSubmitError, MembershipChange, ProbeReport,
    ServiceCluster, SpillPolicy, TileStats,
};
pub use cycles::{
    modelled_batch_cycles, modelled_engine_mul_cycles, modelled_mul_cycles, LUT_REFILL_COST,
    MODELLED_REFILL_CYCLES,
};
pub use dispatch::{ContextPool, DispatchStats, Dispatcher, MulJob, StealPolicy};
pub use error::CoreError;
pub use isa::{Executor, MicroOp, Program, ProgramError};
pub use memmap::{MemoryMap, PointAddWorkingSet};
pub use modsram::{ModSram, ModSramConfig, PreparedModSram};
pub use nmc::Nmc;
pub use service::{
    ExecBackend, ModSramService, ServiceConfig, ServiceError, ServiceStats, SubmitError,
    SubmitHandle, Ticket, TileHealth,
};
pub use session::{ScratchSession, SessionStats, StagedPoint};
pub use stats::{PrecomputeStats, RunStats};
pub use trace::{DataflowSnapshot, Phase};
