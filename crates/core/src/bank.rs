//! Multi-bank ModSRAM — the paper's §6 system-level direction: several
//! independent macros executing a batch of modular multiplications in
//! parallel (the shape of an MSM/NTT accelerator built from ModSRAM
//! tiles).
//!
//! Since the sharded-dispatcher refactor, a bank is **any**
//! [`PreparedModMul`] context, obtained from the engine registry or
//! wrapped around a cycle-accurate device — the hardware model is one
//! pluggable backend among the engines, not a special case. Batches are
//! routed through [`crate::dispatch::Dispatcher`]: chunks are costed by
//! multiplicand changes (a LUT refill is not free), seeded onto banks
//! by least-loaded assignment, and executed by real scoped threads —
//! one per bank, matching the device model where each macro has a
//! private queue. The banked path pins [`StealPolicy::Static`] so the
//! modelled per-bank cycle and energy attribution is deterministic;
//! host-throughput callers that prefer work stealing can pass their own
//! dispatcher to [`BankedModSram::mod_mul_batch_with`].
//!
//! Energy is attributed **per bank** (before/after deltas on each
//! device, not one global sum), so holding a bank's device handle and
//! using it directly between batches no longer pollutes the next
//! batch's energy account.
//!
//! A tile serves **staged** batches: the caller already holds every
//! pair. To keep a tile saturated from callers that produce work one
//! request at a time, put a [`crate::service::ModSramService`] in
//! front — its coalescing batcher merges the submission stream into
//! multiplicand-major batches (bounded by
//! [`crate::service::ServiceConfig::max_batch`] and flushed at latest
//! every [`crate::service::ServiceConfig::flush_interval`]) before
//! handing them to the same dispatcher machinery used here.
//!
//! # Examples
//!
//! ```
//! use modsram_bigint::UBig;
//! use modsram_core::BankedModSram;
//!
//! let p = UBig::from(0xffff_fffb_u64);
//! // Four banks of prepared Montgomery contexts from the registry.
//! let tile = BankedModSram::with_engine_name(4, "montgomery", &p).unwrap();
//! let pairs: Vec<_> = (1..=8u64)
//!     .map(|i| (UBig::from(i), UBig::from(i + 1)))
//!     .collect();
//! let (results, stats) = tile.mod_mul_batch(&pairs).unwrap();
//! assert_eq!(results[2], UBig::from(12u64));
//! assert_eq!(stats.multiplications, 8);
//! ```

use std::sync::{Arc, Mutex};

use modsram_bigint::UBig;
use modsram_modmul::{engine_by_name, ModMulEngine, PreparedModMul};

use crate::dispatch::{DispatchStats, Dispatcher, StealPolicy};
use crate::error::CoreError;
use crate::modsram::{ModSram, ModSramConfig, PreparedModSram};

/// Aggregate statistics of one batch execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Multiplications executed.
    pub multiplications: u64,
    /// Makespan in cycles: the busiest bank's total (multiplication +
    /// LUT precompute when the multiplicand changes). Banks without a
    /// retained device handle — any [`BankedModSram::with_engine`] or
    /// [`BankedModSram::from_contexts`] tile, the device engine
    /// included — fall back to items executed, so the makespan is then
    /// a work-unit count.
    pub makespan_cycles: u64,
    /// Per-bank accumulated cycles ([`BankedModSram::new`] device
    /// tiles) or items executed (everything else).
    pub per_bank_cycles: Vec<u64>,
    /// Total energy across banks, picojoules (0 unless the tile
    /// retains device handles, i.e. was built by
    /// [`BankedModSram::new`]).
    pub energy_pj: f64,
    /// Per-bank energy deltas for this batch, picojoules. Summing this
    /// gives `energy_pj`; direct use of a bank's device **between**
    /// batches lands outside every window and is charged to no batch.
    pub per_bank_energy_pj: Vec<f64>,
    /// Chunks executed away from their seeded bank (0 on the default
    /// static-policy path).
    pub steals: u64,
    /// Host wall-clock for the batch, nanoseconds.
    pub elapsed_ns: u64,
}

impl BatchStats {
    /// Parallel speedup vs executing the same batch on one bank.
    pub fn speedup(&self) -> f64 {
        let total: u64 = self.per_bank_cycles.iter().sum();
        if self.makespan_cycles == 0 {
            1.0
        } else {
            total as f64 / self.makespan_cycles as f64
        }
    }
}

/// One bank: a prepared execution context, plus the device handle when
/// the backend is the cycle-accurate ModSRAM model.
struct BankShard {
    ctx: Arc<dyn PreparedModMul>,
    dev: Option<Arc<PreparedModSram>>,
}

/// A tile of independent banks sharing a modulus.
pub struct BankedModSram {
    shards: Vec<BankShard>,
    dispatcher: Dispatcher,
    /// Serialises *metered* batches: per-bank cycle/energy attribution
    /// reads each device's meters before and after the dispatch, so two
    /// concurrent batches on one device-backed tile would land inside
    /// each other's windows and double-count. Engine-backed tiles have
    /// no meters and skip the lock entirely.
    meter_lock: Mutex<()>,
}

impl core::fmt::Debug for BankedModSram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BankedModSram {{ banks: {}, engine: {} }}",
            self.shards.len(),
            self.engine_name()
        )
    }
}

impl BankedModSram {
    /// Builds `n_banks` identical cycle-accurate devices and loads `p`
    /// into each — the classic tile, and the only constructor that
    /// retains per-bank device handles, so batch statistics carry real
    /// cycle and energy meters (a device tile built through
    /// [`BankedModSram::with_engine`] executes identically but reports
    /// the work-unit fallback, like any engine bank).
    ///
    /// # Errors
    ///
    /// Propagates device construction/load errors.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks == 0`.
    pub fn new(n_banks: usize, config: ModSramConfig, p: &UBig) -> Result<Self, CoreError> {
        assert!(n_banks > 0, "need at least one bank");
        let mut shards = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            let mut dev = ModSram::new(config.clone())?;
            dev.load_modulus(p)?;
            let dev = Arc::new(PreparedModSram::from_device(dev)?);
            shards.push(BankShard {
                ctx: Arc::clone(&dev) as Arc<dyn PreparedModMul>,
                dev: Some(dev),
            });
        }
        Ok(Self::from_shards(shards))
    }

    /// Builds `n_banks` banks, each holding its own context prepared by
    /// `engine` — any [`ModMulEngine`], the ModSRAM device included.
    ///
    /// # Errors
    ///
    /// Propagates the engine's preparation error.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks == 0`.
    pub fn with_engine(
        n_banks: usize,
        engine: &dyn ModMulEngine,
        p: &UBig,
    ) -> Result<Self, CoreError> {
        assert!(n_banks > 0, "need at least one bank");
        let mut ctxs = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            ctxs.push(Arc::from(engine.prepare(p).map_err(CoreError::ModMul)?));
        }
        Ok(Self::from_contexts(ctxs))
    }

    /// Builds banks over a registry engine by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownEngine`] for a name absent from the
    /// registry; otherwise as [`BankedModSram::with_engine`].
    pub fn with_engine_name(n_banks: usize, name: &str, p: &UBig) -> Result<Self, CoreError> {
        let engine = engine_by_name(name).ok_or_else(|| CoreError::unknown_engine(name))?;
        Self::with_engine(n_banks, engine.as_ref(), p)
    }

    /// Builds a tile directly from prepared contexts (e.g. contexts
    /// drawn from a [`crate::dispatch::ContextPool`]).
    ///
    /// # Panics
    ///
    /// Panics if `ctxs` is empty or the contexts disagree on modulus.
    pub fn from_contexts(ctxs: Vec<Arc<dyn PreparedModMul>>) -> Self {
        assert!(!ctxs.is_empty(), "need at least one bank");
        assert!(
            ctxs.iter().all(|c| c.modulus() == ctxs[0].modulus()),
            "banks must share one modulus"
        );
        Self::from_shards(
            ctxs.into_iter()
                .map(|ctx| BankShard { ctx, dev: None })
                .collect(),
        )
    }

    fn from_shards(shards: Vec<BankShard>) -> Self {
        let dispatcher = Dispatcher::new(shards.len()).policy(StealPolicy::Static);
        BankedModSram {
            shards,
            dispatcher,
            meter_lock: Mutex::new(()),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.shards.len()
    }

    /// The backend engine's name.
    pub fn engine_name(&self) -> &'static str {
        self.shards[0].ctx.engine_name()
    }

    /// The shared modulus.
    pub fn modulus(&self) -> &UBig {
        self.shards[0].ctx.modulus()
    }

    /// The prepared context of bank `index`.
    pub fn context(&self, index: usize) -> &Arc<dyn PreparedModMul> {
        &self.shards[index].ctx
    }

    /// The device handle of bank `index`, when the backend is the
    /// cycle-accurate model.
    pub fn device(&self, index: usize) -> Option<&Arc<PreparedModSram>> {
        self.shards[index].dev.as_ref()
    }

    /// Runs `f` on bank `index`'s locked device (stats inspection,
    /// fault injection); `None` for engine-backed banks.
    pub fn with_bank_device<T>(
        &self,
        index: usize,
        f: impl FnOnce(&mut ModSram) -> T,
    ) -> Option<T> {
        self.shards[index].dev.as_ref().map(|d| d.with_device(f))
    }

    /// Snapshot of each device bank's `(cycles, energy)`; `None` slots
    /// for engine banks.
    fn bank_meters(&self) -> Vec<Option<(u64, f64)>> {
        self.shards
            .iter()
            .map(|s| s.dev.as_ref().map(|d| (d.total_cycles(), d.energy_pj())))
            .collect()
    }

    /// Executes a batch of multiplications across the banks through the
    /// tile's deterministic static-assignment dispatcher. Returns
    /// results in input order plus the aggregate statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first backend error encountered.
    pub fn mod_mul_batch(
        &self,
        pairs: &[(UBig, UBig)],
    ) -> Result<(Vec<UBig>, BatchStats), CoreError> {
        self.mod_mul_batch_with(pairs, &self.dispatcher)
    }

    /// As [`BankedModSram::mod_mul_batch`], but through a caller-owned
    /// dispatcher — e.g. a [`StealPolicy::WorkStealing`] one when host
    /// wall-clock matters more than deterministic per-bank attribution.
    ///
    /// Worker `w` of the dispatcher executes on bank
    /// `w % self.banks()`.
    ///
    /// # Errors
    ///
    /// Propagates the first backend error encountered.
    pub fn mod_mul_batch_with(
        &self,
        pairs: &[(UBig, UBig)],
        dispatcher: &Dispatcher,
    ) -> Result<(Vec<UBig>, BatchStats), CoreError> {
        // Device-backed tiles serialise whole batches so the per-bank
        // meter windows of concurrent callers cannot overlap (which
        // would double-count cycles and energy in both batches).
        let _meter_guard = self.shards.iter().any(|s| s.dev.is_some()).then(|| {
            self.meter_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        });
        let shards: Vec<Arc<dyn PreparedModMul>> =
            self.shards.iter().map(|s| Arc::clone(&s.ctx)).collect();
        let before = self.bank_meters();
        let (results, dstats) = dispatcher.dispatch_sharded(&shards, pairs)?;
        let after = self.bank_meters();
        Ok((results, self.aggregate(&before, &after, &dstats)))
    }

    /// Folds per-worker dispatch tallies and per-bank meter deltas into
    /// the tile-level [`BatchStats`].
    fn aggregate(
        &self,
        before: &[Option<(u64, f64)>],
        after: &[Option<(u64, f64)>],
        dstats: &DispatchStats,
    ) -> BatchStats {
        let n_banks = self.shards.len();
        let mut stats = BatchStats {
            multiplications: dstats.items,
            per_bank_cycles: vec![0; n_banks],
            per_bank_energy_pj: vec![0.0; n_banks],
            steals: dstats.steals,
            elapsed_ns: dstats.elapsed_ns,
            ..Default::default()
        };
        // Fold per-worker items onto banks (worker w drives bank
        // w % n_banks, and a dispatcher may run more workers than banks).
        let mut per_bank_items = vec![0u64; n_banks];
        for (w, items) in dstats.per_worker_items.iter().enumerate() {
            per_bank_items[w % n_banks] += items;
        }
        for (bank, (b, a)) in before.iter().zip(after).enumerate() {
            match (b, a) {
                (Some((c0, e0)), Some((c1, e1))) => {
                    stats.per_bank_cycles[bank] = c1 - c0;
                    stats.per_bank_energy_pj[bank] = e1 - e0;
                }
                _ => {
                    // Engine banks model no cycles or energy; report
                    // items executed as work units.
                    stats.per_bank_cycles[bank] = per_bank_items[bank];
                }
            }
        }
        stats.energy_pj = stats.per_bank_energy_pj.iter().sum();
        stats.makespan_cycles = stats.per_bank_cycles.iter().copied().max().unwrap_or(0);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsram_bigint::ubig_below;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config() -> ModSramConfig {
        ModSramConfig {
            n_bits: 32,
            ..Default::default()
        }
    }

    fn random_pairs(count: usize, p: &UBig, seed: u64) -> Vec<(UBig, UBig)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| (ubig_below(&mut rng, p), ubig_below(&mut rng, p)))
            .collect()
    }

    #[test]
    fn batch_results_match_oracle() {
        let p = UBig::from(0xffff_fffb_u64);
        let tile = BankedModSram::new(4, config(), &p).unwrap();
        let pairs = random_pairs(13, &p, 21);
        let (results, stats) = tile.mod_mul_batch(&pairs).unwrap();
        assert_eq!(results.len(), 13);
        for ((a, b), c) in pairs.iter().zip(&results) {
            assert_eq!(c, &(&(a * b) % &p));
        }
        assert_eq!(stats.multiplications, 13);
        assert_eq!(stats.per_bank_cycles.len(), 4);
        assert_eq!(stats.per_bank_energy_pj.len(), 4);
        assert_eq!(stats.steals, 0, "static policy never steals");
    }

    #[test]
    fn engine_banks_match_oracle() {
        let p = UBig::from(0xffff_fffb_u64);
        let pairs = random_pairs(17, &p, 31);
        for name in ["montgomery", "barrett", "radix4", "modsram"] {
            let tile = if name == "modsram" {
                BankedModSram::with_engine(3, &ModSram::new(config()).unwrap(), &p).unwrap()
            } else {
                BankedModSram::with_engine_name(3, name, &p).unwrap()
            };
            assert_eq!(tile.engine_name(), name);
            assert_eq!(tile.modulus(), &p);
            let (results, stats) = tile.mod_mul_batch(&pairs).unwrap();
            for ((a, b), c) in pairs.iter().zip(&results) {
                assert_eq!(c, &(&(a * b) % &p), "{name}");
            }
            assert_eq!(stats.multiplications, 17, "{name}");
        }
    }

    #[test]
    fn unknown_engine_name_is_reported() {
        let err =
            BankedModSram::with_engine_name(2, "no-such-engine", &UBig::from(97u64)).unwrap_err();
        assert_eq!(err, CoreError::unknown_engine("no-such-engine"));
        // The message names every registered engine so the fix is in the
        // error itself.
        let msg = err.to_string();
        assert!(msg.contains("'no-such-engine'"), "{msg}");
        assert!(msg.contains("r4csa-lut"), "{msg}");
        assert!(msg.contains("carryfree"), "{msg}");
    }

    #[test]
    fn parallel_speedup_approaches_bank_count() {
        let p = UBig::from(0xffff_fffb_u64);
        let pairs = random_pairs(32, &p, 22);

        let one = BankedModSram::new(1, config(), &p).unwrap();
        let (_, s1) = one.mod_mul_batch(&pairs).unwrap();
        let eight = BankedModSram::new(8, config(), &p).unwrap();
        let (_, s8) = eight.mod_mul_batch(&pairs).unwrap();

        assert!(s8.makespan_cycles < s1.makespan_cycles);
        let speedup = s1.makespan_cycles as f64 / s8.makespan_cycles as f64;
        assert!(speedup > 6.0, "speedup {speedup}");
        assert!((s8.speedup() - speedup).abs() / speedup < 0.2);
        // Work is conserved: both tiles execute the same multiplications
        // and refills, just spread differently.
        let total8: u64 = s8.per_bank_cycles.iter().sum();
        let ratio = total8 as f64 / s1.makespan_cycles as f64;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
    }

    #[test]
    fn energy_scales_with_work_not_banks() {
        let p = UBig::from(0xffff_fffb_u64);
        let pairs = random_pairs(8, &p, 23);
        let one = BankedModSram::new(1, config(), &p).unwrap();
        let (_, s1) = one.mod_mul_batch(&pairs).unwrap();
        let four = BankedModSram::new(4, config(), &p).unwrap();
        let (_, s4) = four.mod_mul_batch(&pairs).unwrap();
        // Same multiplications → comparable total energy (LUT refills
        // differ slightly since each bank fills its own tables).
        let ratio = s4.energy_pj / s1.energy_pj;
        assert!(ratio > 0.8 && ratio < 1.6, "ratio {ratio}");
        // Per-bank deltas sum to the total.
        let sum: f64 = s4.per_bank_energy_pj.iter().sum();
        assert!((sum - s4.energy_pj).abs() < 1e-9);
    }

    #[test]
    fn direct_bank_use_between_batches_is_not_charged_to_the_batch() {
        let p = UBig::from(0xffff_fffb_u64);
        let tile = BankedModSram::new(2, config(), &p).unwrap();
        let pairs = random_pairs(6, &p, 29);
        let (_, first) = tile.mod_mul_batch(&pairs).unwrap();

        // Hammer bank 0's device directly between batches.
        for i in 0..5u64 {
            tile.with_bank_device(0, |d| {
                d.mod_mul(&UBig::from(1234 + i), &UBig::from(777u64))
                    .unwrap();
            })
            .expect("device bank");
        }

        let (_, second) = tile.mod_mul_batch(&pairs).unwrap();
        // The second batch does the same work as the first (same pairs,
        // same per-bank assignment under the static policy), minus the
        // multiplicand refills already cached — so its energy cannot
        // exceed the first batch's. The seed's global before/after
        // delta held this too, but could not attribute it per bank.
        assert!(
            second.energy_pj <= first.energy_pj * 1.05,
            "direct use leaked into batch stats: {} vs {}",
            second.energy_pj,
            first.energy_pj
        );
        for (bank, (f, s)) in first
            .per_bank_energy_pj
            .iter()
            .zip(&second.per_bank_energy_pj)
            .enumerate()
        {
            assert!(s <= &(f * 1.05), "bank {bank}: {s} vs {f}");
        }
    }

    #[test]
    fn concurrent_batches_do_not_double_count_meters() {
        // Two threads batching on one device tile: the meter lock keeps
        // their attribution windows disjoint, so the batches' energy
        // totals partition the devices' overall energy delta exactly.
        let p = UBig::from(0xffff_fffb_u64);
        let tile = BankedModSram::new(2, config(), &p).unwrap();
        let pairs = random_pairs(6, &p, 77);
        let device_energy = |tile: &BankedModSram| -> f64 {
            (0..tile.banks())
                .map(|i| tile.device(i).expect("device tile").energy_pj())
                .sum()
        };
        let before = device_energy(&tile);
        let batch_energies = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let tile = &tile;
                let pairs = &pairs;
                let batch_energies = &batch_energies;
                scope.spawn(move || {
                    let (_, stats) = tile.mod_mul_batch(pairs).unwrap();
                    batch_energies
                        .lock()
                        .expect("collect lock")
                        .push(stats.energy_pj);
                });
            }
        });
        let after = device_energy(&tile);
        let attributed: f64 = batch_energies
            .into_inner()
            .expect("collect lock")
            .iter()
            .sum();
        assert!(
            (attributed - (after - before)).abs() < 1e-6,
            "attributed {attributed} vs actual {}",
            after - before
        );
    }

    #[test]
    fn uneven_multiplicand_costs_balance_across_banks() {
        // First half shares one multiplicand (one refill), second half
        // changes every pair (refill-heavy). Index round-robin would
        // split each half evenly by count, not by cost; least-loaded
        // seeding balances the refill-heavy chunks instead.
        let p = UBig::from(0xffff_fffb_u64);
        let shared = UBig::from(0x1234_5678u64);
        let mut pairs: Vec<(UBig, UBig)> = (0..16u64)
            .map(|i| (UBig::from(i + 2), shared.clone()))
            .collect();
        pairs.extend((0..16u64).map(|i| (UBig::from(i + 3), UBig::from(1000 + 7 * i))));
        let tile = BankedModSram::new(4, config(), &p).unwrap();
        let (results, stats) = tile.mod_mul_batch(&pairs).unwrap();
        for ((a, b), c) in pairs.iter().zip(&results) {
            assert_eq!(c, &(&(a * b) % &p));
        }
        let total: u64 = stats.per_bank_cycles.iter().sum();
        let ideal = total as f64 / 4.0;
        assert!(
            (stats.makespan_cycles as f64) < ideal * 1.6,
            "makespan {} vs ideal {ideal}",
            stats.makespan_cycles
        );
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankedModSram::new(0, config(), &UBig::from(97u64));
    }

    #[test]
    #[should_panic(expected = "share one modulus")]
    fn mixed_modulus_contexts_rejected() {
        use modsram_modmul::{DirectEngine, ModMulEngine as _};
        let a = Arc::from(DirectEngine::new().prepare(&UBig::from(97u64)).unwrap());
        let b = Arc::from(DirectEngine::new().prepare(&UBig::from(101u64)).unwrap());
        let _ = BankedModSram::from_contexts(vec![a, b]);
    }
}
