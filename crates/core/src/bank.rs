//! Multi-bank ModSRAM — the paper's §6 system-level direction, modelled:
//! several independent 64×256 macros executing a batch of modular
//! multiplications in parallel (the shape of an MSM/NTT accelerator
//! built from ModSRAM tiles).

use modsram_bigint::UBig;

use crate::error::CoreError;
use crate::modsram::{ModSram, ModSramConfig};

/// Aggregate statistics of one batch execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Multiplications executed.
    pub multiplications: u64,
    /// Makespan in cycles: the busiest bank's total (multiplication +
    /// LUT precompute when the multiplicand changes).
    pub makespan_cycles: u64,
    /// Per-bank accumulated cycles.
    pub per_bank_cycles: Vec<u64>,
    /// Total energy across banks, picojoules.
    pub energy_pj: f64,
}

impl BatchStats {
    /// Parallel speedup vs executing the same batch on one bank.
    pub fn speedup(&self) -> f64 {
        let total: u64 = self.per_bank_cycles.iter().sum();
        if self.makespan_cycles == 0 {
            1.0
        } else {
            total as f64 / self.makespan_cycles as f64
        }
    }
}

/// A tile of independent ModSRAM macros sharing a modulus.
#[derive(Debug)]
pub struct BankedModSram {
    banks: Vec<ModSram>,
}

impl BankedModSram {
    /// Builds `n_banks` identical devices and loads `p` into each.
    ///
    /// # Errors
    ///
    /// Propagates device construction/load errors; `n_banks` must be at
    /// least 1 or [`CoreError::NotEnoughRows`]-style misuse is reported
    /// as a panic (programmer error).
    ///
    /// # Panics
    ///
    /// Panics if `n_banks == 0`.
    pub fn new(n_banks: usize, config: ModSramConfig, p: &UBig) -> Result<Self, CoreError> {
        assert!(n_banks > 0, "need at least one bank");
        let mut banks = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            let mut dev = ModSram::new(config.clone())?;
            dev.load_modulus(p)?;
            banks.push(dev);
        }
        Ok(BankedModSram { banks })
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Access to an individual bank.
    pub fn bank(&self, index: usize) -> &ModSram {
        &self.banks[index]
    }

    /// Executes a batch of multiplications, round-robin across banks
    /// (all multiplications are the same length, so round-robin is
    /// within one job of optimal). Returns results in input order plus
    /// the aggregate statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first device error encountered.
    pub fn mod_mul_batch(
        &mut self,
        pairs: &[(UBig, UBig)],
    ) -> Result<(Vec<UBig>, BatchStats), CoreError> {
        let n_banks = self.banks.len();
        let mut results = Vec::with_capacity(pairs.len());
        let mut stats = BatchStats {
            per_bank_cycles: vec![0; n_banks],
            ..Default::default()
        };
        let energy_before: f64 = self.banks.iter().map(|b| b.array().stats().energy_pj).sum();
        for (i, (a, b)) in pairs.iter().enumerate() {
            let bank = &mut self.banks[i % n_banks];
            let pre_before = bank.precompute_total.cycles;
            let (c, run) = bank.mod_mul(a, b)?;
            let pre_cycles = bank.precompute_total.cycles - pre_before;
            stats.per_bank_cycles[i % n_banks] += run.cycles + pre_cycles;
            stats.multiplications += 1;
            results.push(c);
        }
        let energy_after: f64 = self.banks.iter().map(|b| b.array().stats().energy_pj).sum();
        stats.energy_pj = energy_after - energy_before;
        stats.makespan_cycles = stats.per_bank_cycles.iter().copied().max().unwrap_or(0);
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsram_bigint::ubig_below;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config() -> ModSramConfig {
        ModSramConfig {
            n_bits: 32,
            ..Default::default()
        }
    }

    #[test]
    fn batch_results_match_oracle() {
        let p = UBig::from(0xffff_fffb_u64);
        let mut tile = BankedModSram::new(4, config(), &p).unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let pairs: Vec<(UBig, UBig)> = (0..13)
            .map(|_| (ubig_below(&mut rng, &p), ubig_below(&mut rng, &p)))
            .collect();
        let (results, stats) = tile.mod_mul_batch(&pairs).unwrap();
        assert_eq!(results.len(), 13);
        for ((a, b), c) in pairs.iter().zip(&results) {
            assert_eq!(c, &(&(a * b) % &p));
        }
        assert_eq!(stats.multiplications, 13);
        assert_eq!(stats.per_bank_cycles.len(), 4);
    }

    #[test]
    fn parallel_speedup_approaches_bank_count() {
        let p = UBig::from(0xffff_fffb_u64);
        let mut rng = SmallRng::seed_from_u64(22);
        let pairs: Vec<(UBig, UBig)> = (0..32)
            .map(|_| (ubig_below(&mut rng, &p), ubig_below(&mut rng, &p)))
            .collect();

        let mut one = BankedModSram::new(1, config(), &p).unwrap();
        let (_, s1) = one.mod_mul_batch(&pairs).unwrap();
        let mut eight = BankedModSram::new(8, config(), &p).unwrap();
        let (_, s8) = eight.mod_mul_batch(&pairs).unwrap();

        assert!(s8.makespan_cycles < s1.makespan_cycles);
        let speedup = s1.makespan_cycles as f64 / s8.makespan_cycles as f64;
        assert!(speedup > 6.0, "speedup {speedup}");
        assert!((s8.speedup() - speedup).abs() / speedup < 0.2);
    }

    #[test]
    fn energy_scales_with_work_not_banks() {
        let p = UBig::from(0xffff_fffb_u64);
        let mut rng = SmallRng::seed_from_u64(23);
        let pairs: Vec<(UBig, UBig)> = (0..8)
            .map(|_| (ubig_below(&mut rng, &p), ubig_below(&mut rng, &p)))
            .collect();
        let mut one = BankedModSram::new(1, config(), &p).unwrap();
        let (_, s1) = one.mod_mul_batch(&pairs).unwrap();
        let mut four = BankedModSram::new(4, config(), &p).unwrap();
        let (_, s4) = four.mod_mul_batch(&pairs).unwrap();
        // Same multiplications → comparable total energy (LUT refills
        // differ slightly since each bank fills its own tables).
        let ratio = s4.energy_pj / s1.energy_pj;
        assert!(ratio > 0.8 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankedModSram::new(0, config(), &UBig::from(97u64));
    }
}
