//! The single home of the modelled-cycle constants and formulas shared
//! by the serving stack.
//!
//! Before this module existed, the `6k − 1` per-multiplication formula
//! and the 13-wordline refill charge lived in `service.rs` while the
//! planning-unit refill cost lived in `dispatch.rs`; both re-export from
//! here now, so an engine with a different latency shape (e.g. the
//! carry-free engine's `3n + 2`) plugs its model in exactly once — see
//! [`modelled_engine_mul_cycles`].

use modsram_bigint::UBig;
use modsram_modmul::modelled_cycles_by_name;

use crate::dispatch::{plan_job_chunks, seed_assignments, MulJob};

/// Wordline rewrites charged per multiplicand change in the modelled
/// latency estimate: the 5 radix-4 rows of Table 1b plus the 8
/// overflow-LUT rows are rewritten whenever `B` changes.
pub const MODELLED_REFILL_CYCLES: u64 = 13;

/// Relative cost (in multiplication-equivalents) charged per
/// multiplicand change when estimating chunk costs: rebuilding the five
/// Table 1b wordlines plus the near-memory derivations is on the order
/// of several multiplications' worth of row writes.
pub const LUT_REFILL_COST: u64 = 8;

/// Modelled cycles of one R4CSA-LUT multiplication at `bits` operand
/// width: `6·⌈bits/2⌉ − 1` (the paper's Table 3 formula — 767 cycles at
/// 256 bits).
pub fn modelled_mul_cycles(bits: usize) -> u64 {
    let digits = bits.div_ceil(2).max(1) as u64;
    6 * digits - 1
}

/// Modelled cycles of one multiplication on a named registry engine,
/// routed through the engine's own `CycleModel` via
/// [`modelled_cycles_by_name`]. Names with no hardware model (`direct`,
/// unknown) fall back to the R4CSA-LUT device formula — the service
/// models an R4CSA device unless told otherwise.
pub fn modelled_engine_mul_cycles(engine_name: &str, bits: usize) -> u64 {
    modelled_cycles_by_name(engine_name, bits).unwrap_or_else(|| modelled_mul_cycles(bits))
}

/// Modelled makespan, in device cycles, of executing `jobs` as one
/// coalesced batch over `workers` lanes: chunks are planned and seeded
/// exactly as the dispatcher would, each chunk is costed with
/// [`modelled_mul_cycles`] per job plus [`MODELLED_REFILL_CYCLES`] per
/// multiplicand change, and the makespan is the busiest lane's total.
pub fn modelled_batch_cycles(jobs: &[MulJob], workers: usize, chunk_target: usize) -> u64 {
    if jobs.is_empty() {
        return 0;
    }
    let chunks = plan_job_chunks(jobs, chunk_target);
    let cycles: Vec<u64> = chunks
        .iter()
        .map(|c| {
            let mut cyc = 0u64;
            let mut prev: Option<&UBig> = None;
            for job in &jobs[c.range.clone()] {
                cyc += modelled_mul_cycles(job.modulus.bit_len());
                if prev != Some(&job.b) {
                    cyc += MODELLED_REFILL_CYCLES;
                }
                prev = Some(&job.b);
            }
            cyc
        })
        .collect();
    let lanes = workers.min(chunks.len()).max(1);
    seed_assignments(&chunks, lanes)
        .iter()
        .map(|ids| ids.iter().map(|&i| cycles[i]).sum::<u64>())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_cycles() {
        assert_eq!(modelled_mul_cycles(256), 767);
        assert_eq!(modelled_mul_cycles(0), 5); // one digit minimum
    }

    #[test]
    fn refill_constant_matches_wordline_budget() {
        // 5 Table 1b rows + 8 paper Table 2 rows.
        assert_eq!(MODELLED_REFILL_CYCLES, 13);
    }

    #[test]
    fn engine_models_route_by_name() {
        assert_eq!(
            modelled_engine_mul_cycles("r4csa-lut", 256),
            modelled_mul_cycles(256)
        );
        assert_eq!(modelled_engine_mul_cycles("carryfree", 256), 3 * 256 + 2);
        // Unknown names take the device default.
        assert_eq!(
            modelled_engine_mul_cycles("no-such-engine", 64),
            modelled_mul_cycles(64)
        );
    }

    #[test]
    fn batch_cycles_charge_refills_per_multiplicand_change() {
        let p = UBig::from(97u64);
        let same_b: Vec<MulJob> = (0..8u64)
            .map(|i| MulJob::new(UBig::from(i), UBig::from(7u64), p.clone()))
            .collect();
        let mixed_b: Vec<MulJob> = (0..8u64)
            .map(|i| MulJob::new(UBig::from(i), UBig::from(i + 1), p.clone()))
            .collect();
        let same = modelled_batch_cycles(&same_b, 1, 64);
        let mixed = modelled_batch_cycles(&mixed_b, 1, 64);
        assert!(mixed > same, "distinct multiplicands must cost refills");
        assert_eq!(mixed - same, 7 * MODELLED_REFILL_CYCLES);
    }
}
