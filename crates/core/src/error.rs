//! Error type for the accelerator.

use core::fmt;

use modsram_modmul::ModMulError;

/// Errors produced by the ModSRAM device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The configured array cannot hold the requested operand width.
    WidthExceedsArray {
        /// Requested operand bits.
        n_bits: usize,
        /// Available columns.
        cols: usize,
    },
    /// The configured array has too few wordlines for the memory map.
    NotEnoughRows {
        /// Rows required by the memory map.
        required: usize,
        /// Rows available.
        available: usize,
    },
    /// An operand exceeded the configured width.
    OperandTooWide {
        /// Bits of the offending operand.
        operand_bits: usize,
        /// Configured width.
        n_bits: usize,
    },
    /// No modulus has been loaded yet.
    NoModulus,
    /// No multiplicand has been loaded yet (LUT-radix4 rows are empty).
    NoMultiplicand,
    /// An algorithm-level error (zero modulus etc.).
    ModMul(ModMulError),
    /// A bank/dispatch construction named an engine absent from the
    /// registry. Build it with [`CoreError::unknown_engine`] so the
    /// message lists what *is* registered.
    UnknownEngine {
        /// The name that failed to resolve.
        name: String,
        /// The names that would have resolved, in registry order.
        known: Vec<String>,
    },
    /// A shared lock was poisoned by a panicking holder; the protected
    /// state can no longer be trusted, so the operation is refused
    /// instead of unwinding the caller.
    PoisonedLock {
        /// Which lock was found poisoned.
        what: &'static str,
    },
    /// A planner handed the dispatcher a chunk covering no items —
    /// impossible through the public planning functions, surfaced as an
    /// error rather than an index panic for callers that build chunks
    /// by hand.
    EmptyChunk,
    /// A streaming submission raced a [`crate::service::ModSramService`]
    /// shutdown: the job was not executed.
    ServiceStopped,
    /// A routed submission raced a
    /// [`crate::cluster::ServiceCluster`] shutdown: the job was not
    /// executed on any tile.
    ClusterStopped,
    /// A non-blocking cluster submission found every tile its
    /// [`crate::cluster::SpillPolicy`] allowed at capacity (under
    /// `Strict` that is the home tile alone) — the caller should shed
    /// load or retry with backoff.
    AllTilesSaturated {
        /// Tiles whose queues refused the job.
        tried: usize,
    },
    /// A membership operation named a tile index outside the cluster
    /// (tile ids are stable: indices never shrink, so this means the
    /// tile never existed).
    UnknownTile {
        /// The out-of-range tile index.
        tile: usize,
    },
    /// [`crate::cluster::ServiceCluster::drain_tile`] targeted a tile
    /// that is already draining or drained — a drain is in progress
    /// (or complete); wait for probation to re-admit the tile before
    /// draining it again.
    TileDraining {
        /// The tile already out of the routable set.
        tile: usize,
    },
    /// A membership operation tried to set a tile's capacity weight to
    /// zero. Weights are multiplicative capacity in the weighted
    /// rendezvous score, not membership — take a tile out of service
    /// with [`crate::cluster::ServiceCluster::drain_tile`] instead.
    ZeroTileWeight {
        /// The tile the zero weight was aimed at.
        tile: usize,
    },
    /// A structurally invalid micro-program (see [`crate::isa`]).
    Program(crate::isa::ProgramError),
    /// Lock-step verification against the functional model diverged —
    /// only possible when fault injection is enabled.
    ModelDivergence {
        /// Loop iteration (1-based) where the divergence was detected.
        iteration: u64,
        /// Which value diverged.
        what: &'static str,
    },
    /// The OS refused to spawn a service thread (resource exhaustion).
    /// Only [`crate::service::ModSramService::try_with_shared_pool`]
    /// surfaces this; the panicking constructors treat it as fatal.
    Spawn {
        /// Which thread failed to start.
        what: &'static str,
    },
}

impl CoreError {
    /// Builds [`CoreError::UnknownEngine`] for `name`, capturing the
    /// registry's current engine list so the message tells the caller
    /// what would have worked.
    pub fn unknown_engine(name: &str) -> Self {
        CoreError::UnknownEngine {
            name: name.to_string(),
            known: modsram_modmul::engine_names()
                .into_iter()
                .map(str::to_string)
                .collect(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::WidthExceedsArray { n_bits, cols } => {
                write!(f, "operand width {n_bits} exceeds array columns {cols}")
            }
            CoreError::NotEnoughRows {
                required,
                available,
            } => write!(f, "memory map needs {required} rows, array has {available}"),
            CoreError::OperandTooWide {
                operand_bits,
                n_bits,
            } => write!(
                f,
                "operand has {operand_bits} bits, device is configured for {n_bits}"
            ),
            CoreError::NoModulus => write!(f, "no modulus loaded"),
            CoreError::NoMultiplicand => write!(f, "no multiplicand loaded"),
            CoreError::ModMul(e) => write!(f, "{e}"),
            CoreError::UnknownEngine { name, known } => {
                write!(
                    f,
                    "no engine named '{name}' in the registry (registered: {})",
                    known.join(", ")
                )
            }
            CoreError::PoisonedLock { what } => {
                write!(f, "the {what} lock was poisoned by a panicking holder")
            }
            CoreError::EmptyChunk => write!(f, "a dispatched chunk covered no items"),
            CoreError::ServiceStopped => {
                write!(f, "the service shut down before the job could run")
            }
            CoreError::ClusterStopped => {
                write!(f, "the cluster shut down before the job could be routed")
            }
            CoreError::AllTilesSaturated { tried } => {
                write!(
                    f,
                    "all {tried} tile(s) the spill policy allows are at queue capacity"
                )
            }
            CoreError::UnknownTile { tile } => {
                write!(f, "no tile with index {tile} exists in this cluster")
            }
            CoreError::TileDraining { tile } => {
                write!(f, "tile {tile} is already draining or drained")
            }
            CoreError::ZeroTileWeight { tile } => {
                write!(
                    f,
                    "tile {tile} cannot take capacity weight 0 (drain it instead)"
                )
            }
            CoreError::Program(e) => write!(f, "{e}"),
            CoreError::ModelDivergence { iteration, what } => write!(
                f,
                "in-SRAM result diverged from the functional model at iteration {iteration} ({what})"
            ),
            CoreError::Spawn { what } => {
                write!(f, "could not spawn the {what} (thread resources exhausted)")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::ModMul(e) => Some(e),
            CoreError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModMulError> for CoreError {
    fn from(e: ModMulError) -> Self {
        CoreError::ModMul(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::WidthExceedsArray {
            n_bits: 300,
            cols: 256,
        };
        assert_eq!(e.to_string(), "operand width 300 exceeds array columns 256");
        let e: CoreError = ModMulError::ZeroModulus.into();
        assert_eq!(e.to_string(), "modulus must be non-zero");
    }

    #[test]
    fn unknown_engine_lists_the_registry() {
        let e = CoreError::unknown_engine("no-such-engine");
        let msg = e.to_string();
        assert!(
            msg.starts_with("no engine named 'no-such-engine' in the registry"),
            "unexpected message: {msg}"
        );
        // Every registered name must appear so a typo is self-correcting.
        for name in modsram_modmul::engine_names() {
            assert!(msg.contains(name), "message misses '{name}': {msg}");
        }
    }
}
