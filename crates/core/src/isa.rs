//! A micro-op ISA for the ModSRAM sequencer.
//!
//! The paper's controller is a fixed FSM (§4.3, "FSM for near-memory
//! ... realized via Verilog"); the crate's private `controller` module
//! reproduces it cycle-accurately. This module is the programmable-PIM extension the
//! generic-processing-in-SRAM line of work (Sridharan et al.) points
//! towards: the same datapath driven by an explicit micro-program.
//!
//! * [`MicroOp`] — the nine primitives the datapath supports; each
//!   charges the same cycle cost the FSM does.
//! * [`Program`] — a validated sequence with a text assembly format
//!   ([`Program::parse`] / [`Program::to_text`] round-trip).
//! * [`Program::r4csa`] — compiles Algorithm 3 for `k` Booth digits
//!   into exactly the FSM's schedule (`6k − 1` cycles).
//! * [`Executor`] — interprets a program against a [`ModSram`] device;
//!   on the generated program it reproduces the FSM run bit for bit
//!   (result, cycles, register writes — asserted in tests and in
//!   `tests/accelerator.rs`).
//!
//! Because the ISA is explicit, *mis*-programmed schedules become
//! expressible — the executor validates structural preconditions (an
//! activation before any write-back, a finisher before the end) and
//! returns [`ProgramError`] instead of computing garbage.

use modsram_bigint::UBig;
use modsram_modmul::{LutRadix4, TimingPolicy};
use std::fmt;

use crate::error::CoreError;
use crate::memmap::MemoryMap;
use crate::modsram::ModSram;
use crate::stats::RunStats;

/// One datapath micro-operation.
///
/// Cycle costs match the FSM: every activation and row write-back is
/// one cycle; FF-only bookkeeping (`LatchOverflowFfs`) shares the edge
/// of the preceding write-back and is free; `LoadOperand` is memory
/// traffic outside the multiply (charged to the caller, as in §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Write the operand `A` wordline from the input bus.
    LoadOperand,
    /// Read the `A` row into the multiplier FF (cycle 1 of the run).
    FetchMultiplier,
    /// Booth-encode the multiplier FF's top bits, activate the selected
    /// LUT-radix4 row together with whichever of sum/carry are live,
    /// and latch XOR3/MAJ.
    ActivateRadix4 {
        /// Sum row participates in the activation.
        sum: bool,
        /// Carry row participates in the activation.
        carry: bool,
    },
    /// Assemble the overflow index from the NMC FFs, activate the
    /// selected LUT-overflow row plus live sum/carry, latch XOR3/MAJ.
    ActivateOverflow {
        /// Sum row participates in the activation.
        sum: bool,
        /// Carry row participates in the activation.
        carry: bool,
    },
    /// Write the latched XOR3 word back to the sum row, pre-shifted
    /// left by `shift` (0 or 2 — the fused ×4 of Alg. 3 lines 4–5).
    WritebackSum {
        /// Pre-shift amount (0 or 2).
        shift: u8,
    },
    /// Write the latched MAJ word (structurally ≪1) back to the carry
    /// row, pre-shifted left by `shift`.
    WritebackCarry {
        /// Pre-shift amount (0 or 2).
        shift: u8,
    },
    /// Load the shift-escape and pending FFs for the next iteration's
    /// overflow index (same clock edge as the preceding write-back).
    LatchOverflowFfs {
        /// The pre-shift the surrounding write-backs used.
        shift: u8,
    },
    /// Near-memory final addition and reduction (Alg. 3 line 14).
    Finalize,
}

impl MicroOp {
    /// Clock cycles this op charges.
    pub fn cycles(self) -> u64 {
        match self {
            MicroOp::LoadOperand | MicroOp::LatchOverflowFfs { .. } | MicroOp::Finalize => 0,
            _ => 1,
        }
    }

    fn mnemonic(self) -> String {
        let live = |sum: bool, carry: bool| match (sum, carry) {
            (false, false) => String::new(),
            (true, false) => " +sum".to_string(),
            (false, true) => " +carry".to_string(),
            (true, true) => " +sum +carry".to_string(),
        };
        match self {
            MicroOp::LoadOperand => "load.a".to_string(),
            MicroOp::FetchMultiplier => "fetch".to_string(),
            MicroOp::ActivateRadix4 { sum, carry } => format!("act.r4{}", live(sum, carry)),
            MicroOp::ActivateOverflow { sum, carry } => format!("act.ov{}", live(sum, carry)),
            MicroOp::WritebackSum { shift } => format!("wb.sum <<{shift}"),
            MicroOp::WritebackCarry { shift } => format!("wb.carry <<{shift}"),
            MicroOp::LatchOverflowFfs { shift } => format!("latch.ff <<{shift}"),
            MicroOp::Finalize => "finish".to_string(),
        }
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// A structural problem detected while parsing or executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Unknown mnemonic or malformed operand at a source line.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A write-back with nothing latched, a fetch after digits were
    /// consumed, etc.
    IllegalSequence {
        /// Program counter of the offending op.
        pc: usize,
        /// The op.
        op: String,
        /// Why it is illegal here.
        reason: String,
    },
    /// The program ended without a `finish` op.
    MissingFinalize,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ProgramError::IllegalSequence { pc, op, reason } => {
                write!(f, "illegal op `{op}` at pc {pc}: {reason}")
            }
            ProgramError::MissingFinalize => write!(f, "program has no `finish` op"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated micro-program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    ops: Vec<MicroOp>,
}

impl Program {
    /// Wraps a raw op sequence.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        Program { ops }
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Total clock cycles the program charges.
    pub fn cycles(&self) -> u64 {
        self.ops.iter().map(|op| op.cycles()).sum()
    }

    /// Compiles Algorithm 3 for `k` Booth digits into the FSM's exact
    /// schedule: fetch, a 4-cycle first iteration (carry structurally
    /// zero), 6-cycle steady-state iterations, near-memory finish —
    /// `6k − 1` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0.
    pub fn r4csa(k: usize) -> Self {
        assert!(k > 0, "at least one Booth digit");
        let mut ops = vec![MicroOp::LoadOperand, MicroOp::FetchMultiplier];
        for i in 1..=k {
            let sum_live = i > 1;
            let carry_live = i > 2;
            let carry_after_r4 = i > 1;
            let shift = if i < k { 2 } else { 0 };

            ops.push(MicroOp::ActivateRadix4 {
                sum: sum_live,
                carry: carry_live,
            });
            ops.push(MicroOp::WritebackSum { shift: 0 });
            if carry_after_r4 {
                ops.push(MicroOp::WritebackCarry { shift: 0 });
            }
            ops.push(MicroOp::ActivateOverflow {
                sum: true,
                carry: carry_after_r4,
            });
            ops.push(MicroOp::WritebackSum { shift });
            if carry_after_r4 {
                ops.push(MicroOp::WritebackCarry { shift });
            }
            ops.push(MicroOp::LatchOverflowFfs { shift });
        }
        ops.push(MicroOp::Finalize);
        Program { ops }
    }

    /// Disassembles to the text format accepted by [`Program::parse`]
    /// (one op per line, `;` comments allowed).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for op in &self.ops {
            s.push_str(&op.mnemonic());
            s.push('\n');
        }
        s
    }

    /// Parses the assembly text format.
    ///
    /// Grammar per line (blank lines and `;` comments ignored):
    ///
    /// ```text
    /// load.a | fetch | finish
    /// act.r4   [+sum] [+carry]
    /// act.ov   [+sum] [+carry]
    /// wb.sum   <<0 | <<2
    /// wb.carry <<0 | <<2
    /// latch.ff <<0 | <<2
    /// ```
    ///
    /// # Errors
    ///
    /// [`ProgramError::Parse`] with the offending line number.
    pub fn parse(text: &str) -> Result<Self, ProgramError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let src = raw.split(';').next().unwrap_or("").trim();
            if src.is_empty() {
                continue;
            }
            let mut parts = src.split_whitespace();
            let head = parts.next().expect("non-empty line has a token");
            let rest: Vec<&str> = parts.collect();
            let parse_live = |rest: &[&str]| -> Result<(bool, bool), String> {
                let mut sum = false;
                let mut carry = false;
                for tok in rest {
                    match *tok {
                        "+sum" => sum = true,
                        "+carry" => carry = true,
                        other => return Err(format!("unexpected token `{other}`")),
                    }
                }
                Ok((sum, carry))
            };
            let parse_shift = |rest: &[&str]| -> Result<u8, String> {
                match rest {
                    ["<<0"] => Ok(0),
                    ["<<2"] => Ok(2),
                    [] => Err("missing shift (expected <<0 or <<2)".to_string()),
                    other => Err(format!("unexpected tokens {other:?}")),
                }
            };
            let op = match head {
                "load.a" => MicroOp::LoadOperand,
                "fetch" => MicroOp::FetchMultiplier,
                "finish" => MicroOp::Finalize,
                "act.r4" => {
                    let (sum, carry) = parse_live(&rest)
                        .map_err(|message| ProgramError::Parse { line, message })?;
                    MicroOp::ActivateRadix4 { sum, carry }
                }
                "act.ov" => {
                    let (sum, carry) = parse_live(&rest)
                        .map_err(|message| ProgramError::Parse { line, message })?;
                    MicroOp::ActivateOverflow { sum, carry }
                }
                "wb.sum" => MicroOp::WritebackSum {
                    shift: parse_shift(&rest)
                        .map_err(|message| ProgramError::Parse { line, message })?,
                },
                "wb.carry" => MicroOp::WritebackCarry {
                    shift: parse_shift(&rest)
                        .map_err(|message| ProgramError::Parse { line, message })?,
                },
                "latch.ff" => MicroOp::LatchOverflowFfs {
                    shift: parse_shift(&rest)
                        .map_err(|message| ProgramError::Parse { line, message })?,
                },
                other => {
                    return Err(ProgramError::Parse {
                        line,
                        message: format!("unknown mnemonic `{other}`"),
                    })
                }
            };
            ops.push(op);
        }
        Ok(Program { ops })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ops, {} cycles", self.ops.len(), self.cycles())
    }
}

/// Interprets [`Program`]s against a [`ModSram`] device.
///
/// # Examples
///
/// ```
/// use modsram_bigint::UBig;
/// use modsram_core::{Executor, ModSram, Program};
///
/// let p = UBig::from(97u64);
/// let mut dev = ModSram::for_modulus(&p)?;
/// dev.load_multiplicand(&UBig::from(44u64))?;
///
/// let mut exec = Executor::new();
/// let (c, stats) = exec.run_mod_mul(&mut dev, &UBig::from(55u64))?;
/// assert_eq!(c, UBig::from((55u64 * 44) % 97));
/// assert_eq!(stats.cycles, exec.last_program().unwrap().cycles());
/// # Ok::<(), modsram_core::CoreError>(())
/// ```
#[derive(Debug, Default)]
pub struct Executor {
    latched_xor: UBig,
    latched_maj: UBig,
    csa1_msb: u8,
    pending_out: u8,
    last_program: Option<Program>,
}

impl Executor {
    /// A fresh executor with no latched state.
    pub fn new() -> Self {
        Executor::default()
    }

    /// The program most recently compiled by
    /// [`Executor::run_mod_mul`].
    pub fn last_program(&self) -> Option<&Program> {
        self.last_program.as_ref()
    }

    /// Compiles [`Program::r4csa`] for the digit count `a` needs on
    /// `dev` and runs it.
    ///
    /// # Errors
    ///
    /// As [`Executor::run`], plus [`CoreError::NoModulus`] /
    /// [`CoreError::NoMultiplicand`] when the device is not loaded.
    pub fn run_mod_mul(
        &mut self,
        dev: &mut ModSram,
        a: &UBig,
    ) -> Result<(UBig, RunStats), CoreError> {
        let p = dev.modulus().cloned().ok_or(CoreError::NoModulus)?;
        let n = dev.config().n_bits;
        let a_c = a % &p;
        let mut k = modsram_bigint::radix4_digits_msb_first(&a_c, n).len();
        if dev.config().policy == TimingPolicy::ConstantTime {
            k = k.max((n + 1).div_ceil(2));
        }
        let program = Program::r4csa(k);
        let result = self.run(dev, &program, &a_c);
        self.last_program = Some(program);
        result
    }

    /// Runs `program` to multiply `a` by the loaded multiplicand modulo
    /// the loaded modulus.
    ///
    /// # Errors
    ///
    /// [`CoreError::Program`] when the op sequence is structurally
    /// invalid for the datapath; [`CoreError::ModelDivergence`] when
    /// device verification is on and the program's result disagrees
    /// with the arithmetic oracle.
    pub fn run(
        &mut self,
        dev: &mut ModSram,
        program: &Program,
        a: &UBig,
    ) -> Result<(UBig, RunStats), CoreError> {
        let p = dev.modulus().cloned().ok_or(CoreError::NoModulus)?;
        let b = dev
            .multiplicand()
            .cloned()
            .ok_or(CoreError::NoMultiplicand)?;
        let n = dev.config().n_bits;
        let w = n + 1;
        let a_c = a % &p;
        let mut k = modsram_bigint::radix4_digits_msb_first(&a_c, n).len();
        if dev.config().policy == TimingPolicy::ConstantTime {
            k = k.max((n + 1).div_ceil(2));
        }

        // Reset device + executor latches.
        dev.nmc.ov_sum_ff = 0;
        dev.nmc.ov_carry_ff = 0;
        dev.nmc.pending_ff = 0;
        dev.sum_msb = false;
        dev.carry_msb = false;
        self.latched_xor = UBig::zero();
        self.latched_maj = UBig::zero();
        self.csa1_msb = 0;
        self.pending_out = 0;

        let start_sram = dev.array.stats().clone();
        let start_regs = dev.nmc.register_writes;
        let mut stats = RunStats::default();
        let mut cycle: u64 = 0;
        let mut fetched = false;
        let mut loaded = false;
        let mut latched = false;
        let mut digits_used = 0usize;
        let mut finished: Option<UBig> = None;

        let illegal = |pc: usize, op: MicroOp, reason: &str| {
            CoreError::Program(ProgramError::IllegalSequence {
                pc,
                op: op.to_string(),
                reason: reason.to_string(),
            })
        };

        for (pc, &op) in program.ops().iter().enumerate() {
            if finished.is_some() {
                return Err(illegal(pc, op, "op after finish"));
            }
            match op {
                MicroOp::LoadOperand => {
                    dev.array.write_row(MemoryMap::A, a_c.limbs());
                    loaded = true;
                }
                MicroOp::FetchMultiplier => {
                    if !loaded {
                        return Err(illegal(pc, op, "fetch before load.a"));
                    }
                    let row = UBig::from_limbs(dev.array.read_row(MemoryMap::A));
                    dev.nmc.load_multiplier(&row, k.max(1));
                    fetched = true;
                    cycle += 1;
                }
                MicroOp::ActivateRadix4 { sum, carry } => {
                    if !fetched {
                        return Err(illegal(pc, op, "activation before fetch"));
                    }
                    if digits_used >= k {
                        return Err(illegal(pc, op, "multiplier digits exhausted"));
                    }
                    let digit = dev.nmc.next_digit();
                    digits_used += 1;
                    let row = dev.map.lut4_row(LutRadix4::index_of(digit));
                    let (x, m) = self.activate(dev, row, sum, carry);
                    self.csa1_msb = ((&m << 1).bit(w)) as u8;
                    self.latched_xor = x;
                    self.latched_maj = m;
                    latched = true;
                    cycle += 1;
                    stats.activations += 1;
                }
                MicroOp::ActivateOverflow { sum, carry } => {
                    if !latched {
                        return Err(illegal(pc, op, "overflow phase before radix-4 phase"));
                    }
                    let ov = dev.nmc.take_overflow_index(self.csa1_msb);
                    stats.max_ov_index = stats.max_ov_index.max(ov);
                    if MemoryMap::is_spill_weight(ov) {
                        stats.ov_spill_touches += 1;
                    }
                    let row = dev.map.lutov_row(ov);
                    let (x, m) = self.activate(dev, row, sum, carry);
                    self.pending_out = ((&m << 1).bit(w)) as u8;
                    self.latched_xor = x;
                    self.latched_maj = m;
                    cycle += 1;
                    stats.activations += 1;
                }
                MicroOp::WritebackSum { shift } => {
                    if !latched {
                        return Err(illegal(pc, op, "write-back with nothing latched"));
                    }
                    dev.store_sum(&(&self.latched_xor << shift as usize).low_bits(w));
                    cycle += 1;
                }
                MicroOp::WritebackCarry { shift } => {
                    if !latched {
                        return Err(illegal(pc, op, "write-back with nothing latched"));
                    }
                    let v = (&self.latched_maj << 1).low_bits(w);
                    dev.store_carry(&(&v << shift as usize).low_bits(w));
                    cycle += 1;
                }
                MicroOp::LatchOverflowFfs { shift } => {
                    if !latched {
                        return Err(illegal(pc, op, "latch with nothing computed"));
                    }
                    let (esc_s, esc_c) = if shift == 2 {
                        let xs = ((&self.latched_xor >> (w - 2)).low_u64() & 3) as u8;
                        let cv = (&self.latched_maj << 1).low_bits(w);
                        let cs = ((&cv >> (w - 2)).low_u64() & 3) as u8;
                        (xs, cs)
                    } else {
                        (0, 0)
                    };
                    dev.nmc.set_ov_sum(esc_s);
                    dev.nmc.set_ov_carry(esc_c);
                    dev.nmc.set_pending(self.pending_out);
                }
                MicroOp::Finalize => {
                    if digits_used < k {
                        return Err(illegal(
                            pc,
                            op,
                            "finish before all multiplier digits were processed",
                        ));
                    }
                    let sum_full = dev.peek_sum();
                    let carry_full = dev.peek_carry();
                    let mut total = &sum_full + &carry_full;
                    if dev.nmc.pending_ff != 0 {
                        total = &total + &UBig::pow2(w);
                    }
                    stats.final_subtractions = (&total / &p).to_u64().unwrap_or(u64::MAX);
                    finished = Some(&total % &p);
                }
            }
        }

        let total = finished.ok_or(CoreError::Program(ProgramError::MissingFinalize))?;

        if dev.config().verify {
            let want = (&a_c * &b) % &p;
            if total != want {
                return Err(CoreError::ModelDivergence {
                    iteration: digits_used as u64,
                    what: "program result vs arithmetic oracle",
                });
            }
        }

        stats.cycles = cycle;
        stats.iterations = digits_used as u64;
        stats.row_reads = dev.array.stats().row_reads - start_sram.row_reads;
        stats.row_writes = dev.array.stats().row_writes - start_sram.row_writes;
        stats.energy_pj = dev.array.stats().energy_pj - start_sram.energy_pj;
        stats.register_writes = dev.nmc.register_writes - start_regs;
        dev.last_run = Some(stats.clone());
        Ok((total, stats))
    }

    /// One logic-SA activation (LUT row + live sum/carry), returning
    /// full `W`-bit XOR3/MAJ including the NMC top-bit logic.
    fn activate(&mut self, dev: &mut ModSram, row: usize, sum: bool, carry: bool) -> (UBig, UBig) {
        let n = dev.config().n_bits;
        let mut rows = vec![row];
        if sum {
            rows.push(MemoryMap::SUM);
        }
        if carry {
            rows.push(MemoryMap::CARRY);
        }
        let out = dev.array.activate(&rows);
        let xor_cols = UBig::from_limbs(out.xor.clone());
        let maj_cols = UBig::from_limbs(out.maj.clone());
        let s_msb = sum && dev.sum_msb;
        let c_msb = carry && dev.carry_msb;
        let xor_full = xor_cols.with_bit(n, s_msb ^ c_msb);
        let maj_full = maj_cols.with_bit(n, s_msb & c_msb);
        dev.nmc.latch_sense(xor_full.clone(), maj_full.clone());
        (xor_full, maj_full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsram::ModSramConfig;

    fn device(p: u64) -> ModSram {
        ModSram::for_modulus(&UBig::from(p)).expect("device")
    }

    #[test]
    fn r4csa_program_matches_fsm_cycle_count() {
        for k in [1usize, 2, 3, 64, 128, 129] {
            assert_eq!(Program::r4csa(k).cycles(), 6 * k as u64 - 1, "k={k}");
        }
    }

    #[test]
    fn executor_agrees_with_fsm_controller() {
        let p = 0xffff_fff1u64; // 32-bit prime-ish modulus
        for (a, b) in [(12345u64, 67890u64), (0, 5), (0xdead_beef, 0xcafe_f00d)] {
            let mut dev_fsm = device(p);
            let a_big = UBig::from(a);
            let b_big = UBig::from(b);
            let (c_fsm, s_fsm) = dev_fsm.mod_mul(&a_big, &b_big).expect("fsm run");

            let mut dev_isa = device(p);
            dev_isa.load_multiplicand(&b_big).expect("load b");
            let mut exec = Executor::new();
            let (c_isa, s_isa) = exec.run_mod_mul(&mut dev_isa, &a_big).expect("isa run");

            assert_eq!(c_isa, c_fsm, "result a={a} b={b}");
            assert_eq!(s_isa.cycles, s_fsm.cycles, "cycles a={a} b={b}");
            assert_eq!(
                s_isa.register_writes, s_fsm.register_writes,
                "register writes a={a} b={b}"
            );
            assert_eq!(s_isa.activations, s_fsm.activations);
        }
    }

    #[test]
    fn assembly_round_trips() {
        let program = Program::r4csa(3);
        let text = program.to_text();
        let parsed = Program::parse(&text).expect("own output parses");
        assert_eq!(parsed, program);
    }

    #[test]
    fn parse_accepts_comments_and_blanks() {
        let text = "; a comment\n\nload.a\nfetch ; trailing\n";
        let p = Program::parse(text).expect("parses");
        assert_eq!(p.ops(), &[MicroOp::LoadOperand, MicroOp::FetchMultiplier]);
    }

    #[test]
    fn parse_rejects_unknown_mnemonic() {
        let err = Program::parse("load.a\nexplode\n").expect_err("bad mnemonic");
        match err {
            ProgramError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("explode"));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_shift() {
        let err = Program::parse("wb.sum <<3\n").expect_err("bad shift");
        assert!(matches!(err, ProgramError::Parse { line: 1, .. }));
    }

    #[test]
    fn executor_rejects_writeback_before_activation() {
        let mut dev = device(97);
        dev.load_multiplicand(&UBig::from(44u64)).expect("load");
        let program = Program::new(vec![
            MicroOp::LoadOperand,
            MicroOp::FetchMultiplier,
            MicroOp::WritebackSum { shift: 0 },
        ]);
        let err = Executor::new()
            .run(&mut dev, &program, &UBig::from(55u64))
            .expect_err("nothing latched");
        assert!(matches!(
            err,
            CoreError::Program(ProgramError::IllegalSequence { pc: 2, .. })
        ));
    }

    #[test]
    fn executor_rejects_missing_finalize() {
        let mut dev = device(97);
        dev.load_multiplicand(&UBig::from(44u64)).expect("load");
        let program = Program::new(vec![MicroOp::LoadOperand, MicroOp::FetchMultiplier]);
        let err = Executor::new()
            .run(&mut dev, &program, &UBig::from(55u64))
            .expect_err("no finish");
        assert!(matches!(
            err,
            CoreError::Program(ProgramError::MissingFinalize)
        ));
    }

    #[test]
    fn executor_rejects_early_finalize() {
        let mut dev = device(97);
        dev.load_multiplicand(&UBig::from(44u64)).expect("load");
        let program = Program::new(vec![
            MicroOp::LoadOperand,
            MicroOp::FetchMultiplier,
            MicroOp::Finalize,
        ]);
        let err = Executor::new()
            .run(&mut dev, &program, &UBig::from(55u64))
            .expect_err("digits unprocessed");
        assert!(matches!(
            err,
            CoreError::Program(ProgramError::IllegalSequence { .. })
        ));
    }

    #[test]
    fn hand_written_program_runs() {
        // 5-bit toy from Figure 3: p = 11000₂ = 24, B = 10010₂ = 18,
        // A = 10101₂ = 21. k = 3 digits.
        let p = UBig::from(24u64);
        let mut dev = ModSram::new(ModSramConfig {
            n_bits: 5,
            ..Default::default()
        })
        .expect("device");
        dev.load_modulus(&p).expect("modulus");
        dev.load_multiplicand(&UBig::from(18u64)).expect("b");
        let text = Program::r4csa(3).to_text();
        let program = Program::parse(&text).expect("parse");
        let (c, stats) = Executor::new()
            .run(&mut dev, &program, &UBig::from(21u64))
            .expect("run");
        assert_eq!(c, UBig::from(21u64 * 18 % 24));
        assert_eq!(stats.cycles, 17); // 6·3 − 1
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            MicroOp::ActivateRadix4 {
                sum: true,
                carry: false
            }
            .to_string(),
            "act.r4 +sum"
        );
        assert_eq!(
            MicroOp::WritebackCarry { shift: 2 }.to_string(),
            "wb.carry <<2"
        );
        let p = Program::r4csa(2);
        assert!(p.to_string().contains("cycles"));
    }
}
