//! Execution statistics for accelerator runs.

/// Statistics for one in-SRAM modular multiplication.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Controller cycles for the multiplication proper (the paper's
    /// Table 3 number: `6k − 1`, 767 at 256 bits).
    pub cycles: u64,
    /// Radix-4 loop iterations (`k`).
    pub iterations: u64,
    /// Multi-row logic activations issued.
    pub activations: u64,
    /// SRAM row writes issued (write-backs + operand loads).
    pub row_writes: u64,
    /// SRAM row reads issued (multiplier fetch etc.).
    pub row_reads: u64,
    /// Near-memory flip-flop loads during the run (Figure 7 metric).
    pub register_writes: u64,
    /// Energy accumulated by the array model, picojoules.
    pub energy_pj: f64,
    /// Largest overflow-LUT index touched during the run.
    pub max_ov_index: usize,
    /// Activations that hit an instrumented spill row (overflow weight
    /// ≥ 8, beyond the paper's Table 2).
    pub ov_spill_touches: u64,
    /// Whether the multiplier's MSB forced the extra Booth digit
    /// (+6 cycles over the paper's `3n − 1`).
    pub extra_msb_digit: bool,
    /// Conditional subtractions in the near-memory finisher.
    pub final_subtractions: u64,
    /// Cycles charged for the near-memory final add + reduction
    /// (0 under the default pipelined-finisher assumption).
    pub final_add_cycles: u64,
}

impl RunStats {
    /// Total latency in seconds at clock `freq_mhz`.
    pub fn latency_us(&self, freq_mhz: f64) -> f64 {
        (self.cycles + self.final_add_cycles) as f64 / freq_mhz
    }
}

/// Statistics for a LUT precomputation (reused across multiplications —
/// the data-reuse benefit of §3.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrecomputeStats {
    /// Controller cycles spent.
    pub cycles: u64,
    /// SRAM rows written.
    pub row_writes: u64,
    /// Near-memory adder operations used to derive the entries.
    pub nmc_adds: u64,
}

impl PrecomputeStats {
    /// Merges another precompute phase into this one.
    pub fn merge(&mut self, other: &PrecomputeStats) {
        self.cycles += other.cycles;
        self.row_writes += other.row_writes;
        self.nmc_adds += other.nmc_adds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_conversion() {
        let stats = RunStats {
            cycles: 767,
            ..Default::default()
        };
        // 767 cycles at 420 MHz ≈ 1.826 µs.
        let us = stats.latency_us(420.0);
        assert!((us - 1.826).abs() < 0.01, "{us}");
    }

    #[test]
    fn precompute_merge() {
        let mut a = PrecomputeStats {
            cycles: 10,
            row_writes: 5,
            nmc_adds: 3,
        };
        a.merge(&PrecomputeStats {
            cycles: 1,
            row_writes: 2,
            nmc_adds: 4,
        });
        assert_eq!(a.cycles, 11);
        assert_eq!(a.row_writes, 7);
        assert_eq!(a.nmc_adds, 7);
    }
}
