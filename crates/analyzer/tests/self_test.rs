//! Seeded-violation self-tests, run through the production
//! [`modsram_analyzer::analyze_files`] entry point with the real
//! workspace configuration — so each test proves its rule is wired in
//! end to end (fixture paths match the real hot-path/lock/atomic
//! declarations), not just that the rule function works in isolation.
//! Disabling any rule in `analyze_files` makes its seeded test here
//! fail.
//!
//! The final test is the smoke check the CI `--deny` step depends on:
//! the workspace *as committed* must analyze clean.

use std::path::Path;

use modsram_analyzer::config::{Config, DriftSpec};
use modsram_analyzer::findings::Finding;
use modsram_analyzer::{analyze, analyze_files};

/// The real workspace config minus the drift spec: the in-memory
/// fixtures below don't carry the registry/CI/summary files, and a
/// missing registry would drown the rule under test in drift noise.
fn rules_config() -> Config {
    let mut cfg = Config::workspace();
    cfg.drift = None;
    cfg
}

fn run(files: &[(&str, &str)], cfg: &Config) -> Vec<Finding> {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_files(&files, cfg)
}

fn denied_rules(files: &[(&str, &str)], cfg: &Config) -> Vec<&'static str> {
    run(files, cfg)
        .iter()
        .filter(|f| f.denied())
        .map(|f| f.rule)
        .collect()
}

// ---- no_panic ---------------------------------------------------------

#[test]
fn no_panic_catches_seeded_unwrap_on_a_hot_path() {
    let seeded = [(
        "crates/core/src/service.rs",
        "fn f(v: &[u32]) -> u32 { *v.first().unwrap() }",
    )];
    assert!(denied_rules(&seeded, &rules_config()).contains(&"no_panic"));
}

#[test]
fn no_panic_catches_seeded_indexing_where_banned() {
    let seeded = [(
        "crates/net/src/server.rs",
        "fn f(v: &[u32]) -> u32 { v[0] }",
    )];
    assert!(denied_rules(&seeded, &rules_config()).contains(&"no_panic"));
}

#[test]
fn no_panic_clean_twin_passes() {
    let clean = [(
        "crates/core/src/service.rs",
        "fn f(v: &[u32]) -> Option<u32> { v.first().copied() }",
    )];
    assert!(denied_rules(&clean, &rules_config()).is_empty());
}

#[test]
fn no_panic_ignores_test_code_and_cold_paths() {
    let files = [
        // Same unwrap, but inside a #[test] body: exempt.
        (
            "crates/core/src/service.rs",
            "#[test]\nfn t() { let v = vec![1]; v.first().unwrap(); }",
        ),
        // Same unwrap, but not in a declared hot path.
        (
            "crates/bench/src/lib.rs",
            "fn f(v: &[u32]) { v.first().unwrap(); }",
        ),
    ];
    assert!(denied_rules(&files, &rules_config()).is_empty());
}

// ---- lock_order -------------------------------------------------------

#[test]
fn lock_order_catches_seeded_inversion() {
    // homes (level 1) held while membership (level 0) is acquired.
    let seeded = [(
        "crates/core/src/cluster.rs",
        "impl C { fn f(&self) { let h = self.homes.write(); let m = self.membership.read(); } }",
    )];
    assert!(denied_rules(&seeded, &rules_config()).contains(&"lock_order"));
}

#[test]
fn lock_order_catches_seeded_wait_across_lock() {
    let seeded = [(
        "crates/core/src/service.rs",
        "impl S { fn f(&self) { let g = self.inner.lock(); self.ticket.wait(); } }",
    )];
    assert!(denied_rules(&seeded, &rules_config()).contains(&"lock_order"));
}

#[test]
fn lock_order_clean_twin_passes() {
    let clean = [(
        "crates/core/src/cluster.rs",
        "impl C { fn f(&self) { let m = self.membership.read(); let h = self.homes.write(); } }",
    )];
    assert!(denied_rules(&clean, &rules_config()).is_empty());
}

// ---- relaxed_atomic ---------------------------------------------------

#[test]
fn relaxed_atomic_catches_seeded_relaxed_on_gating_flag() {
    let seeded = [(
        "crates/core/src/cluster.rs",
        "fn f(s: &S) -> bool { s.replicas_active.load(Ordering::Relaxed) > 0 }",
    )];
    assert!(denied_rules(&seeded, &rules_config()).contains(&"relaxed_atomic"));
}

#[test]
fn relaxed_atomic_clean_twins_pass() {
    let clean = [
        // Acquire on a gating flag: fine.
        (
            "crates/core/src/cluster.rs",
            "fn f(s: &S) -> bool { s.replicas_active.load(Ordering::Acquire) > 0 }",
        ),
        // Relaxed on a plain counter outside the manifest: fine.
        (
            "crates/core/src/service.rs",
            "fn g(s: &S) { s.submitted.fetch_add(1, Ordering::Relaxed); }",
        ),
    ];
    assert!(denied_rules(&clean, &rules_config()).is_empty());
}

// ---- allow machinery (allow_syntax) -----------------------------------

#[test]
fn reasoned_allow_downgrades_the_finding() {
    let files = [(
        "crates/core/src/service.rs",
        "fn f(v: &[u32]) -> u32 {\n    // analyzer: allow(no_panic, v is non-empty by construction)\n    *v.first().unwrap()\n}",
    )];
    let findings = run(&files, &rules_config());
    assert!(findings.iter().all(|f| !f.denied()), "allow did not apply");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "no_panic" && f.allowed.is_some()),
        "allowed finding must stay in the report"
    );
}

#[test]
fn allow_syntax_catches_seeded_reasonless_allow() {
    let seeded = [(
        "crates/core/src/service.rs",
        "// analyzer: allow(no_panic)\nfn f(v: &[u32]) -> u32 { *v.first().unwrap() }",
    )];
    let denied = denied_rules(&seeded, &rules_config());
    assert!(denied.contains(&"allow_syntax"));
    // A malformed allow suppresses nothing: the unwrap still counts.
    assert!(denied.contains(&"no_panic"));
}

#[test]
fn allow_syntax_catches_seeded_stale_allow() {
    let seeded = [(
        "crates/core/src/service.rs",
        "// analyzer: allow(no_panic, nothing below ever needed this)\nfn f() {}",
    )];
    assert!(denied_rules(&seeded, &rules_config()).contains(&"allow_syntax"));
}

// ---- drift ------------------------------------------------------------

fn drift_config() -> Config {
    Config {
        drift: Some(DriftSpec {
            registry_file: "engine.rs",
            engine_coverage_files: &["cov.rs"],
            bench_bin_dir: "bin",
            ci_file: "ci.yml",
            summary_file: "summary.rs",
            error_file: "error.rs",
            error_enum: "E",
        }),
        ..Config::default()
    }
}

fn drift_files() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "engine.rs",
            "pub const ENGINE_REGISTRY: &[(&str, fn())] = &[(\"alpha\", a), (\"beta\", b)];",
        ),
        ("cov.rs", "fn t() { run(\"alpha\"); run(\"beta\"); }"),
        (
            "bin/x.rs",
            "fn main() { write_json_artifact(\"x_sweep\", &v); }",
        ),
        (
            "ci.yml",
            "path: results/x_sweep.json\nrun: summary -- --require x_sweep\n",
        ),
        ("summary.rs", "const ARTIFACTS: &[&str] = &[\"x_sweep\"];"),
        (
            "error.rs",
            "pub enum E { A }\nfn c() -> E { E::A }\nfn d(e: &E) { match e { E::A => {} } }\n",
        ),
    ]
}

#[test]
fn drift_catches_seeded_uncovered_engine() {
    let mut files = drift_files();
    files[1].1 = "fn t() { run(\"alpha\"); }"; // beta no longer covered
    assert!(denied_rules(&files, &drift_config()).contains(&"drift"));
}

#[test]
fn drift_catches_seeded_unconstructed_error_variant() {
    let mut files = drift_files();
    files[5].1 = "pub enum E { A }\nfn d(e: &E) { match e { E::A => {} } }\n";
    assert!(denied_rules(&files, &drift_config()).contains(&"drift"));
}

#[test]
fn drift_clean_twin_passes() {
    assert!(denied_rules(&drift_files(), &drift_config()).is_empty());
}

// ---- the workspace as committed ---------------------------------------

/// The contract behind the tier-1 CI step: `analyze --deny` over the
/// repo as committed exits clean. Every suppression must carry a
/// reason, every drift list must be in sync. If this test fails, fix
/// the finding it prints (or add a reasoned allow) before committing.
#[test]
fn committed_workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = analyze(&root, &Config::workspace());
    let denied: Vec<String> = findings
        .iter()
        .filter(|f| f.denied())
        .map(Finding::render)
        .collect();
    assert!(
        denied.is_empty(),
        "workspace has {} unsuppressed finding(s):\n{}",
        denied.len(),
        denied.join("\n")
    );
}
