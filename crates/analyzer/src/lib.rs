//! `modsram_analyzer` — the workspace's in-repo concurrency and
//! invariant analyzer.
//!
//! The serving stack is deeply concurrent (scoped work-stealing
//! workers, an epoch-versioned membership RwLock over per-tile
//! mutexes, condvar-parked tickets, lock-free atomic fast paths), and
//! the failure modes that matter — a panic unwinding a worker, an
//! inverted lock pair, a too-relaxed atomic — are exactly the ones
//! `cargo test` is worst at catching. Loom/TSan-style tooling is
//! unavailable offline, so the checker lives in-repo, like the
//! vendored dependency shims: a hand-rolled lexer
//! ([`lexer`]) plus token-stream rules ([`rules`]), no external
//! parser dependencies, fast enough to run on every PR as a tier-1
//! CI step.
//!
//! # Rules
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `no_panic` | no `unwrap`/`expect`/panic-macros (and, where declared, no indexing) in hot-path modules |
//! | `lock_order` | lock acquisitions respect the declared hierarchy; no lock held across `wait*` |
//! | `relaxed_atomic` | no `Ordering::Relaxed` on manifest-declared data-gating atomics |
//! | `drift` | engine registry ↔ tests/docs, sweep artifacts ↔ CI/summary, error variants constructed & matched |
//! | `allow_syntax` | every suppression is well-formed, reasoned, and actually used |
//!
//! # The escape hatch
//!
//! A finding can be suppressed — visibly, with a reason — by a plain
//! line comment on the flagged line or the line above:
//!
//! ```text
//! // analyzer: allow(no_panic, len checked two lines up)
//! let first = parts[0];
//! ```
//!
//! Reasonless or stale allows are themselves findings, and every
//! suppression is counted per rule in `results/analyzer_report.json`
//! so creep is visible across PRs.
//!
//! # Usage
//!
//! ```sh
//! cargo run -p modsram_analyzer --release -- --deny   # CI mode: exit 1 on findings
//! cargo run -p modsram_analyzer --release            # report-only
//! ```

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

use config::Config;
use findings::{parse_allows, report_unused_allows, Finding};
use rules::drift::FileSet;

/// Every rule id the analyzer can emit, in report order.
pub const RULE_IDS: &[&str] = &[
    rules::no_panic::RULE,
    rules::lock_order::RULE,
    rules::atomics::RULE,
    rules::drift::RULE,
    "allow_syntax",
];

/// Analyzes the workspace rooted at `root` with `cfg`, returning all
/// findings (denied and allowed) sorted by file and line.
pub fn analyze(root: &Path, cfg: &Config) -> Vec<Finding> {
    analyze_files(&walk::collect(root), cfg)
}

/// Analyzes an in-memory file set — the same entry point the seeded
/// self-tests use, so a fixture exercises exactly the production path.
pub fn analyze_files(files: &FileSet, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, src) in files {
        if !path.ends_with(".rs") {
            continue;
        }
        let lexed = lexer::lex(src);
        let allows = parse_allows(path, &lexed.comments, &mut findings);

        if let Some(spec) = cfg
            .hot_paths
            .iter()
            .find(|h| path.starts_with(h.path) || path == h.path)
        {
            rules::no_panic::check(path, &lexed, spec, &allows, &mut findings);
        }
        rules::lock_order::check(path, &lexed, cfg, &allows, &mut findings);
        if cfg.atomic_scope.iter().any(|p| path.starts_with(p)) {
            rules::atomics::check(path, &lexed, cfg, &allows, &mut findings);
        }
        report_unused_allows(path, &allows, &mut findings);
    }
    if let Some(drift) = &cfg.drift {
        rules::drift::check(files, drift, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}
