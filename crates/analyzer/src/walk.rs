//! Workspace file collection: every `.rs` file under the roots the
//! rules care about, plus the CI workflow for the drift checks, as
//! `(workspace-relative forward-slash path, contents)` pairs.
//!
//! Skipped on purpose:
//! - `target/` and `.git/` — generated;
//! - `crates/analyzer/` — the analyzer does not audit itself; its
//!   tests are wall-to-wall seeded violations (as string fixtures)
//!   and auditing them would be all noise, no signal.

use std::fs;
use std::path::Path;

use crate::rules::drift::FileSet;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Workspace-relative path prefixes excluded from analysis.
const SKIP_PREFIXES: &[&str] = &["crates/analyzer"];

/// Extra non-Rust files the drift rule reads.
const EXTRA_FILES: &[&str] = &[".github/workflows/ci.yml"];

/// Collects the analyzable file set under `root`.
pub fn collect(root: &Path) -> FileSet {
    let mut files = FileSet::new();
    for top in ["src", "crates", "tests", "examples", "benches"] {
        gather(root, &root.join(top), &mut files);
    }
    for extra in EXTRA_FILES {
        if let Ok(text) = fs::read_to_string(root.join(extra)) {
            files.push(((*extra).to_string(), text));
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn gather(root: &Path, dir: &Path, files: &mut FileSet) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|s| *s == name) {
                continue;
            }
            gather(root, &path, files);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            if let Ok(text) = fs::read_to_string(&path) {
                files.push((rel, text));
            }
        }
    }
}
