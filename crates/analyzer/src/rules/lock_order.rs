//! Rule `lock_order`: lock acquisitions on known named fields must
//! respect the declared hierarchy (levels in
//! [`crate::config::Config::workspace`]), and no known lock guard may
//! be held across a blocking `wait*` call — except a `Condvar`
//! parking on its own guard, which is the one blessed shape.
//!
//! The tracker is lexical and intraprocedural: it follows brace depth
//! through one file, binds a guard when it sees
//! `<receiver>.<field>.lock()/read()/write()` (or a declared helper
//! like `lock_inner()`), and kills the guard when its scope closes,
//! when `drop(name)` runs, or — for un-bound temporaries — at the end
//! of the statement. That is deliberately the same approximation a
//! reviewer makes reading the code, so a finding is always legible.

use crate::config::Config;
use crate::findings::{apply_allows, Allow, Finding};
use crate::lexer::{Lexed, TokenKind};
use crate::rules::{in_test, test_regions};

pub const RULE: &str = "lock_order";

/// Guard-returning methods on lock fields.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Blocking park calls checked for the held-across-wait rule.
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_deadline",
    "wait_while",
    "wait_timeout_while",
];

/// One live lock guard.
struct Guard {
    /// `let`-bound name, if any (temporaries have none).
    name: Option<String>,
    field: String,
    level: u8,
    /// Brace depth at the acquisition site.
    depth: usize,
    /// Bound by `if let` / `while let`: dies when the block it guards
    /// closes back to `depth` (not only when depth drops below).
    conditional: bool,
    /// A conditional guard's block has been entered.
    entered: bool,
    /// No `let` binding: dies at the end of the statement.
    temp: bool,
}

pub fn check(
    file: &str,
    lexed: &Lexed,
    cfg: &Config,
    allows: &[Allow],
    findings: &mut Vec<Finding>,
) {
    let fields: Vec<(&str, u8)> = cfg
        .locks
        .iter()
        .filter(|l| file.ends_with(l.file))
        .map(|l| (l.field, l.level))
        .collect();
    let helpers: Vec<(&str, u8)> = cfg
        .lock_helpers
        .iter()
        .filter(|h| file.ends_with(h.file))
        .map(|h| (h.method, h.level))
        .collect();
    if fields.is_empty() && helpers.is_empty() {
        return;
    }

    let tokens = &lexed.tokens;
    let regions = test_regions(tokens);
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();

    let emit = |line: u32, message: String, hint: String, findings: &mut Vec<Finding>| {
        let mut f = Finding {
            rule: RULE,
            file: file.to_string(),
            line,
            message,
            hint,
            allowed: None,
        };
        apply_allows(&mut f, allows);
        findings.push(f);
    };

    for i in 0..tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('{') => {
                for g in &mut guards {
                    if g.conditional && g.depth == depth {
                        g.entered = true;
                    }
                }
                depth += 1;
                continue;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| {
                    let closed =
                        g.depth > depth || (g.conditional && g.entered && g.depth == depth);
                    !closed
                });
                continue;
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| !(g.temp && depth <= g.depth));
                continue;
            }
            _ => {}
        }
        if in_test(&regions, i) || t.kind != TokenKind::Ident {
            continue;
        }

        // `drop(name)` releases a named guard early.
        if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|x| x.is_punct('('))
            && tokens.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            if let Some(victim) = tokens.get(i + 2) {
                guards.retain(|g| g.name.as_deref() != Some(victim.text.as_str()));
            }
            continue;
        }

        // Held-across-wait: `<recv>.wait*(…)` with any known guard live,
        // unless the receiver is a declared condvar.
        if WAIT_METHODS.contains(&t.text.as_str())
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            let recv = &tokens[i - 2].text;
            let is_condvar = cfg.condvar_receivers.iter().any(|c| c == recv);
            if !is_condvar {
                if let Some(g) = guards.first() {
                    emit(
                        t.line,
                        format!(
                            "`{recv}.{}()` parks while holding lock `{}` (level {})",
                            t.text, g.field, g.level
                        ),
                        format!(
                            "release `{}` before blocking, or poll with `try_poll`",
                            g.field
                        ),
                        findings,
                    );
                }
            }
            continue;
        }

        // Acquisition: `.<field>.<method>(` on a known field, or a
        // declared guard-returning helper call.
        let acquired: Option<(String, u8, u32)> = if let Some(&(_, level)) =
            helpers.iter().find(|(m, _)| t.is_ident(m)).filter(|_| {
                i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|x| x.is_punct('('))
            }) {
            Some((t.text.clone(), level, t.line))
        } else if let Some(&(_, level)) = fields.iter().find(|(f, _)| t.is_ident(f)).filter(|_| {
            i >= 1
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|x| x.is_punct('.'))
                && tokens
                    .get(i + 2)
                    .is_some_and(|x| ACQUIRE_METHODS.contains(&x.text.as_str()))
                && tokens.get(i + 3).is_some_and(|x| x.is_punct('('))
        }) {
            Some((t.text.clone(), level, tokens[i + 2].line))
        } else {
            None
        };
        let Some((field, level, line)) = acquired else {
            continue;
        };

        for g in &guards {
            if g.field == field {
                emit(
                    line,
                    format!("re-acquires `{field}` while a guard on it is still live"),
                    format!("drop the earlier `{field}` guard first (non-reentrant lock)"),
                    findings,
                );
            } else if g.level > level {
                emit(
                    line,
                    format!(
                        "acquires `{field}` (level {level}) while holding `{}` (level {}) — inverts the declared hierarchy",
                        g.field, g.level
                    ),
                    format!(
                        "acquire `{field}` before `{}`, or drop `{}` first (hierarchy: crates/analyzer/src/config.rs)",
                        g.field, g.field
                    ),
                    findings,
                );
            }
        }

        // Bind the guard: scan back through the statement for `let`.
        let mut name = None;
        let mut conditional = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let b = &tokens[j];
            if b.is_punct(';') || b.is_punct('{') || b.is_punct('}') {
                break;
            }
            if b.is_ident("let") {
                conditional =
                    j > 0 && (tokens[j - 1].is_ident("if") || tokens[j - 1].is_ident("while"));
                let mut k = j + 1;
                while tokens.get(k).is_some_and(|x| {
                    x.is_ident("mut")
                        || matches!(x.kind, TokenKind::Punct('(') | TokenKind::Punct(')'))
                }) {
                    k += 1;
                }
                if let Some(n) = tokens.get(k).filter(|x| x.kind == TokenKind::Ident) {
                    name = Some(n.text.clone());
                }
                break;
            }
        }
        guards.push(Guard {
            temp: name.is_none(),
            name,
            field,
            level,
            depth,
            conditional,
            entered: false,
        });
    }

    // A guard surviving to EOF means unbalanced braces somewhere; the
    // lexer has no recovery, so just drop them silently.
    let _ = guards;
}

/// Convenience for tests: run the rule over a snippet with the
/// workspace lock declarations scoped to `file`.
#[cfg(test)]
fn run_snippet(file: &str, src: &str) -> Vec<Finding> {
    use crate::findings::parse_allows;
    let lexed = crate::lexer::lex(src);
    let mut findings = Vec::new();
    let allows = parse_allows(file, &lexed.comments, &mut findings);
    check(file, &lexed, &Config::workspace(), &allows, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_inversion_is_caught() {
        // homes (level 1) held, then membership (level 0): inverted.
        let bad = r#"
            fn f(&self) {
                let homes = self.homes.write().unwrap_or_else(E::into_inner);
                let snap = self.membership.read().unwrap_or_else(E::into_inner);
            }
        "#;
        let found = run_snippet("crates/core/src/cluster.rs", bad);
        assert!(found
            .iter()
            .any(|f| f.rule == RULE && f.message.contains("inverts")));
    }

    #[test]
    fn clean_ordering_passes() {
        let clean = r#"
            fn f(&self) {
                let snap = self.membership.read().unwrap_or_else(E::into_inner);
                let homes = self.homes.write().unwrap_or_else(E::into_inner);
                drop(homes);
                let replicas = self.replicas.read().unwrap_or_else(E::into_inner);
            }
        "#;
        assert!(run_snippet("crates/core/src/cluster.rs", clean).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let ok = r#"
            fn f(&self) {
                let homes = self.homes.write().unwrap_or_else(E::into_inner);
                drop(homes);
                let snap = self.membership.read().unwrap_or_else(E::into_inner);
            }
        "#;
        assert!(run_snippet("crates/core/src/cluster.rs", ok).is_empty());
    }

    #[test]
    fn scope_close_releases_the_guard() {
        let ok = r#"
            fn f(&self) {
                {
                    let homes = self.homes.write().unwrap_or_else(E::into_inner);
                    homes.insert(1, 2);
                }
                let snap = self.membership.read().unwrap_or_else(E::into_inner);
            }
        "#;
        assert!(run_snippet("crates/core/src/cluster.rs", ok).is_empty());
    }

    #[test]
    fn reacquire_same_lock_is_caught() {
        let bad = r#"
            fn f(&self) {
                let a = self.inner.lock().unwrap_or_else(E::into_inner);
                let b = self.inner.lock().unwrap_or_else(E::into_inner);
            }
        "#;
        let found = run_snippet("crates/core/src/service.rs", bad);
        assert!(found.iter().any(|f| f.message.contains("re-acquires")));
    }

    #[test]
    fn wait_across_lock_is_caught_but_condvar_is_blessed() {
        let bad = r#"
            fn f(&self) {
                let inner = self.inner.lock().unwrap_or_else(E::into_inner);
                ticket.wait();
            }
        "#;
        let found = run_snippet("crates/core/src/service.rs", bad);
        assert!(found
            .iter()
            .any(|f| f.message.contains("parks while holding")));

        let blessed = r#"
            fn f(&self) {
                let mut slot = self.slot.lock().unwrap_or_else(E::into_inner);
                while slot.is_none() {
                    slot = self.ready.wait(slot).unwrap_or_else(E::into_inner);
                }
            }
        "#;
        assert!(run_snippet("crates/core/src/service.rs", blessed).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let ok = r#"
            fn f(&self) {
                self.wall_ns.lock().unwrap_or_else(E::into_inner).push(1);
                let snap = self.inner.lock().unwrap_or_else(E::into_inner);
            }
        "#;
        assert!(run_snippet("crates/core/src/service.rs", ok).is_empty());
    }

    #[test]
    fn helper_methods_count_as_acquisitions() {
        let bad = r#"
            fn f(&self) {
                let wall = self.wall_ns.lock().unwrap_or_else(E::into_inner);
                let inner = self.lock_inner();
            }
        "#;
        let found = run_snippet("crates/core/src/service.rs", bad);
        assert!(found.iter().any(|f| f.message.contains("inverts")));
    }
}
