//! Rule `drift`: cross-file consistency checks that catch the ways
//! this workspace has actually drifted in past PRs —
//!
//! 1. every engine in `ENGINE_REGISTRY` is exercised by the
//!    cross-engine tests and listed in the facade docs (a file that
//!    iterates the registry passes automatically; one that hardcodes
//!    names must name every engine);
//! 2. every `results/<name>_sweep.json` artifact written by a bench
//!    binary is uploaded in CI *and* required by `bin/summary
//!    --require` *and* known to its `ARTIFACTS` table;
//! 3. every `CoreError` variant is both constructed and matched
//!    somewhere (a variant nobody builds is dead API; one nobody
//!    matches is an error consumers cannot handle specifically).
//!
//! Drift findings are not allowlistable: each one is mechanically
//! fixable at the site it names, so an escape hatch would only let
//! the lists rot.

use crate::config::DriftSpec;
use crate::findings::Finding;
use crate::lexer::{lex, Lexed, TokenKind};
use crate::rules::{contains_word, skip_balanced};

pub const RULE: &str = "drift";

/// One workspace file: (workspace-relative path, contents).
pub type FileSet = Vec<(String, String)>;

fn source<'a>(files: &'a FileSet, path: &str) -> Option<&'a str> {
    files
        .iter()
        .find(|(p, _)| p == path)
        .map(|(_, s)| s.as_str())
}

/// 1-based line of the first occurrence of `needle` in `text`.
fn line_of(text: &str, needle: &str) -> u32 {
    match text.find(needle) {
        Some(pos) => 1 + text[..pos].matches('\n').count() as u32,
        None => 1,
    }
}

fn finding(file: &str, line: u32, message: String, hint: String) -> Finding {
    Finding {
        rule: RULE,
        file: file.to_string(),
        line,
        message,
        hint,
        allowed: None,
    }
}

/// Engine names out of `ENGINE_REGISTRY`: the string literals between
/// the `=` and the terminating `;` of the const item.
fn registry_engines(lexed: &Lexed) -> Vec<(String, u32)> {
    let tokens = &lexed.tokens;
    let Some(start) = tokens.iter().position(|t| t.is_ident("ENGINE_REGISTRY")) else {
        return Vec::new();
    };
    let mut names = Vec::new();
    for t in &tokens[start..] {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokenKind::Str {
            names.push((t.text.clone(), t.line));
        }
    }
    names
}

/// Variant names of `enum <name>` in `lexed`.
fn enum_variants(lexed: &Lexed, name: &str) -> Vec<(String, u32)> {
    let tokens = &lexed.tokens;
    let Some(pos) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident(name))
    else {
        return Vec::new();
    };
    let Some(open_rel) = tokens[pos..].iter().position(|t| t.is_punct('{')) else {
        return Vec::new();
    };
    let open = pos + open_rel;
    let end = skip_balanced(tokens, open);
    let mut variants = Vec::new();
    let mut i = open + 1;
    while i < end.saturating_sub(1) {
        // Skip attributes on the variant.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = skip_balanced(tokens, i + 1);
            continue;
        }
        if tokens[i].kind == TokenKind::Ident {
            variants.push((tokens[i].text.clone(), tokens[i].line));
            i += 1;
            // Skip the payload and/or discriminant up to the comma.
            while i < end.saturating_sub(1) && !tokens[i].is_punct(',') {
                if tokens[i].is_punct('{') || tokens[i].is_punct('(') {
                    i = skip_balanced(tokens, i);
                } else {
                    i += 1;
                }
            }
        }
        i += 1;
    }
    variants
}

pub fn check(files: &FileSet, spec: &DriftSpec, findings: &mut Vec<Finding>) {
    check_engines(files, spec, findings);
    check_sweep_artifacts(files, spec, findings);
    check_error_variants(files, spec, findings);
}

fn check_engines(files: &FileSet, spec: &DriftSpec, findings: &mut Vec<Finding>) {
    let Some(registry_src) = source(files, spec.registry_file) else {
        findings.push(finding(
            spec.registry_file,
            1,
            "engine registry file is missing from the workspace".into(),
            "restore the file or update DriftSpec::registry_file".into(),
        ));
        return;
    };
    let engines = registry_engines(&lex(registry_src));
    if engines.is_empty() {
        findings.push(finding(
            spec.registry_file,
            1,
            "could not parse any engine names out of ENGINE_REGISTRY".into(),
            "keep ENGINE_REGISTRY a literal `&[(\"name\", ctor), …]` table".into(),
        ));
        return;
    }
    const REGISTRY_ITERATORS: &[&str] = &["all_engines", "engine_names", "ENGINE_REGISTRY"];
    for cov in spec.engine_coverage_files {
        let Some(src) = source(files, cov) else {
            findings.push(finding(
                cov,
                1,
                "engine-coverage file is missing from the workspace".into(),
                "restore the file or update DriftSpec::engine_coverage_files".into(),
            ));
            continue;
        };
        let lexed = lex(src);
        let registry_driven = lexed
            .tokens
            .iter()
            .any(|t| REGISTRY_ITERATORS.iter().any(|r| t.is_ident(r)));
        if registry_driven {
            continue;
        }
        for (engine, _) in &engines {
            let in_strings = lexed
                .tokens
                .iter()
                .any(|t| t.kind == TokenKind::Str && t.text == *engine);
            let in_comments = lexed
                .comments
                .iter()
                .any(|c| contains_word(&c.text, engine));
            if !in_strings && !in_comments {
                findings.push(finding(
                    cov,
                    1,
                    format!("engine `{engine}` from ENGINE_REGISTRY is not covered here"),
                    format!(
                        "name `{engine}` in this file, or iterate all_engines()/engine_names() \
                         so new engines are covered automatically"
                    ),
                ));
            }
        }
    }
}

fn check_sweep_artifacts(files: &FileSet, spec: &DriftSpec, findings: &mut Vec<Finding>) {
    // Collect `write_json_artifact("<x>_sweep", …)` literals from the
    // bench binaries.
    let mut artifacts: Vec<(String, String, u32)> = Vec::new();
    let prefix = format!("{}/", spec.bench_bin_dir);
    for (path, src) in files {
        if !path.starts_with(&prefix) || !path.ends_with(".rs") {
            continue;
        }
        let lexed = lex(src);
        for (i, t) in lexed.tokens.iter().enumerate() {
            if t.is_ident("write_json_artifact")
                && lexed.tokens.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                if let Some(name_tok) = lexed
                    .tokens
                    .get(i + 2)
                    .filter(|x| x.kind == TokenKind::Str && x.text.ends_with("_sweep"))
                {
                    artifacts.push((name_tok.text.clone(), path.clone(), name_tok.line));
                }
            }
        }
    }

    let ci = source(files, spec.ci_file).unwrap_or("");
    let require_line: Option<&str> = ci.lines().find(|l| l.contains("--require"));
    let summary_src = source(files, spec.summary_file).unwrap_or("");
    let summary_lexed = lex(summary_src);
    let artifacts_const: Vec<String> = {
        let tokens = &summary_lexed.tokens;
        match tokens.iter().position(|t| t.is_ident("ARTIFACTS")) {
            Some(start) => tokens[start..]
                .iter()
                .take_while(|t| !t.is_punct(';'))
                .filter(|t| t.kind == TokenKind::Str)
                .map(|t| t.text.clone())
                .collect(),
            None => Vec::new(),
        }
    };

    for (name, written_in, line) in &artifacts {
        if !ci.contains(&format!("results/{name}.json")) {
            findings.push(finding(
                spec.ci_file,
                1,
                format!("sweep artifact `{name}` (written by {written_in}:{line}) is never uploaded in CI"),
                format!("add `results/{name}.json` to an upload-artifact step in {}", spec.ci_file),
            ));
        }
        match require_line {
            Some(l) if contains_word(l, name) => {}
            _ => findings.push(finding(
                spec.ci_file,
                line_of(ci, "--require"),
                format!("sweep artifact `{name}` is missing from the summary --require list"),
                format!(
                    "append `{name}` to the --require list so CI fails if it stops being produced"
                ),
            )),
        }
        if !artifacts_const.iter().any(|a| a == name) {
            findings.push(finding(
                spec.summary_file,
                line_of(summary_src, "ARTIFACTS"),
                format!("sweep artifact `{name}` is missing from bin/summary's ARTIFACTS table"),
                format!(
                    "add `{name}` (and a summarize() branch) to {}",
                    spec.summary_file
                ),
            ));
        }
    }
}

fn check_error_variants(files: &FileSet, spec: &DriftSpec, findings: &mut Vec<Finding>) {
    let Some(error_src) = source(files, spec.error_file) else {
        return;
    };
    let variants = enum_variants(&lex(error_src), spec.error_enum);
    if variants.is_empty() {
        findings.push(finding(
            spec.error_file,
            1,
            format!("could not parse any variants of enum {}", spec.error_enum),
            "keep the error enum a plain `pub enum` with literal variants".into(),
        ));
        return;
    }

    let mut constructed: Vec<&str> = Vec::new();
    let mut matched: Vec<&str> = Vec::new();
    for (path, src) in files {
        if !path.ends_with(".rs") {
            continue;
        }
        let lexed = lex(src);
        let tokens = &lexed.tokens;
        for i in 0..tokens.len() {
            if !(tokens[i].is_ident(spec.error_enum)
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            let Some(vt) = tokens.get(i + 3) else {
                continue;
            };
            let Some((vname, _)) = variants.iter().find(|(v, _)| vt.is_ident(v)) else {
                continue;
            };
            // Inside the enum definition itself: skip (that is the
            // declaration, neither a construction nor a match).
            // The definition has no `EnumName::` prefix, so any
            // occurrence we see here is a use site.
            let mut j = i + 4;
            if tokens
                .get(j)
                .is_some_and(|t| t.is_punct('{') || t.is_punct('('))
            {
                j = skip_balanced(tokens, j);
            }
            // A pattern position is recognizable from what FOLLOWS the
            // variant (`=>` or an or-pattern `|`); what precedes it is
            // unreliable — a closure like `|_| CoreError::X { … }` puts
            // a `|` right before a construction.
            let is_match = matches!(
                (tokens.get(j), tokens.get(j + 1)),
                (Some(a), Some(b)) if a.is_punct('=') && b.is_punct('>')
            ) || tokens.get(j).is_some_and(|t| t.is_punct('|'));
            if is_match {
                matched.push(vname);
            } else {
                constructed.push(vname);
            }
        }
    }

    for (variant, line) in &variants {
        let path = format!("{}::{variant}", spec.error_enum);
        if !constructed.iter().any(|c| c == variant) {
            findings.push(finding(
                spec.error_file,
                *line,
                format!("error variant `{path}` is never constructed anywhere in the workspace"),
                "construct it on the failure path it describes, or delete the dead variant".into(),
            ));
        }
        if !matched.iter().any(|m| m == variant) {
            findings.push(finding(
                spec.error_file,
                *line,
                format!("error variant `{path}` is never matched anywhere in the workspace"),
                "match it somewhere (Display at minimum) so consumers can handle it".into(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DriftSpec {
        DriftSpec {
            registry_file: "engine.rs",
            engine_coverage_files: &["cov.rs"],
            bench_bin_dir: "bin",
            ci_file: "ci.yml",
            summary_file: "summary.rs",
            error_file: "error.rs",
            error_enum: "E",
        }
    }

    fn base_files() -> FileSet {
        vec![
            (
                "engine.rs".into(),
                "pub const ENGINE_REGISTRY: &[(&str, fn())] = &[(\"alpha\", a), (\"beta\", b)];"
                    .into(),
            ),
            ("cov.rs".into(), "fn t() { run(\"alpha\"); run(\"beta\"); }".into()),
            (
                "bin/x.rs".into(),
                "fn main() { write_json_artifact(\"x_sweep\", &v); }".into(),
            ),
            (
                "ci.yml".into(),
                "path: results/x_sweep.json\nrun: summary -- --require x_sweep\n".into(),
            ),
            (
                "summary.rs".into(),
                "const ARTIFACTS: &[&str] = &[\"x_sweep\"];".into(),
            ),
            (
                "error.rs".into(),
                "pub enum E { A, B { n: u32 } }\nfn c() -> E { E::A }\nfn b() -> E { E::B { n: 1 } }\nfn d(e: &E) { match e { E::A => {}, E::B { .. } => {} } }\n".into(),
            ),
        ]
    }

    fn run(files: &FileSet) -> Vec<Finding> {
        let mut findings = Vec::new();
        check(files, &spec(), &mut findings);
        findings
    }

    #[test]
    fn clean_workspace_passes() {
        assert!(run(&base_files()).is_empty());
    }

    #[test]
    fn seeded_uncovered_engine_is_caught() {
        let mut files = base_files();
        files[1].1 = "fn t() { run(\"alpha\"); }".into();
        let found = run(&files);
        assert!(found.iter().any(|f| f.message.contains("`beta`")));
    }

    #[test]
    fn registry_driven_coverage_passes_without_literals() {
        let mut files = base_files();
        files[1].1 = "fn t() { for e in all_engines() { run(e); } }".into();
        assert!(run(&files).is_empty());
    }

    #[test]
    fn seeded_unuploaded_artifact_is_caught() {
        let mut files = base_files();
        files[3].1 = "run: summary -- --require x_sweep\n".into();
        let found = run(&files);
        assert!(found.iter().any(|f| f.message.contains("never uploaded")));
    }

    #[test]
    fn seeded_missing_require_is_caught() {
        let mut files = base_files();
        files[3].1 = "path: results/x_sweep.json\nrun: summary -- --require other\n".into();
        let found = run(&files);
        assert!(found.iter().any(|f| f.message.contains("--require list")));
    }

    #[test]
    fn seeded_missing_summary_entry_is_caught() {
        let mut files = base_files();
        files[4].1 = "const ARTIFACTS: &[&str] = &[];".into();
        let found = run(&files);
        assert!(found.iter().any(|f| f.message.contains("ARTIFACTS table")));
    }

    #[test]
    fn closure_body_construction_counts_as_construction() {
        let mut files = base_files();
        files[5].1 = "pub enum E { A, B { n: u32 } }\n\
                      fn c() -> Result<(), E> { x().map_err(|_| E::B { n: 1 })?; Ok(()) }\n\
                      fn a() -> E { E::A }\n\
                      fn d(e: &E) { match e { E::A | E::B { .. } => {} } }\n"
            .into();
        assert!(run(&files).is_empty());
    }

    #[test]
    fn seeded_unconstructed_and_unmatched_variants_are_caught() {
        let mut files = base_files();
        files[5].1 =
            "pub enum E { A, B { n: u32 } }\nfn c() -> E { E::A }\nfn d(e: &E) { match e { E::A => {}, _ => {} } }\n"
                .into();
        let found = run(&files);
        assert!(found
            .iter()
            .any(|f| f.message.contains("`E::B` is never constructed")));
        assert!(found
            .iter()
            .any(|f| f.message.contains("`E::B` is never matched")));
    }
}
