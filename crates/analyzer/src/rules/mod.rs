//! The rule engine: one module per rule, plus the token-stream
//! helpers they share (test-region masking, balanced-group skipping).
//!
//! Every rule has the same shape — walk the token stream of one file
//! (or, for `drift`, the whole workspace), emit [`Finding`]s, and let
//! the caller run them through the allow machinery. All rules are
//! intraprocedural and lexical by design: they see exactly what a
//! reviewer sees, which is also what keeps them fast enough for a
//! tier-1 CI step and free of parser dependencies.

pub mod atomics;
pub mod drift;
pub mod lock_order;
pub mod no_panic;

use crate::lexer::{Token, TokenKind};

/// Rust keywords an indexing expression cannot follow (so `if x[i]`
/// is flagged via the `x` before `[`, but `for x in [1, 2]` is not).
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Given the index of an opening delimiter token, returns the index
/// just past its matching close (or the end of the stream).
pub fn skip_balanced(tokens: &[Token], open_idx: usize) -> usize {
    let (open, close) = match tokens[open_idx].kind {
        TokenKind::Punct('(') => ('(', ')'),
        TokenKind::Punct('[') => ('[', ']'),
        TokenKind::Punct('{') => ('{', '}'),
        _ => return open_idx + 1,
    };
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
/// The no-panic, lock-order, and atomics rules skip these: tests are
/// exactly where `unwrap()` on a known-good value is idiomatic.
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_end = skip_balanced(tokens, i + 1);
        let attr = &tokens[i + 2..attr_end.saturating_sub(1)];
        let is_test_attr =
            attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Find the item body this attribute decorates; an item that
        // ends in `;` before any `{` (e.g. a cfg'd `use`) has no body.
        let mut j = attr_end;
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct('{') {
            let body_end = skip_balanced(tokens, j);
            regions.push((i, body_end));
            i = body_end;
        } else {
            regions.push((i, j + 1));
            i = j + 1;
        }
    }
    regions
}

/// `true` when token index `i` falls inside any test region.
pub fn in_test(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= i && i < b)
}

/// `needle` appears in `text` as a whole word (adjacent characters are
/// not identifier-ish, so `direct` does not match inside `directly`).
pub fn contains_word(text: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let boundary =
            |c: Option<char>| c.is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == '-'));
        if boundary(text[..start].chars().next_back()) && boundary(text[end..].chars().next()) {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let unwraps: Vec<usize> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(!in_test(&regions, unwraps[0]));
        assert!(in_test(&regions, unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lexed = lex("#[cfg(not(test))]\nfn a() { x.unwrap(); }\n");
        assert!(test_regions(&lexed.tokens).is_empty());
    }

    #[test]
    fn bodyless_cfg_test_item_excludes_nothing_after_its_semicolon() {
        let lexed = lex("#[cfg(test)]\nuse foo::bar;\nfn a() { x.unwrap(); }\n");
        let regions = test_regions(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(!in_test(&regions, unwrap_idx));
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("| direct |", "direct"));
        assert!(!contains_word("directly", "direct"));
        assert!(contains_word("uses r4csa-lut engine", "r4csa-lut"));
        assert!(!contains_word("r4csa-luthier", "r4csa-lut"));
    }
}
