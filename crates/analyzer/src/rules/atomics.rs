//! Rule `relaxed_atomic`: `Ordering::Relaxed` on an atomic that gates
//! data visibility (the checked-in manifest in
//! [`crate::config::Config::workspace`]) is a finding unless
//! allowlisted with a reason. Relaxed is fine for pure counters; it is
//! wrong for flags whose observers then read *other* memory that the
//! flag-setter wrote — those need Acquire/Release pairing or the
//! reader can see the flag before the data.

use crate::config::Config;
use crate::findings::{apply_allows, Allow, Finding};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::{in_test, test_regions};

pub const RULE: &str = "relaxed_atomic";

/// Atomic methods that take an `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Walks back from a `Relaxed` token to the atomic call it belongs to,
/// returning `(method, receiver field)` when both are recognizable.
fn call_context(tokens: &[Token], relaxed_idx: usize) -> Option<(String, String)> {
    let mut i = relaxed_idx;
    let mut steps = 0;
    while i > 0 && steps < 256 {
        i -= 1;
        steps += 1;
        let t = &tokens[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.kind == TokenKind::Ident
            && ATOMIC_METHODS.contains(&t.text.as_str())
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            // Receiver: the token before the `.`, skipping one
            // balanced `[…]` index group (`claimed[id].swap(…)`).
            let mut r = i - 1;
            if r > 0 && tokens[r - 1].is_punct(']') {
                let mut depth = 0usize;
                while r > 0 {
                    r -= 1;
                    if tokens[r].is_punct(']') {
                        depth += 1;
                    } else if tokens[r].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            }
            if r > 0 && tokens[r - 1].kind == TokenKind::Ident {
                return Some((t.text.clone(), tokens[r - 1].text.clone()));
            }
            return Some((t.text.clone(), String::new()));
        }
    }
    None
}

pub fn check(
    file: &str,
    lexed: &Lexed,
    cfg: &Config,
    allows: &[Allow],
    findings: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    let regions = test_regions(tokens);
    for i in 3..tokens.len() {
        if in_test(&regions, i) {
            continue;
        }
        let qualified = tokens[i].is_ident("Relaxed")
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("Ordering");
        if !qualified {
            continue;
        }
        let Some((method, field)) = call_context(tokens, i) else {
            continue;
        };
        let Some(spec) = cfg.data_gating_atomics.iter().find(|a| a.field == field) else {
            continue;
        };
        let mut f = Finding {
            rule: RULE,
            file: file.to_string(),
            line: tokens[i].line,
            message: format!(
                "Relaxed `{method}` on data-gating atomic `{field}` — {}",
                spec.why
            ),
            hint: "use Acquire for loads / Release for stores (AcqRel for RMW), or annotate \
                   `// analyzer: allow(relaxed_atomic, <why ordering is not needed here>)`"
                .to_string(),
            allowed: None,
        };
        apply_allows(&mut f, allows);
        findings.push(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::parse_allows;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let mut findings = Vec::new();
        let allows = parse_allows("f.rs", &lexed.comments, &mut findings);
        check("f.rs", &lexed, &Config::workspace(), &allows, &mut findings);
        findings
    }

    #[test]
    fn seeded_relaxed_on_gating_flag_is_caught() {
        let bad = "fn f(&self) -> bool { self.stopped.load(Ordering::Relaxed) }";
        let found = run(bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("stopped"));
        assert!(found[0].denied());
    }

    #[test]
    fn clean_acquire_release_passes() {
        let clean = "fn f(&self) { self.stopped.store(true, Ordering::Release); \
                     let _ = self.stopped.load(Ordering::Acquire); }";
        assert!(run(clean).is_empty());
    }

    #[test]
    fn relaxed_on_plain_counter_is_fine() {
        let ok = "fn f(&self) { self.jobs_done.fetch_add(1, Ordering::Relaxed); }";
        assert!(run(ok).is_empty());
    }

    #[test]
    fn indexed_receiver_is_resolved() {
        let bad = "fn f(&self) { self.claimed[id].swap(true, Ordering::Relaxed); }";
        let found = run(bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("claimed"));
    }

    #[test]
    fn failure_ordering_of_cas_is_checked_too() {
        let bad = "fn f(&self) { let _ = self.abort.compare_exchange(false, true, \
                   Ordering::AcqRel, Ordering::Relaxed); }";
        assert_eq!(run(bad).len(), 1);
    }

    #[test]
    fn allow_with_reason_downgrades() {
        let src = "fn f(&self) -> u64 {\n    // analyzer: allow(relaxed_atomic, monotonic counter only read for stats)\n    self.executor_panics.load(Ordering::Relaxed)\n}";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert!(!found[0].denied());
    }
}
