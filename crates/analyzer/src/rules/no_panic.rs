//! Rule `no_panic`: designated hot-path modules must not contain
//! panicking constructs — `.unwrap()` / `.expect(…)` (and their `_err`
//! twins), the panic-family macros, and (where the spec says so)
//! slice/array indexing. A panic on these paths unwinds a dispatch
//! worker, an executor, or a connection thread, losing every job that
//! thread was carrying.
//!
//! `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` are *not*
//! findings: they are the non-panicking alternatives this rule pushes
//! code toward (the workspace's poison-recovery idiom
//! `.unwrap_or_else(PoisonError::into_inner)` relies on that).

use crate::config::HotPathSpec;
use crate::findings::{apply_allows, Allow, Finding};
use crate::lexer::{Lexed, TokenKind};
use crate::rules::{in_test, test_regions, KEYWORDS};

pub const RULE: &str = "no_panic";

/// Panicking method calls: flagged when called as `.name(`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Panic-family macros: flagged as `name!`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(
    file: &str,
    lexed: &Lexed,
    spec: &HotPathSpec,
    allows: &[Allow],
    findings: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    let regions = test_regions(tokens);
    let mut emit = |line: u32, message: String, hint: &str| {
        let mut f = Finding {
            rule: RULE,
            file: file.to_string(),
            line,
            message,
            hint: hint.to_string(),
            allowed: None,
        };
        apply_allows(&mut f, allows);
        findings.push(f);
    };

    for i in 0..tokens.len() {
        if in_test(&regions, i) || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let word = tokens[i].text.as_str();

        if PANIC_METHODS.contains(&word)
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            emit(
                tokens[i].line,
                format!("`.{word}()` on a no-panic hot path"),
                "propagate the error (`?` / a CoreError variant) or annotate \
                 `// analyzer: allow(no_panic, <why this cannot fail>)`",
            );
            continue;
        }

        if PANIC_MACROS.contains(&word)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && (i == 0 || !tokens[i - 1].is_punct('.'))
        {
            emit(
                tokens[i].line,
                format!("`{word}!` on a no-panic hot path"),
                "return an error instead of panicking, or annotate \
                 `// analyzer: allow(no_panic, <why this branch is unreachable>)`",
            );
            continue;
        }

        // Indexing: `expr[...]` where expr ends in an identifier (not a
        // keyword), `)`, or `]`. Array literals, attributes, types, and
        // `vec![…]` all follow punctuation and are not flagged.
        if spec.ban_indexing && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let indexes = tokens[i].kind == TokenKind::Ident && !KEYWORDS.contains(&word);
            if indexes {
                emit(
                    tokens[i + 1].line,
                    format!("slice/array indexing `{word}[…]` on a no-panic hot path"),
                    "use `.get()`/`.get_mut()` and handle `None`, or annotate \
                     `// analyzer: allow(no_panic, <why the index is in bounds>)`",
                );
            }
        }
    }

    // Indexing after `)` or `]` (e.g. `f(x)[0]`) — a separate pass so
    // the ident pass above stays simple.
    if spec.ban_indexing {
        for i in 1..tokens.len() {
            if in_test(&regions, i) {
                continue;
            }
            if tokens[i].is_punct('[')
                && (tokens[i - 1].is_punct(')') || tokens[i - 1].is_punct(']'))
            {
                emit(
                    tokens[i].line,
                    "slice/array indexing on a call/index result on a no-panic hot path".into(),
                    "use `.get()`/`.get_mut()` and handle `None`, or annotate \
                     `// analyzer: allow(no_panic, <why the index is in bounds>)`",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::parse_allows;
    use crate::lexer::lex;

    fn run(src: &str, ban_indexing: bool) -> Vec<Finding> {
        let lexed = lex(src);
        let mut findings = Vec::new();
        let allows = parse_allows("f.rs", &lexed.comments, &mut findings);
        let spec = HotPathSpec {
            path: "f.rs",
            ban_indexing,
        };
        check("f.rs", &lexed, &spec, &allows, &mut findings);
        findings
    }

    #[test]
    fn seeded_unwrap_and_expect_are_caught() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"msg\") }";
        let found = run(bad, false);
        assert_eq!(found.iter().filter(|f| f.denied()).count(), 2);
        assert!(found[0].message.contains("unwrap"));
    }

    #[test]
    fn clean_snippet_passes() {
        let clean = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) }";
        assert!(run(clean, true).is_empty());
    }

    #[test]
    fn panic_macros_are_caught() {
        let bad = "fn f() { if a { panic!(\"x\") } else { unreachable!() } }";
        assert_eq!(run(bad, false).len(), 2);
    }

    #[test]
    fn indexing_only_when_banned() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert!(run(src, false).is_empty());
        assert_eq!(run(src, true).len(), 1);
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u32; 2] { [1, 2] }";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_but_is_recorded() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // analyzer: allow(no_panic, checked by caller)\n    x.unwrap()\n}";
        let found = run(src, false);
        assert_eq!(found.len(), 1);
        assert!(!found[0].denied());
        assert_eq!(found[0].allowed.as_deref(), Some("checked by caller"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { None::<u32>.unwrap(); } }";
        assert!(run(src, true).is_empty());
    }
}
