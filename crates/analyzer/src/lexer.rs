//! A minimal hand-rolled Rust lexer — just enough fidelity for
//! token-stream rules: identifiers, punctuation, and literals with
//! line numbers, comments collected on the side (that is where the
//! `// analyzer: allow(rule, reason)` escape hatch lives), and
//! correct skipping of strings, raw strings, char literals, and
//! lifetimes so none of them can masquerade as code.
//!
//! No external parser dependencies by design: the analyzer has to run
//! in offline CI on every PR, and a lexer is the deepest machinery
//! the rules actually need — every invariant they check is visible in
//! the token stream plus brace depth.

/// What a significant (non-comment, non-whitespace) token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules treat keywords as plain words).
    Ident,
    /// A single punctuation character (`.`, `(`, `[`, `!`, …).
    Punct(char),
    /// String literal (plain, raw, or byte); `text` is the unquoted body.
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// A lifetime such as `'a` (kept distinct so `'a` never looks like
    /// an unterminated char literal).
    Lifetime,
}

/// One significant token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier text, literal body, or the punctuation character.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// `true` when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// `true` when the token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment (line or block) with its source position; block
/// comments keep embedded newlines.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`, splitting it into significant tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    let push = |kind: TokenKind, text: String, line: u32, out: &mut Lexed| {
        out.tokens.push(Token { kind, text, line });
    };

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: bytes[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: bytes[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let (body, consumed, newlines) = scan_string(&bytes[i..]);
                push(TokenKind::Str, body, line, &mut out);
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes[i..]) => {
                let (body, consumed, newlines) = scan_raw_or_byte(&bytes[i..]);
                push(TokenKind::Str, body, line, &mut out);
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime (`'a` not followed by a closing quote) or a
                // char literal (everything else).
                if is_lifetime(&bytes[i..]) {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    push(
                        TokenKind::Lifetime,
                        bytes[i..j].iter().collect(),
                        line,
                        &mut out,
                    );
                    i = j;
                } else {
                    let (body, consumed) = scan_char(&bytes[i..]);
                    push(TokenKind::Char, body, line, &mut out);
                    i += consumed;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                push(
                    TokenKind::Ident,
                    bytes[i..j].iter().collect(),
                    line,
                    &mut out,
                );
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                push(TokenKind::Num, bytes[i..j].iter().collect(), line, &mut out);
                i = j;
            }
            c => {
                push(TokenKind::Punct(c), c.to_string(), line, &mut out);
                i += 1;
            }
        }
    }
    out
}

/// `true` when the slice starts a raw/byte string (`r"`, `r#`, `b"`,
/// `br"`, `br#`, `b'` is NOT one — byte chars fall through to ident
/// handling safely because they start with `b` followed by `'`).
fn starts_raw_or_byte_string(s: &[char]) -> bool {
    match s.first() {
        Some('r') => matches!(s.get(1), Some('"') | Some('#')) && raw_has_quote(&s[1..]),
        Some('b') => match s.get(1) {
            Some('"') => true,
            Some('r') => matches!(s.get(2), Some('"') | Some('#')) && raw_has_quote(&s[2..]),
            _ => false,
        },
        _ => None::<()>.is_some(),
    }
}

/// For `r##...`-style prefixes, checks hashes are followed by `"` (so
/// the ident `r#for` — a raw identifier — is not mistaken for a raw
/// string).
fn raw_has_quote(s: &[char]) -> bool {
    let mut i = 0;
    while s.get(i) == Some(&'#') {
        i += 1;
    }
    s.get(i) == Some(&'"')
}

/// Scans a plain `"..."` string starting at `s[0] == '"'`. Returns
/// (body, chars consumed, newlines inside).
fn scan_string(s: &[char]) -> (String, usize, u32) {
    let mut i = 1;
    let mut body = String::new();
    let mut newlines = 0u32;
    while i < s.len() {
        match s[i] {
            '\\' if i + 1 < s.len() => {
                body.push(s[i]);
                body.push(s[i + 1]);
                i += 2;
            }
            '"' => return (body, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                body.push(c);
                i += 1;
            }
        }
    }
    (body, i, newlines)
}

/// Scans a raw or byte string (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`).
fn scan_raw_or_byte(s: &[char]) -> (String, usize, u32) {
    let mut i = 0;
    if s.get(i) == Some(&'b') {
        i += 1;
    }
    let raw = s.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while s.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    // s[i] is the opening quote.
    i += 1;
    if !raw {
        // Plain byte string: same escape rules as a normal string.
        let (body, consumed, newlines) = scan_string(&s[i - 1..]);
        return (body, i - 1 + consumed, newlines);
    }
    let mut body = String::new();
    let mut newlines = 0u32;
    while i < s.len() {
        if s[i] == '"' {
            let mut j = 0;
            while j < hashes && s.get(i + 1 + j) == Some(&'#') {
                j += 1;
            }
            if j == hashes {
                return (body, i + 1 + hashes, newlines);
            }
        }
        if s[i] == '\n' {
            newlines += 1;
        }
        body.push(s[i]);
        i += 1;
    }
    (body, i, newlines)
}

/// Scans a char literal starting at `s[0] == '\''`. Returns (body,
/// chars consumed).
fn scan_char(s: &[char]) -> (String, usize) {
    let mut i = 1;
    let mut body = String::new();
    while i < s.len() {
        match s[i] {
            '\\' if i + 1 < s.len() => {
                body.push(s[i]);
                body.push(s[i + 1]);
                i += 2;
            }
            '\'' => return (body, i + 1),
            c => {
                body.push(c);
                i += 1;
            }
        }
    }
    (body, i)
}

/// `true` when `s` (starting at `'`) is a lifetime, not a char
/// literal: `'ident` with no closing quote right after.
fn is_lifetime(s: &[char]) -> bool {
    match s.get(1) {
        Some(&c) if c.is_alphabetic() || c == '_' => {
            // `'a'` is a char; `'a` / `'static` are lifetimes.
            let mut j = 2;
            while let Some(&d) = s.get(j) {
                if d.is_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    return d != '\'';
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_lines() {
        let lexed = lex("fn main() {\n    x.y();\n}\n");
        let words: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            words,
            vec!["fn", "main", "(", ")", "{", "x", ".", "y", "(", ")", ";", "}"]
        );
        assert_eq!(lexed.tokens[5].line, 2); // `x`
        assert_eq!(lexed.tokens[11].line, 3); // `}`
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let lexed = lex("a // analyzer: allow(no_panic, reason)\n/* block\nstill */ b");
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("allow(no_panic"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let lexed = lex(r#"let s = "x.unwrap() // not code"; done"#);
        assert!(lexed.comments.is_empty());
        let unwraps = lexed.tokens.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 0);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lexed = lex("let s = r#\"quote \" inside\"#; after");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(s.text, "quote \" inside");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still outer */ b");
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.comments.len(), 1);
    }
}
