//! `analyze` — the CI driver for `modsram_analyzer`.
//!
//! Walks the workspace, runs every rule, prints findings as
//! `file:line [rule] message (fix: hint)`, writes per-rule counts to
//! `results/analyzer_report.json`, and (with `--deny`) exits non-zero
//! if any finding is not covered by a reasoned allow.
//!
//! ```sh
//! cargo run -p modsram_analyzer --release -- --deny
//! cargo run -p modsram_analyzer --release -- --root /path/to/ws --report out.json
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use modsram_analyzer::config::Config;
use modsram_analyzer::{analyze, RULE_IDS};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut report: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage("--root"))),
            "--report" => {
                report = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--report")),
                ))
            }
            other => {
                usage(other);
            }
        }
    }
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "analyze: no Cargo.toml under {} — run from the workspace root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let report_path = report.unwrap_or_else(|| root.join("results/analyzer_report.json"));

    let findings = analyze(&root, &Config::workspace());

    // Per-rule counts: every known rule appears in the report even at
    // zero, so a rule silently going dark is itself visible.
    let mut denied_by_rule: BTreeMap<&str, u32> = RULE_IDS.iter().map(|r| (*r, 0)).collect();
    let mut allowed_by_rule: BTreeMap<&str, u32> = RULE_IDS.iter().map(|r| (*r, 0)).collect();
    for f in &findings {
        let bucket = if f.denied() {
            &mut denied_by_rule
        } else {
            &mut allowed_by_rule
        };
        *bucket.entry(f.rule).or_insert(0) += 1;
    }
    let denied_total: u32 = denied_by_rule.values().sum();
    let allowed_total: u32 = allowed_by_rule.values().sum();

    for f in &findings {
        println!("{}", f.render());
    }
    println!(
        "\nanalyzer: {} finding(s) denied, {} allowed with reason, {} rule(s) active",
        denied_total,
        allowed_total,
        RULE_IDS.len()
    );
    for rule in RULE_IDS {
        println!(
            "  {rule:>15}: {} denied / {} allowed",
            denied_by_rule[rule], allowed_by_rule[rule]
        );
    }

    // Hand-rolled JSON (this crate is dependency-free by design); the
    // shape is consumed by `bin/summary` via the vendored serde_json.
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"modsram-analyzer-report/v1\",\n");
    out.push_str(&format!("  \"denied\": {denied_total},\n"));
    out.push_str(&format!("  \"allowed\": {allowed_total},\n"));
    out.push_str("  \"rules\": {\n");
    for (i, rule) in RULE_IDS.iter().enumerate() {
        out.push_str(&format!(
            "    \"{rule}\": {{ \"denied\": {}, \"allowed\": {} }}{}\n",
            denied_by_rule[rule],
            allowed_by_rule[rule],
            if i + 1 < RULE_IDS.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let allowed = match &f.allowed {
            Some(reason) => format!("\"{}\"", json_escape(reason)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\", \"allowed\": {} }}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            json_escape(&f.hint),
            allowed,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&report_path, out) {
        Ok(()) => println!("\nreport: {}", report_path.display()),
        Err(e) => {
            eprintln!("analyze: cannot write {}: {e}", report_path.display());
            return ExitCode::from(2);
        }
    }

    if deny && denied_total > 0 {
        eprintln!("\nanalyze --deny: failing on {denied_total} unsuppressed finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(arg: &str) -> String {
    eprintln!("analyze: unexpected argument '{arg}'");
    eprintln!("usage: analyze [--deny] [--root <dir>] [--report <file>]");
    std::process::exit(2)
}
