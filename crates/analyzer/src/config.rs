//! The workspace's declared invariants — the one place the hot-path
//! designation, the lock hierarchy, the condvar allow-list, and the
//! data-gating atomics manifest live.
//!
//! # Lock hierarchy
//!
//! Locks are acquired in non-decreasing level order; acquiring a
//! *lower* level while holding a higher one is an inversion finding.
//! The declared order, outermost first:
//!
//! | level | lock (field) | file | what it guards |
//! |-------|--------------|------|----------------|
//! | 0 | `membership` | `core/src/cluster.rs` | epoch-versioned tile snapshot (RwLock) |
//! | 1 | `homes`, `saturation`, `replicas` | `core/src/cluster.rs` | router maps |
//! | 2 | `inner`, `threads` | `core/src/service.rs` | tile queues / join handles |
//! | 2 | `state`, `conns` | `net/src/server.rs` | pending queue, conn writer, handles |
//! | 2 | `cache` | `core/src/dispatch.rs` | context-pool cache |
//! | 3 | `wall_ns`, `cycles` | `core/src/service.rs` | stats reservoirs |
//! | 3 | `first_error`, `parts` | `core/src/dispatch.rs` | worker result stitching |
//! | 4 | `slot` | `core/src/service.rs` | per-ticket completion slot |
//!
//! The `Membership` RwLock outranks every tile-level mutex: a tile
//! queue lock taken first must never try to read the membership. And
//! no known lock may be held across a `Ticket::wait*` park — the only
//! blessed lock-across-wait is a `Condvar` parking on its own guard
//! (receivers listed in [`Config::condvar_receivers`]).

/// One hot-path designation for the `no_panic` rule.
#[derive(Debug, Clone)]
pub struct HotPathSpec {
    /// Workspace-relative path prefix (`/`-separated); a spec matches
    /// every file under it.
    pub path: &'static str,
    /// Whether slice/array indexing expressions are banned too (the
    /// orchestration hot paths, where an index panic means a dead
    /// worker; the limb kernels index fixed-width buffers by design
    /// and are exempt).
    pub ban_indexing: bool,
}

/// One known lock: a named field whose `.lock()` / `.read()` /
/// `.write()` the `lock_order` rule tracks.
#[derive(Debug, Clone)]
pub struct LockSpec {
    /// File suffix the field name is scoped to (field names like
    /// `inner` are only lock-shaped in their own file).
    pub file: &'static str,
    /// Receiver field name at the acquisition site.
    pub field: &'static str,
    /// Hierarchy level, outermost first (see module docs).
    pub level: u8,
}

/// A helper method that returns a lock guard (acquisition hidden
/// behind a call, e.g. `Shared::lock_inner`).
#[derive(Debug, Clone)]
pub struct LockHelperSpec {
    pub file: &'static str,
    pub method: &'static str,
    pub level: u8,
}

/// One entry of the data-gating atomics manifest: an atomic whose
/// loads/stores order *other* data, so `Ordering::Relaxed` on it is a
/// finding unless allowed with a reason.
#[derive(Debug, Clone)]
pub struct AtomicSpec {
    /// Field name of the atomic.
    pub field: &'static str,
    /// Why it gates data visibility (printed with the finding).
    pub why: &'static str,
}

/// Inputs for the drift checks (registry/tests, bench artifacts/CI,
/// error-variant liveness).
#[derive(Debug, Clone)]
pub struct DriftSpec {
    /// File holding `ENGINE_REGISTRY` with its `(name, ctor)` rows.
    pub registry_file: &'static str,
    /// Files that must cover every registered engine: either they
    /// iterate the registry (`all_engines` / `ENGINE_REGISTRY` /
    /// `engine_names`) or they must name each engine literally.
    pub engine_coverage_files: &'static [&'static str],
    /// Directory of bench binaries whose
    /// `write_json_artifact("<name>_sweep", …)` calls define the sweep
    /// artifact set.
    pub bench_bin_dir: &'static str,
    /// CI workflow that must upload each sweep artifact and `--require`
    /// it in the summary job.
    pub ci_file: &'static str,
    /// `bin/summary` source whose `ARTIFACTS` list must know each one.
    pub summary_file: &'static str,
    /// File defining the error enum.
    pub error_file: &'static str,
    /// The enum whose variants must all be constructed and matched.
    pub error_enum: &'static str,
}

/// Everything the rules need, in one declarative value.
#[derive(Debug, Clone, Default)]
pub struct Config {
    pub hot_paths: Vec<HotPathSpec>,
    pub locks: Vec<LockSpec>,
    pub lock_helpers: Vec<LockHelperSpec>,
    /// Condvar fields whose `wait*` legitimately consumes a guard.
    pub condvar_receivers: Vec<&'static str>,
    /// Path prefixes the `relaxed_atomic` rule scans.
    pub atomic_scope: Vec<&'static str>,
    pub data_gating_atomics: Vec<AtomicSpec>,
    pub drift: Option<DriftSpec>,
}

impl Config {
    /// The workspace's checked-in invariant declaration — edit here
    /// (with review) when the architecture legitimately changes.
    pub fn workspace() -> Self {
        Config {
            hot_paths: vec![
                // The engine kernels: a panic here kills a dispatcher
                // worker mid-batch. Limb-indexed buffers are idiomatic
                // in the kernels, so indexing stays legal.
                HotPathSpec {
                    path: "crates/modmul/src/",
                    ban_indexing: false,
                },
                // Dispatch workers and the router: unwinding loses the
                // whole chunk/batch.
                HotPathSpec {
                    path: "crates/core/src/dispatch.rs",
                    ban_indexing: false,
                },
                HotPathSpec {
                    path: "crates/core/src/cluster.rs",
                    ban_indexing: false,
                },
                // The service executor/batcher and the wire
                // reader/completer additionally ban indexing: these
                // paths juggle caller-controlled queue positions, where
                // an off-by-one is reachable from the network.
                HotPathSpec {
                    path: "crates/core/src/service.rs",
                    ban_indexing: true,
                },
                HotPathSpec {
                    path: "crates/net/src/server.rs",
                    ban_indexing: true,
                },
                HotPathSpec {
                    path: "crates/net/src/frame.rs",
                    ban_indexing: false,
                },
            ],
            locks: vec![
                LockSpec {
                    file: "core/src/cluster.rs",
                    field: "membership",
                    level: 0,
                },
                LockSpec {
                    file: "core/src/cluster.rs",
                    field: "homes",
                    level: 1,
                },
                LockSpec {
                    file: "core/src/cluster.rs",
                    field: "saturation",
                    level: 1,
                },
                LockSpec {
                    file: "core/src/cluster.rs",
                    field: "replicas",
                    level: 1,
                },
                LockSpec {
                    file: "core/src/service.rs",
                    field: "inner",
                    level: 2,
                },
                LockSpec {
                    file: "core/src/service.rs",
                    field: "threads",
                    level: 2,
                },
                LockSpec {
                    file: "net/src/server.rs",
                    field: "state",
                    level: 2,
                },
                LockSpec {
                    file: "net/src/server.rs",
                    field: "conns",
                    level: 2,
                },
                LockSpec {
                    file: "core/src/dispatch.rs",
                    field: "cache",
                    level: 2,
                },
                LockSpec {
                    file: "core/src/service.rs",
                    field: "wall_ns",
                    level: 3,
                },
                LockSpec {
                    file: "core/src/service.rs",
                    field: "cycles",
                    level: 3,
                },
                LockSpec {
                    file: "core/src/dispatch.rs",
                    field: "first_error",
                    level: 3,
                },
                LockSpec {
                    file: "core/src/dispatch.rs",
                    field: "parts",
                    level: 3,
                },
                LockSpec {
                    file: "core/src/service.rs",
                    field: "slot",
                    level: 4,
                },
            ],
            lock_helpers: vec![
                LockHelperSpec {
                    file: "core/src/service.rs",
                    method: "lock_inner",
                    level: 2,
                },
                LockHelperSpec {
                    file: "core/src/dispatch.rs",
                    method: "lock_cache",
                    level: 2,
                },
            ],
            condvar_receivers: vec!["ready", "not_empty", "not_full", "wake"],
            atomic_scope: vec!["crates/core/src/", "crates/net/src/", "crates/modmul/src/"],
            data_gating_atomics: vec![
                AtomicSpec {
                    field: "stopped",
                    why: "gates whether queued state may still be trusted; \
                          pairs Release-store on shutdown with Acquire-loads",
                },
                AtomicSpec {
                    field: "draining",
                    why: "orders the drain flag before readers refuse submissions",
                },
                AtomicSpec {
                    field: "abort",
                    why: "publishes the first error before workers abandon chunks",
                },
                AtomicSpec {
                    field: "claimed",
                    why: "exactly-once chunk claim; the winner's writes must not race the loser",
                },
                AtomicSpec {
                    field: "replicas_active",
                    why: "fast-path gate for the replica map read; \
                          publish must not be reorderable before the map insert",
                },
                AtomicSpec {
                    field: "homes_full",
                    why: "gates whether the tracked-home map is consulted at all",
                },
                AtomicSpec {
                    field: "executor_panics",
                    why: "poison decisions read this across threads",
                },
                AtomicSpec {
                    field: "pardoned_panics",
                    why: "probation pardons subtract from the poison decision",
                },
            ],
            drift: Some(DriftSpec {
                registry_file: "crates/modmul/src/engine.rs",
                engine_coverage_files: &[
                    "tests/cross_engine.rs",
                    "crates/modmul/tests/proptests.rs",
                    "src/lib.rs",
                ],
                bench_bin_dir: "crates/bench/src/bin",
                ci_file: ".github/workflows/ci.yml",
                summary_file: "crates/bench/src/bin/summary.rs",
                error_file: "crates/core/src/error.rs",
                error_enum: "CoreError",
            }),
        }
    }
}
