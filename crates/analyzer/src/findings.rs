//! Findings, the `// analyzer: allow(rule, reason)` escape hatch, and
//! the per-rule report the CI step publishes.

use crate::lexer::Comment;

/// One rule violation (or one suppressed would-be violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`no_panic`, `lock_order`, `relaxed_atomic`,
    /// `drift`, `allow_syntax`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
    /// `Some(reason)` when an `analyzer: allow` suppressed it — kept in
    /// the report so suppressions are tracked across PRs, never lost.
    pub allowed: Option<String>,
}

impl Finding {
    /// `true` when the finding still counts against `--deny`.
    pub fn denied(&self) -> bool {
        self.allowed.is_none()
    }

    /// The `file:line [rule] message (fix: hint)` console form.
    pub fn render(&self) -> String {
        let status = match &self.allowed {
            Some(reason) => format!(" [allowed: {reason}]"),
            None => String::new(),
        };
        format!(
            "{}:{} [{}] {}{} (fix: {})",
            self.file, self.line, self.rule, self.message, status, self.hint
        )
    }
}

/// One parsed `analyzer: allow(rule, reason)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line the annotation sits on; it covers that line and the next
    /// (so it can ride at the end of the flagged line or just above it).
    pub line: u32,
    /// Set when a rule consumed it (unused allows are reported, so
    /// stale suppressions cannot accumulate silently).
    pub used: std::cell::Cell<bool>,
}

/// Extracts every well-formed allow annotation from a file's comments,
/// and emits an `allow_syntax` finding for each malformed one (an
/// allow without a reason is exactly the silent suppression the
/// escape hatch exists to prevent).
pub fn parse_allows(file: &str, comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in comments {
        // Only a plain `// analyzer: …` line comment is an annotation.
        // Doc comments (`///`, `//!`) merely *document* the convention
        // and must not parse as one.
        let Some(body) = comment.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("analyzer:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            findings.push(Finding {
                rule: "allow_syntax",
                file: file.to_string(),
                line: comment.line,
                message: format!(
                    "unrecognized analyzer annotation: '{}'",
                    comment.text.trim()
                ),
                hint: "use `// analyzer: allow(<rule>, <reason>)`".into(),
                allowed: None,
            });
            continue;
        };
        let args = args.trim_start();
        let parsed = args
            .strip_prefix('(')
            .and_then(|a| a.split_once(')'))
            .and_then(|(inside, _)| inside.split_once(','))
            .map(|(rule, reason)| (rule.trim().to_string(), reason.trim().to_string()));
        match parsed {
            Some((rule, reason)) if !rule.is_empty() && !reason.is_empty() => {
                allows.push(Allow {
                    rule,
                    reason,
                    line: comment.line,
                    used: std::cell::Cell::new(false),
                });
            }
            _ => findings.push(Finding {
                rule: "allow_syntax",
                file: file.to_string(),
                line: comment.line,
                message: "analyzer allow without a rule id and non-empty reason".into(),
                hint: "write `// analyzer: allow(<rule>, <reason>)` — the reason is required"
                    .into(),
                allowed: None,
            }),
        }
    }
    allows
}

/// Applies the file's allows to a fresh finding: if a matching
/// annotation covers the finding's line (same line or the line just
/// above), the finding is downgraded to `allowed` and the annotation
/// is marked used.
pub fn apply_allows(finding: &mut Finding, allows: &[Allow]) {
    for allow in allows {
        let covers = allow.line == finding.line || allow.line + 1 == finding.line;
        if covers && allow.rule == finding.rule {
            finding.allowed = Some(allow.reason.clone());
            allow.used.set(true);
            return;
        }
    }
}

/// After a file's rules have all run: every allow that suppressed
/// nothing is itself a finding — a stale suppression is a hole in the
/// net that the next regression walks through.
pub fn report_unused_allows(file: &str, allows: &[Allow], findings: &mut Vec<Finding>) {
    for allow in allows {
        if !allow.used.get() {
            findings.push(Finding {
                rule: "allow_syntax",
                file: file.to_string(),
                line: allow.line,
                message: format!(
                    "stale allow({}) suppresses nothing on this or the next line",
                    allow.rule
                ),
                hint: "delete the annotation or move it to the line it covers".into(),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_allow_parses() {
        let lexed = lex("// analyzer: allow(no_panic, cache was just filled two lines up)\nx\n");
        let mut findings = Vec::new();
        let allows = parse_allows("f.rs", &lexed.comments, &mut findings);
        assert!(findings.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no_panic");
        assert!(allows[0].reason.contains("just filled"));
    }

    #[test]
    fn reasonless_allow_is_a_finding() {
        let lexed = lex("// analyzer: allow(no_panic)\n");
        let mut findings = Vec::new();
        let allows = parse_allows("f.rs", &lexed.comments, &mut findings);
        assert!(allows.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "allow_syntax");
    }

    #[test]
    fn allow_covers_same_and_next_line_only() {
        let lexed = lex("// analyzer: allow(no_panic, fine here)\n");
        let mut sink = Vec::new();
        let allows = parse_allows("f.rs", &lexed.comments, &mut sink);
        let mut same = Finding {
            rule: "no_panic",
            file: "f.rs".into(),
            line: 1,
            message: String::new(),
            hint: String::new(),
            allowed: None,
        };
        let mut next = Finding {
            line: 2,
            ..same.clone()
        };
        let mut far = Finding {
            line: 3,
            ..same.clone()
        };
        let mut other_rule = Finding {
            rule: "lock_order",
            line: 1,
            ..same.clone()
        };
        apply_allows(&mut same, &allows);
        apply_allows(&mut next, &allows);
        apply_allows(&mut far, &allows);
        apply_allows(&mut other_rule, &allows);
        assert!(same.allowed.is_some());
        assert!(next.allowed.is_some());
        assert!(far.allowed.is_none());
        assert!(other_rule.allowed.is_none());
    }

    #[test]
    fn unused_allow_is_reported() {
        let lexed = lex("// analyzer: allow(no_panic, nothing here needs it)\n");
        let mut findings = Vec::new();
        let allows = parse_allows("f.rs", &lexed.comments, &mut findings);
        report_unused_allows("f.rs", &allows, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale allow"));
    }
}
