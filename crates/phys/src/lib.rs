//! Technology modelling for the ModSRAM reproduction: a 65 nm
//! device-area model that *recomputes* the paper's Figure 5 area
//! breakdown and §5.3 overhead claim from a component inventory, a
//! critical-path frequency model for the 420 MHz claim, and node-scaling
//! helpers for the cross-node columns of Table 3.
//!
//! The paper's absolute numbers come from full-custom layout in the TSMC
//! 65 nm PDK, which is proprietary; the primitive areas here are
//! calibrated so the *array cell* matches the published layout density
//! (§Fig. 5: a 615 µm × 58 µm array for 64×256 cells ⇒ 2.17 µm²/cell),
//! and everything else is derived from gate inventories. Ratios — the
//! 67/20/11/2 % breakdown and the 32 % overhead — are the reproduced
//! quantities; see EXPERIMENTS.md.

pub mod area;
pub mod device;
pub mod freq;
pub mod scaling;

pub use area::{AreaBreakdown, AreaModel, Component};
pub use device::DeviceAreas;
pub use freq::FreqModel;
pub use scaling::{scale_area_mm2, scale_freq_mhz};
