//! Primitive device areas at 65 nm.

/// Per-device layout areas in µm² at 65 nm.
///
/// The 8T cell is calibrated from the paper's published macro layout
/// (615 µm × 58 µm for a 64×256 array ⇒ ≈ 2.17 µm² per cell, an
/// academic full-custom density); logic primitives use standard-cell
/// scale estimates at the same node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceAreas {
    /// 8T SRAM bit cell (read-decoupled).
    pub cell_8t: f64,
    /// 6T SRAM bit cell.
    pub cell_6t: f64,
    /// Latch-type voltage sense amplifier (Wicht et al. style).
    pub sense_amp: f64,
    /// Per-column precharge devices.
    pub precharge_per_col: f64,
    /// Per-column write driver.
    pub write_driver_per_col: f64,
    /// 2:1 mux (per bit).
    pub mux2: f64,
    /// D flip-flop (per bit).
    pub dff: f64,
    /// Generic NAND-equivalent logic gate.
    pub gate: f64,
    /// Wordline driver (per row, sized for 256 columns).
    pub wl_driver: f64,
}

impl DeviceAreas {
    /// Calibrated 65 nm values (see module docs).
    pub fn tsmc65() -> Self {
        DeviceAreas {
            cell_8t: 2.167,
            cell_6t: 1.30,
            sense_amp: 11.5,
            precharge_per_col: 1.8,
            write_driver_per_col: 4.0,
            mux2: 1.1,
            dff: 6.0,
            gate: 1.4,
            wl_driver: 2.0,
        }
    }
}

impl Default for DeviceAreas {
    fn default() -> Self {
        Self::tsmc65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_matches_published_layout_density() {
        // 615 µm × 58 µm for 64×256 cells.
        let published = 615.0 * 58.0 / (64.0 * 256.0);
        let model = DeviceAreas::tsmc65().cell_8t;
        assert!(
            (model - published).abs() / published < 0.01,
            "model {model} vs layout {published}"
        );
    }

    #[test]
    fn eight_t_is_larger_than_6t() {
        let d = DeviceAreas::tsmc65();
        assert!(d.cell_8t > d.cell_6t);
    }
}
