//! Component-inventory area model (Figure 5, §5.3).

use crate::device::DeviceAreas;

/// The four Figure 5 components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The 8T SRAM array.
    Array,
    /// In-memory circuit: logic-SA (3 SAs/column), precharge, write
    /// drivers, column mux.
    InMemory,
    /// Wordline decoders and drivers (3 RWL + 1 WWL).
    Decoder,
    /// Near-memory circuit: three full-width DFFs, shifters, Booth
    /// encoder, overflow logic, controller.
    NearMemory,
}

impl Component {
    /// All components in Figure 5 order.
    pub fn all() -> [Component; 4] {
        [
            Component::Array,
            Component::InMemory,
            Component::Decoder,
            Component::NearMemory,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Component::Array => "SRAM array",
            Component::InMemory => "in-memory circuit",
            Component::Decoder => "decoder",
            Component::NearMemory => "near-memory circuit",
        }
    }
}

/// Computed areas for one macro configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Component areas in µm², Figure 5 order (array, IMC, decoder, NMC).
    pub component_um2: [f64; 4],
}

impl AreaBreakdown {
    /// Total area, µm².
    pub fn total_um2(&self) -> f64 {
        self.component_um2.iter().sum()
    }

    /// Total area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1.0e6
    }

    /// A component's share of the total (0..1).
    pub fn share(&self, c: Component) -> f64 {
        let idx = Component::all()
            .iter()
            .position(|&x| x == c)
            .expect("known");
        self.component_um2[idx] / self.total_um2()
    }
}

/// The ModSRAM area model: derives Figure 5 from a device inventory.
#[derive(Debug, Clone)]
pub struct AreaModel {
    devices: DeviceAreas,
    rows: usize,
    cols: usize,
}

impl AreaModel {
    /// The paper's macro: 64×256 at 65 nm.
    pub fn modsram_default() -> Self {
        AreaModel {
            devices: DeviceAreas::tsmc65(),
            rows: 64,
            cols: 256,
        }
    }

    /// A custom geometry with explicit device areas.
    pub fn new(devices: DeviceAreas, rows: usize, cols: usize) -> Self {
        AreaModel {
            devices,
            rows,
            cols,
        }
    }

    /// Gate inventory of one wordline decoder (6→64-style): one
    /// NAND-equivalent per row plus predecoding.
    fn decoder_gates(&self) -> f64 {
        self.rows as f64 + 34.0
    }

    /// Full ModSRAM macro breakdown (Figure 5).
    pub fn modsram_breakdown(&self) -> AreaBreakdown {
        let d = &self.devices;
        let rows = self.rows as f64;
        let cols = self.cols as f64;
        // Register window is cols + 1 (the MSB FFs live in the NMC).
        let w = cols + 1.0;

        let array = rows * cols * d.cell_8t;

        // Logic-SA: 3 SAs per read bitline + column mux + precharge +
        // write drivers (§4.2: "SAs constitute most of the area in the
        // in-memory circuits, the MUX as two transistors negligible").
        let imc =
            cols * (3.0 * d.sense_amp + d.mux2 + d.precharge_per_col + d.write_driver_per_col);

        // Decoders: three RWL decoders (three simultaneous rows) + one
        // WWL decoder, each with per-row drivers.
        let one_decoder = self.decoder_gates() * d.gate + rows * d.wl_driver;
        let decoder = 4.0 * one_decoder;

        // NMC (§4.3): three full-width FFs (multiplier, sum, carry),
        // shift write-back muxes on sum and carry, Booth encoder,
        // overflow logic, small FFs, and the controller FSM.
        let dffs = 3.0 * w * d.dff + 8.0 * d.dff; // + overflow/pending FFs
        let shifters = 2.0 * w * d.mux2;
        let booth = 15.0 * d.gate;
        let ov_logic = 40.0 * d.gate;
        let controller = 400.0 * d.gate;
        let nmc = dffs + shifters + booth + ov_logic + controller;

        AreaBreakdown {
            component_um2: [array, imc, decoder, nmc],
        }
    }

    /// A plain (non-PIM) SRAM macro of the same geometry: array, one SA
    /// per column, precharge, write drivers, one RWL + one WWL decoder.
    /// The §5.3 overhead baseline.
    pub fn plain_sram_breakdown(&self) -> AreaBreakdown {
        let d = &self.devices;
        let rows = self.rows as f64;
        let cols = self.cols as f64;
        let array = rows * cols * d.cell_8t;
        let imc = cols * (d.sense_amp + d.precharge_per_col + d.write_driver_per_col);
        let one_decoder = self.decoder_gates() * d.gate + rows * d.wl_driver;
        let decoder = 2.0 * one_decoder;
        AreaBreakdown {
            component_um2: [array, imc, decoder, 0.0],
        }
    }

    /// Fractional area overhead of ModSRAM over the plain macro
    /// (the paper's "only 32 % area overhead").
    pub fn overhead_vs_plain(&self) -> f64 {
        self.modsram_breakdown().total_um2() / self.plain_sram_breakdown().total_um2() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> AreaBreakdown {
        AreaModel::modsram_default().modsram_breakdown()
    }

    #[test]
    fn total_area_matches_paper() {
        // Paper: 0.053 mm².
        let total = breakdown().total_mm2();
        assert!((total - 0.053).abs() < 0.003, "total {total} mm²");
    }

    #[test]
    fn shares_match_figure5() {
        let b = breakdown();
        let checks = [
            (Component::Array, 0.67, 0.03),
            (Component::InMemory, 0.20, 0.03),
            (Component::NearMemory, 0.11, 0.03),
            (Component::Decoder, 0.02, 0.015),
        ];
        for (c, want, tol) in checks {
            let got = b.share(c);
            assert!(
                (got - want).abs() <= tol,
                "{}: got {:.3}, paper {:.2}",
                c.name(),
                got,
                want
            );
        }
    }

    #[test]
    fn overhead_matches_section_5_3() {
        // Paper: "only 32% area overhead".
        let overhead = AreaModel::modsram_default().overhead_vs_plain();
        assert!((overhead - 0.32).abs() < 0.04, "overhead {:.3}", overhead);
    }

    #[test]
    fn array_dominates() {
        let b = breakdown();
        assert!(b.share(Component::Array) > 0.5);
        assert!(b.share(Component::Decoder) < 0.05);
    }

    #[test]
    fn shares_sum_to_one() {
        let b = breakdown();
        let sum: f64 = Component::all().iter().map(|&c| b.share(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
