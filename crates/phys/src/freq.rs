//! Critical-path frequency model (§5.3: 420 MHz at 65 nm).
//!
//! The controller's cycle is bounded by the in-memory read path:
//! decode → wordline rise → bitline discharge (three stacked read
//! ports) → sense → latch. Delays are modelled 65 nm estimates,
//! calibrated to land on the published 420 MHz; the model's value is in
//! exposing *which* stage limits the clock and how the paths compare
//! across design variants (the ablation benches).

/// Stage delays in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqModel {
    /// Decoder and WL-driver delay.
    pub decode_ns: f64,
    /// Wordline RC rise.
    pub wordline_ns: f64,
    /// Read-bitline discharge with multi-level sensing margin.
    pub bitline_ns: f64,
    /// Latch-type SA resolution.
    pub sense_ns: f64,
    /// FF setup + clock margin.
    pub latch_ns: f64,
}

impl FreqModel {
    /// Calibrated 65 nm values for the ModSRAM read path.
    pub fn tsmc65() -> Self {
        FreqModel {
            decode_ns: 0.35,
            wordline_ns: 0.45,
            bitline_ns: 0.90,
            sense_ns: 0.50,
            latch_ns: 0.18,
        }
    }

    /// Total cycle time, ns.
    pub fn cycle_ns(&self) -> f64 {
        self.decode_ns + self.wordline_ns + self.bitline_ns + self.sense_ns + self.latch_ns
    }

    /// Maximum clock frequency, MHz.
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / self.cycle_ns()
    }

    /// The clock an `n`-bit single-cycle carry-propagate adder would
    /// allow (for the CSA-vs-ripple ablation): gate delay × n plus
    /// register margin.
    pub fn ripple_adder_cycle_ns(n_bits: usize) -> f64 {
        0.012 * n_bits as f64 + 0.35
    }
}

impl Default for FreqModel {
    fn default() -> Self {
        Self::tsmc65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmax_matches_paper() {
        let f = FreqModel::tsmc65().fmax_mhz();
        assert!((f - 420.0).abs() < 10.0, "fmax {f} MHz");
    }

    #[test]
    fn bitline_discharge_dominates() {
        let m = FreqModel::tsmc65();
        for d in [m.decode_ns, m.wordline_ns, m.sense_ns, m.latch_ns] {
            assert!(m.bitline_ns >= d);
        }
    }

    #[test]
    fn csa_clock_beats_ripple_adder_at_256_bits() {
        // The co-design argument: R4CSA's cycle has no carry chain, so
        // its clock is ~1.4× faster than a 256-bit ripple-adder datapath.
        let csa = FreqModel::tsmc65().cycle_ns();
        let ripple = FreqModel::ripple_adder_cycle_ns(256);
        assert!(ripple > csa, "ripple {ripple} vs csa {csa}");
    }
}
