//! First-order technology-node scaling, for the fair-comparison
//! discussion around Table 3 (designs span 28–65 nm).

/// Scales an area between nodes (∝ feature size squared).
///
/// # Panics
///
/// Panics if either node is non-positive.
pub fn scale_area_mm2(area_mm2: f64, from_nm: f64, to_nm: f64) -> f64 {
    assert!(from_nm > 0.0 && to_nm > 0.0, "nodes must be positive");
    area_mm2 * (to_nm / from_nm).powi(2)
}

/// Scales a clock frequency between nodes (∝ 1 / feature size,
/// constant-field first order).
///
/// # Panics
///
/// Panics if either node is non-positive.
pub fn scale_freq_mhz(freq_mhz: f64, from_nm: f64, to_nm: f64) -> f64 {
    assert!(from_nm > 0.0 && to_nm > 0.0, "nodes must be positive");
    freq_mhz * (from_nm / to_nm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scaling_is_quadratic() {
        let scaled = scale_area_mm2(0.063, 45.0, 65.0);
        assert!((scaled - 0.063 * (65.0f64 / 45.0).powi(2)).abs() < 1e-12);
        assert!(scaled > 0.063);
    }

    #[test]
    fn roundtrip_is_identity() {
        let a = scale_area_mm2(scale_area_mm2(0.5, 65.0, 28.0), 28.0, 65.0);
        assert!((a - 0.5).abs() < 1e-12);
        let f = scale_freq_mhz(scale_freq_mhz(420.0, 65.0, 28.0), 28.0, 65.0);
        assert!((f - 420.0).abs() < 1e-9);
    }

    #[test]
    fn bpntt_area_at_65nm_exceeds_modsram() {
        // Scaling BP-NTT's 0.063 mm² @ 45 nm up to 65 nm for a fair
        // comparison: ≈ 0.131 mm² vs ModSRAM's 0.053 mm².
        let scaled = scale_area_mm2(0.063, 45.0, 65.0);
        assert!(scaled > 2.0 * 0.053);
    }
}
