//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small, deterministic) subset of the `rand` 0.9
//! API the workspace actually uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`Rng::random`] / [`Rng::random_range`] /
//! [`Rng::random_bool`] over the primitive types.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction real `SmallRng` uses on 64-bit platforms — so streams
//! are high-quality and stable across runs, which is all the workspace's
//! property tests and workload samplers require.

use core::ops::Range;

/// Sampling of a type from a uniform bit stream (the shim's analogue of
/// `rand::distr::StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Legacy (rand 0.8) spelling of [`Rng::random`].
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Legacy (rand 0.8) spelling of [`Rng::random_range`].
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Legacy (rand 0.8) spelling of [`Rng::random_bool`].
    fn gen_bool(&mut self, p: f64) -> bool {
        self.random_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via splitmix64, as in
    /// real `rand`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types uniform-samplable over a half-open range.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` from the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Rejection sampling over the smallest covering mask to
                // keep the draw exactly uniform.
                let mask = span.next_power_of_two().wrapping_sub(1) | span;
                loop {
                    let draw = rng.next_u64() & mask;
                    if draw < span {
                        return ((range.start as $wide).wrapping_add(draw as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl UniformInt for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast, non-cryptographic generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a cryptographic generator, so
    /// `StdRng` shares the xoshiro engine.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (xa, xb, xc): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..17);
            assert!((10..17).contains(&v));
        }
        let hits: Vec<u64> = (0..200).map(|_| rng.random_range(0u64..2)).collect();
        assert!(hits.contains(&0) && hits.contains(&1));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
