//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! what the benchmark binaries use to emit artifacts: the [`Value`]
//! tree, the [`json!`] constructor macro (object literals, nested
//! objects, `null`, arrays, and arbitrary expressions convertible via
//! [`Value::from`]), and [`to_string_pretty`]. Since the autotuner
//! round-trips engine profiles through `results/engine_profile.json`,
//! the shim also carries a small recursive-descent parser
//! ([`from_str`]) and the typed accessors ([`Value::get`],
//! [`Value::as_u64`], …) consumers use to walk a parsed tree. There is
//! still no serde derive integration — callers build and destructure
//! [`Value`] trees by hand.

use std::fmt;

/// A JSON document tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by key (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup by index (`None` on non-arrays).
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (or a
    /// float with an exact non-negative integral value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly enough for
    /// artifact metrics).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, in document order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialisation/deserialisation errors. The shim's writer is total, so
/// serialisation never produces one; the parser ([`from_str`]) reports
/// malformed input with a byte offset.
#[derive(Debug)]
pub struct Error {
    message: String,
    offset: usize,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i128)
            }
        }

        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Int(*v as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Float(v as f64)
            }
        }

        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Float(*v as f64)
            }
        }
    )*};
}

impl_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Value::from)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: whole floats keep a trailing `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                out.push('"');
                escape_into(out, k);
                out.push_str(if pretty { "\": " } else { "\":" });
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Recursive-descent JSON parser over the input bytes. Supports the
/// full [`Value`] surface this shim can serialise: `null`, booleans,
/// integers, floats (including exponents), escaped strings (`\uXXXX`
/// included), arrays, and objects.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected '{lit}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                format!("unexpected byte 0x{other:02x}"),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::parse("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogates (emitted only for exotic input)
                            // degrade to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::parse(
                                format!("bad escape '\\{}'", other as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::parse("invalid UTF-8 inside string", start))?,
                    );
                    self.pos = end;
                }
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(format!("bad float '{text}'"), start))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::parse(format!("bad integer '{text}'"), start))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Reports the first malformed construct with its byte offset. Trailing
/// non-whitespace after the document is an error.
pub fn from_str(input: &str) -> Result<Value> {
    let mut parser = Parser::new(input);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    Ok(value)
}

/// Serialises with two-space indentation.
pub fn to_string_pretty<V: Into<Value> + Clone>(value: &V) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.clone().into(), 0, true);
    Ok(out)
}

/// Serialises compactly.
pub fn to_string<V: Into<Value> + Clone>(value: &V) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.clone().into(), 0, false);
    Ok(out)
}

#[doc(hidden)]
pub fn __collect<T>(fill: impl FnOnce(&mut Vec<T>)) -> Vec<T> {
    let mut items = Vec::new();
    fill(&mut items);
    items
}

/// Builds a [`Value`] from JSON-shaped syntax: `null`, `[..]` arrays,
/// `{"key": value}` objects (values may be nested literals or arbitrary
/// expressions), or any expression with a `Value::from` conversion.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    // The closure bindings are underscore-prefixed so an empty literal
    // (`json!([])`, `json!({})`) expands without an unused-variable lint.
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::__collect(|_array| {
            $crate::json_internal!(@array _array $($tt)*);
        }))
    };
    ({ $($tt:tt)* }) => {
        $crate::Value::Object($crate::__collect(|_object| {
            $crate::json_internal!(@object _object $($tt)*);
        }))
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Recursive munchers behind [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- objects -------------------------------------------------------
    (@object $obj:ident) => {};
    (@object $obj:ident ,) => {};
    (@object $obj:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_internal!(@object $obj $($($rest)*)?);
    };
    (@object $obj:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_internal!(@object $obj $($($rest)*)?);
    };
    (@object $obj:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_internal!(@object $obj $($($rest)*)?);
    };
    (@object $obj:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@objval $obj $key [] $($rest)*);
    };
    // Accumulate value tokens until a top-level comma (commas nested in
    // groups are single token trees and never match here).
    (@objval $obj:ident $key:literal [$($val:tt)*] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::from($($val)*)));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@objval $obj:ident $key:literal [$($val:tt)*]) => {
        $obj.push(($key.to_string(), $crate::Value::from($($val)*)));
    };
    (@objval $obj:ident $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@objval $obj $key [$($val)* $next] $($rest)*);
    };
    // ---- arrays --------------------------------------------------------
    (@array $arr:ident) => {};
    (@array $arr:ident ,) => {};
    (@array $arr:ident null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident $($rest:tt)*) => {
        $crate::json_internal!(@arrval $arr [] $($rest)*);
    };
    (@arrval $arr:ident [$($val:tt)*] , $($rest:tt)*) => {
        $arr.push($crate::Value::from($($val)*));
        $crate::json_internal!(@array $arr $($rest)*);
    };
    (@arrval $arr:ident [$($val:tt)*]) => {
        $arr.push($crate::Value::from($($val)*));
    };
    (@arrval $arr:ident [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@arrval $arr [$($val)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_literals_nest() {
        let inner = vec![json!({ "x": 1u64 }), json!({ "x": 2u64 })];
        let v = json!({
            "name": "modsram",
            "nested": { "pi": 3.5, "ok": true },
            "items": inner.clone(),
            "none": null,
        });
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0].1, Value::String("modsram".into()));
        assert_eq!(
            fields[1].1,
            Value::Object(vec![
                ("pi".into(), Value::Float(3.5)),
                ("ok".into(), Value::Bool(true)),
            ])
        );
        assert_eq!(fields[2].1, Value::from(inner));
        assert_eq!(fields[3].1, Value::Null);
    }

    #[test]
    fn exprs_with_commas_in_groups() {
        let data = [1u64, 2, 3];
        let v = json!({
            "sum": data.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
            "len": data.len(),
        });
        assert_eq!(to_string(&v).unwrap(), r#"{"sum":6,"len":3}"#);
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({ "a": 1u64, "b": [1u64, 2u64] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("\n}"));
    }

    #[test]
    fn float_formatting_keeps_point() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Float(2.25)).unwrap(), "2.25");
    }

    #[test]
    fn string_escaping() {
        let v = json!({ "s": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = json!({
            "name": "engine_profile",
            "version": 1u64,
            "ratio": 2.25,
            "neg": -17i64,
            "whole_float": 3.0,
            "flags": [true, false, null],
            "nested": { "s": "a\"b\\c\nd", "empty_arr": [], "empty_obj": {} },
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v, "round-trip of {text}");
        }
    }

    #[test]
    fn parser_reads_typed_fields() {
        let v = from_str(r#"{"bits": 256, "ns": 12.5, "engine": "barrett", "exp": 1e3}"#).unwrap();
        assert_eq!(v.get("bits").and_then(Value::as_u64), Some(256));
        assert_eq!(v.get("ns").and_then(Value::as_f64), Some(12.5));
        assert_eq!(v.get("engine").and_then(Value::as_str), Some("barrett"));
        assert_eq!(v.get("exp").and_then(Value::as_f64), Some(1000.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            assert!(from_str(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip_in_keys_and_values() {
        // Every control character (the writer must emit \uXXXX or a
        // short escape; the parser must map it back), plus quote and
        // backslash — in values AND in object keys, where the escape
        // path is easy to miss because keys are written separately.
        let gauntlet: String = (0u32..0x20)
            .map(|c| char::from_u32(c).unwrap())
            .chain(['"', '\\', '/', 'é', '\u{7f}'])
            .collect();
        let v = Value::Object(vec![
            (gauntlet.clone(), Value::String(gauntlet.clone())),
            (
                "plain".into(),
                Value::Array(vec![Value::String(gauntlet.clone())]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            // The encoded form must be pure ASCII-printable except for
            // the raw UTF-8 'é' — no naked control bytes on the wire.
            assert!(
                !text.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
                "unescaped control character in {text:?}"
            );
            let back = from_str(&text).unwrap_or_else(|e| panic!("reparse of {text:?}: {e}"));
            assert_eq!(back, v, "round-trip of {text:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let v = from_str("[\"\\u00e9\", \"é\", \"A\"]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("é"));
        assert_eq!(items[1].as_str(), Some("é"));
        assert_eq!(items[2].as_str(), Some("A"));
    }
}
