//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! what the benchmark binaries use to emit artifacts: the [`Value`]
//! tree, the [`json!`] constructor macro (object literals, nested
//! objects, `null`, arrays, and arbitrary expressions convertible via
//! [`Value::from`]), and [`to_string_pretty`]. There is no
//! deserialisation and no serde integration — artifacts are write-only.

use std::fmt;

/// A JSON document tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object in insertion order.
    Object(Vec<(String, Value)>),
}

/// Serialisation errors. The shim's writer is total, so this is never
/// produced; it exists so call sites can keep `.expect(...)`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i128)
            }
        }

        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Int(*v as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Float(v as f64)
            }
        }

        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Float(*v as f64)
            }
        }
    )*};
}

impl_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Value::from)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: whole floats keep a trailing `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                out.push('"');
                escape_into(out, k);
                out.push_str(if pretty { "\": " } else { "\":" });
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialises with two-space indentation.
pub fn to_string_pretty<V: Into<Value> + Clone>(value: &V) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.clone().into(), 0, true);
    Ok(out)
}

/// Serialises compactly.
pub fn to_string<V: Into<Value> + Clone>(value: &V) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.clone().into(), 0, false);
    Ok(out)
}

#[doc(hidden)]
pub fn __collect<T>(fill: impl FnOnce(&mut Vec<T>)) -> Vec<T> {
    let mut items = Vec::new();
    fill(&mut items);
    items
}

/// Builds a [`Value`] from JSON-shaped syntax: `null`, `[..]` arrays,
/// `{"key": value}` objects (values may be nested literals or arbitrary
/// expressions), or any expression with a `Value::from` conversion.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::__collect(|array| {
            $crate::json_internal!(@array array $($tt)*);
        }))
    };
    ({ $($tt:tt)* }) => {
        $crate::Value::Object($crate::__collect(|object| {
            $crate::json_internal!(@object object $($tt)*);
        }))
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Recursive munchers behind [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- objects -------------------------------------------------------
    (@object $obj:ident) => {};
    (@object $obj:ident ,) => {};
    (@object $obj:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_internal!(@object $obj $($($rest)*)?);
    };
    (@object $obj:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_internal!(@object $obj $($($rest)*)?);
    };
    (@object $obj:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_internal!(@object $obj $($($rest)*)?);
    };
    (@object $obj:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@objval $obj $key [] $($rest)*);
    };
    // Accumulate value tokens until a top-level comma (commas nested in
    // groups are single token trees and never match here).
    (@objval $obj:ident $key:literal [$($val:tt)*] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::from($($val)*)));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@objval $obj:ident $key:literal [$($val:tt)*]) => {
        $obj.push(($key.to_string(), $crate::Value::from($($val)*)));
    };
    (@objval $obj:ident $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@objval $obj $key [$($val)* $next] $($rest)*);
    };
    // ---- arrays --------------------------------------------------------
    (@array $arr:ident) => {};
    (@array $arr:ident ,) => {};
    (@array $arr:ident null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident $($rest:tt)*) => {
        $crate::json_internal!(@arrval $arr [] $($rest)*);
    };
    (@arrval $arr:ident [$($val:tt)*] , $($rest:tt)*) => {
        $arr.push($crate::Value::from($($val)*));
        $crate::json_internal!(@array $arr $($rest)*);
    };
    (@arrval $arr:ident [$($val:tt)*]) => {
        $arr.push($crate::Value::from($($val)*));
    };
    (@arrval $arr:ident [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@arrval $arr [$($val)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_literals_nest() {
        let inner = vec![json!({ "x": 1u64 }), json!({ "x": 2u64 })];
        let v = json!({
            "name": "modsram",
            "nested": { "pi": 3.5, "ok": true },
            "items": inner.clone(),
            "none": null,
        });
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0].1, Value::String("modsram".into()));
        assert_eq!(
            fields[1].1,
            Value::Object(vec![
                ("pi".into(), Value::Float(3.5)),
                ("ok".into(), Value::Bool(true)),
            ])
        );
        assert_eq!(fields[2].1, Value::from(inner));
        assert_eq!(fields[3].1, Value::Null);
    }

    #[test]
    fn exprs_with_commas_in_groups() {
        let data = [1u64, 2, 3];
        let v = json!({
            "sum": data.iter().fold(0u64, |a, b| a.wrapping_add(*b)),
            "len": data.len(),
        });
        assert_eq!(to_string(&v).unwrap(), r#"{"sum":6,"len":3}"#);
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({ "a": 1u64, "b": [1u64, 2u64] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("\n}"));
    }

    #[test]
    fn float_formatting_keeps_point() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Float(2.25)).unwrap(), "2.25");
    }

    #[test]
    fn string_escaping() {
        let v = json!({ "s": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"a\"b\\c\nd"}"#);
    }
}
