//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim keeps the
//! bench-definition API (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`black_box`]) source-compatible and implements a small
//! warmup-then-measure timing loop with mean/min reporting. There are no
//! statistical comparisons, plots, or saved baselines — `cargo bench`
//! prints one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark. Intentionally short: these
/// benches exist to rank alternatives, not to publish nanosecond-exact
/// numbers.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// The benchmark harness handle passed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Something usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered `group/bench` suffix.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (recorded but only echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement loop handle inside a benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`: short warmup, then as many
    /// iterations as fit the measuring budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: learn roughly how long one call takes.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET && warm_iters < 1_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let target =
            ((MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(1, 100_000);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = target;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters_done == 0 {
            println!("{id:<60} (no measurement)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters_done as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / ns)
            }
            None => String::new(),
        };
        println!(
            "{id:<60} time: {:>12} /iter   ({} iters){rate}",
            format_ns(ns),
            self.iters_done
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget-based loop
    /// ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measuring budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benches with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.report(id, throughput);
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_id(), None, &mut f);
        self
    }
}

/// Declares a group-runner function calling each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_roundtrip() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
