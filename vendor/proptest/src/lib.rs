//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim
//! implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range/tuple/collection
//! strategies, [`any`], `prop::sample::Index`, the [`proptest!`] macro,
//! and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! no shrinking. Each test runs `cases` deterministic random samples
//! (seeded per test from the case index), and a failing sample panics
//! with the offending assertion, which is enough signal for this
//! workspace's invariant checks.

use std::ops::{Range, RangeFrom, RangeInclusive};

pub use rand::rngs::SmallRng as TestRng;
use rand::Rng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Chains a dependent strategy derived from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive samples: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_via_random!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end < <$t>::MAX {
                    rng.random_range(start..end + 1)
                } else if start > <$t>::MIN {
                    // Shift down one to keep the span representable.
                    rng.random_range(start - 1..end) + 1
                } else {
                    rng.random()
                }
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                loop {
                    let v: $t = rng.random();
                    if v >= self.start {
                        return v;
                    }
                }
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed floating ranges: the missing endpoint has measure zero,
        // so sample the half-open range and occasionally pin the end.
        if rng.random_bool(1.0 / 4096.0) {
            *self.end()
        } else {
            rng.random_range(*self.start()..*self.end())
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Something usable as a vector-length specification.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.random_range(*self.start()..*self.end() + 1)
            }
        }

        /// Strategy for vectors of `element` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `vec(element, len)` — `len` may be a `usize` or a range.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Index sampling (`prop::sample::Index`).
    pub mod sample {
        use super::super::{Arbitrary, TestRng};
        use rand::Rng;

        /// A deferred in-bounds index into a collection of unknown size.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves against a collection of `len` elements.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.random())
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
pub fn __run_cases(cases: u32, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    use rand::SeedableRng;
    // Stable per-test seed: FNV-1a over the test's name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..cases {
        let mut rng = TestRng::seed_from_u64(seed ^ (u64::from(case) << 32));
        body(&mut rng);
    }
}

/// The test-defining macro. Each `fn name(bindings in strategies) body`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // Attributes pass through verbatim: every test in this workspace
        // (and in real proptest usage) spells `#[test]` explicitly.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::__run_cases(config.cases, stringify!($name), |__rng| {
                use $crate::Strategy as _;
                $(let $pat = (&$strat).generate(__rng);)+
                $body
            });
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in 1usize..=4, f in 0.25f64..=1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.25..=1.0).contains(&f));
        }

        #[test]
        fn mapped_strategy_applies(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_and_index(data in prop::collection::vec(any::<u64>(), 1..5), ix in any::<prop::sample::Index>()) {
            prop_assert!(!data.is_empty() && data.len() < 5);
            prop_assert!(ix.index(data.len()) < data.len());
        }

        #[test]
        fn tuples_and_trailing_comma((x, y) in (0u64..10, 0u64..10),) {
            prop_assert!(x < 10 && y < 10);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first = Vec::new();
        crate::__run_cases(5, "det", |rng| first.push((0u64..100).generate(rng)));
        let mut second = Vec::new();
        crate::__run_cases(5, "det", |rng| second.push((0u64..100).generate(rng)));
        assert_eq!(first, second);
    }
}
