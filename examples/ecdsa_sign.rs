//! Digital signatures — the paper's §1 motivating application — built
//! end-to-end on this workspace: SHA-256 digest, ECDSA over secp256k1,
//! and a projection of the signing latency if the field multiplications
//! ran on ModSRAM.
//!
//! ```sh
//! cargo run --release --example ecdsa_sign
//! ```

use modsram::apps::{sha256, SigningKey};
use modsram::bigint::UBig;
use modsram::ecc::curves::secp256k1_fast;
use modsram::ecc::scalar::mul_scalar_wnaf;
use modsram::ecc::FieldCtx;
use modsram::modmul::CycleModel;
use modsram::modmul::R4CsaLutEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let message = b"ModSRAM: in-memory modular multiplication for ECC";
    println!("message digest: {}", hex(&sha256(message)));

    let sk = SigningKey::new(&UBig::from_hex(
        "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
    )?)?;
    let vk = sk.verifying_key();
    println!("public key x  : 0x{}", vk.x.to_hex());

    let sig = sk.sign(message);
    println!("signature r   : 0x{}", sig.r.to_hex());
    println!("signature s   : 0x{}", sig.s.to_hex());
    assert!(vk.verify(message, &sig)?);
    println!("verification  : ok");
    assert!(!vk.verify(b"forged message", &sig)?);
    println!("forgery check : rejected as expected");

    // How much modular multiplication is inside one signature?
    let curve = secp256k1_fast();
    curve.ctx().reset_counts();
    mul_scalar_wnaf(&curve, &curve.generator(), &sig.s); // one k*G-scale op
    let muls_per_scalar_mul = curve.ctx().counts().mul;
    let cycles = R4CsaLutEngine::new().cycles(256);
    println!("\none 256-bit scalar multiplication ≈ {muls_per_scalar_mul} field multiplications;");
    println!(
        "on ModSRAM that is {muls_per_scalar_mul} × {cycles} cycles ≈ {:.2} ms at 420 MHz —",
        muls_per_scalar_mul as f64 * cycles as f64 / 420e6 * 1e3
    );
    println!("the dominant cost of signing, which is exactly what the paper accelerates.");
    Ok(())
}

fn hex(b: &[u8; 32]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}
