//! Robustness study: why the paper uses 8T cells (§4.2) and how much
//! sense-amplifier offset the logic-SA scheme tolerates.
//!
//! Three experiments:
//! 1. 6T cells + read disturb → multi-row activation corrupts the run
//!    (caught by lock-step verification).
//! 2. 8T cells + the same disturb knob → immune.
//! 3. SA offset Monte-Carlo → error rate vs σ.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use modsram::arch::{ModSram, ModSramConfig};
use modsram::bigint::UBig;
use modsram::sram::CellKind;

fn run_once(cell: CellKind, disturb: f64, sigma: f64, seed: u64) -> Result<(), String> {
    let mut config = ModSramConfig {
        n_bits: 32,
        cell,
        ..Default::default()
    };
    config.fault.disturb_per_cell = disturb;
    config.fault.sa_offset_sigma = sigma;
    config.fault.seed = seed;
    let mut dev = ModSram::new(config).map_err(|e| e.to_string())?;
    dev.load_modulus(&UBig::from(0xffff_fffb_u64))
        .map_err(|e| e.to_string())?;
    dev.mod_mul(&UBig::from(0x1234_5678u64), &UBig::from(0x0abc_def0u64))
        .map(|_| ())
        .map_err(|e| e.to_string())
}

fn main() {
    println!("experiment 1: 6T cells, read-disturb probability 2% per activation");
    match run_once(CellKind::SixT, 0.02, 0.0, 7) {
        Ok(()) => println!("  survived (unlikely but possible at low disturb)"),
        Err(e) => println!("  corrupted as expected -> {e}"),
    }

    println!("\nexperiment 2: 8T cells, same disturb knob");
    match run_once(CellKind::EightT, 0.02, 0.0, 7) {
        Ok(()) => {
            println!("  clean run — the decoupled read port is immune (the §4.2 design point)")
        }
        Err(e) => println!("  UNEXPECTED failure: {e}"),
    }

    println!("\nexperiment 3: sense-amplifier offset sweep (20 runs per σ)");
    println!("  σ (level separations) | failed runs");
    for sigma in [0.05f64, 0.10, 0.15, 0.20, 0.30, 0.50] {
        let failures = (0..20)
            .filter(|&seed| run_once(CellKind::EightT, 0.0, sigma, 100 + seed).is_err())
            .count();
        println!("  {sigma:>21.2} | {failures:>2}/20");
    }
    println!("\nsmall offsets sense cleanly; past ~0.2 level separations the 3-level");
    println!("RBL discrimination starts to fail — the margin the SA design must hit.");
}
