//! Drive the ModSRAM datapath with an explicit micro-program instead of
//! the fixed FSM: disassemble the generated R4CSA-LUT schedule, edit it
//! as text, and run it through the [`Executor`].
//!
//! ```sh
//! cargo run --example microcode
//! ```
//!
//! [`Executor`]: modsram::arch::Executor

use modsram::arch::{Executor, ModSram, ModSramConfig, Program};
use modsram::bigint::UBig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 3 toy: 5-bit operands, p = 11000₂, B = 10010₂,
    // A = 10101₂ — three Booth digits, 17 cycles.
    let p = UBig::from(0b11000u64);
    let b = UBig::from(0b10010u64);
    let a = UBig::from(0b10101u64);

    let mut device = ModSram::new(ModSramConfig {
        n_bits: 5,
        ..Default::default()
    })?;
    device.load_modulus(&p)?;
    device.load_multiplicand(&b)?;

    // The compiler emits the paper's exact schedule for k = 3 digits.
    let program = Program::r4csa(3);
    println!("compiled micro-program ({program}):\n");
    for (pc, op) in program.ops().iter().enumerate() {
        println!("  {pc:>2}: {op}");
    }

    // Programs are plain text: round-trip through the assembler.
    let source = program.to_text();
    let reassembled = Program::parse(&source)?;
    assert_eq!(reassembled, program);

    let mut exec = Executor::new();
    let (c, stats) = exec.run(&mut device, &reassembled, &a)?;
    println!("\nA·B mod p = {a} · {b} mod {p} = {c}");
    println!(
        "cycles {} | activations {} | register writes {}",
        stats.cycles, stats.activations, stats.register_writes
    );
    assert_eq!(c, UBig::from(0b10101u64 * 0b10010 % 0b11000));

    // The same executor scales to the paper's 256-bit target; the
    // compiled schedule reproduces Table 3's 767 cycles.
    let p256 = UBig::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")?;
    let mut wide = ModSram::for_modulus(&p256)?;
    wide.load_multiplicand(&UBig::from_hex(
        "0fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654321",
    )?)?;
    let a256 = UBig::from_hex("7234567812345678123456781234567812345678123456781234567812345678")?;
    let (_, wide_stats) = exec.run_mod_mul(&mut wide, &a256)?;
    println!(
        "\n256-bit run: {} cycles on a {}-op program (paper: 767)",
        wide_stats.cycles,
        exec.last_program().map(|p| p.ops().len()).unwrap_or(0)
    );
    Ok(())
}
