//! The ZKP motivation study (paper §1 and Figure 7): measure the
//! operation counts of the two dominant proof components — NTT and MSM —
//! and project what in-SRAM modular multiplication saves.
//!
//! ```sh
//! cargo run --release --example zkp_workload        # 2^12 by default
//! MODSRAM_ZKP_LOGN=15 cargo run --release --example zkp_workload
//! ```

use modsram::zkp::{figure7, ArchModel, MsmPreset};

fn main() {
    let log_n: usize = std::env::var("MODSRAM_ZKP_LOGN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    println!("running NTT and MSM at input size 2^{log_n}, 256-bit operands...\n");

    let arch = ArchModel::conventional64();
    for w in figure7(log_n, MsmPreset::Auto) {
        println!("{} (n = 2^{log_n}):", w.name);
        println!("  modular multiplications : {:>12}  (measured)", w.modmuls);
        println!("  modular additions       : {:>12}  (measured)", w.modadds);
        println!(
            "  memory accesses         : {:>12}  (64-bit datapath model)",
            w.mem_accesses
        );
        println!(
            "  register writes         : {:>12}  (64-bit datapath model)",
            w.reg_writes
        );
        let saved = w.modmuls * arch.reg_writes_per_modmul(w.bits);
        println!(
            "  -> in-SRAM execution avoids {saved} of those register writes\n     ({} per multiplication stay in the array as sum/carry rows)",
            arch.reg_writes_per_modmul(w.bits)
        );
        println!();
    }
    println!("the MSM bars sit orders of magnitude above NTT — the paper's argument");
    println!("for accelerating large-number modular multiplication first.");
}
