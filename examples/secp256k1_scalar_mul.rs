//! Elliptic-curve scalar multiplication with every field multiplication
//! executed on the simulated ModSRAM accelerator — the paper's target
//! application (ECC point operations, §5.2).
//!
//! ```sh
//! cargo run --release --example secp256k1_scalar_mul
//! ```

use modsram::arch::{ModSram, ModSramConfig};
use modsram::bigint::UBig;
use modsram::ecc::curves::{secp256k1_fast, secp256k1_with_engine};
use modsram::ecc::scalar::mul_scalar_wnaf;
use modsram::ecc::FieldCtx;
use modsram::modmul::CycleModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A device without lock-step verification: we check the final point
    // against the fast backend instead.
    let device = ModSram::new(ModSramConfig {
        n_bits: 256,
        verify: false,
        ..Default::default()
    })?;
    let cycles_per_mul = device.cycles(256);
    let curve = secp256k1_with_engine(Box::new(device));

    let k = UBig::from_hex("1e240a1b2c3d4e5f60718293a4b5c6d7e8f9")?;
    println!("computing k*G on secp256k1 with in-SRAM field multiplications...");
    let result = mul_scalar_wnaf(&curve, &curve.generator(), &k);
    let affine = curve.to_affine(&result);
    println!("k*G.x = 0x{}", curve.ctx().to_ubig(&affine.x).to_hex());
    println!("k*G.y = 0x{}", curve.ctx().to_ubig(&affine.y).to_hex());

    // Cross-check against the fast Montgomery backend.
    let fast = secp256k1_fast();
    let expect = fast.to_affine(&mul_scalar_wnaf(&fast, &fast.generator(), &k));
    assert_eq!(
        curve.ctx().to_ubig(&affine.x),
        fast.ctx().to_ubig(&expect.x),
        "accelerator and reference disagree"
    );
    println!("\nmatches the software reference.");

    let counts = curve.ctx().counts();
    println!("\nfield-operation counts (accelerator backend):");
    println!("  modular multiplications : {}", counts.mul);
    println!("  modular additions       : {}", counts.add);
    println!("  inversions              : {}", counts.inv);
    let total_cycles = counts.mul * cycles_per_mul;
    println!(
        "\nprojected ModSRAM latency: {} muls x {} cycles = {} cycles ≈ {:.2} ms @ 420 MHz",
        counts.mul,
        cycles_per_mul,
        total_cycles,
        total_cycles as f64 / 420e6 * 1e3,
    );
    Ok(())
}
