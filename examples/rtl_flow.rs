//! The gate-level flow end to end: build a peripheral block, prove it
//! equivalent to its behavioural model, optimize it, time it, and emit
//! synthesizable Verilog with a self-checking testbench — the
//! open-source stand-in for the paper's Verilog + Design Compiler flow
//! (§5.1).
//!
//! ```sh
//! cargo run --example rtl_flow
//! ```

use modsram::bigint::Radix4Digit;
use modsram::rtl::cells::CellLibrary;
use modsram::rtl::{circuits, equiv, fsm, optimize, timing, verilog};

fn main() {
    let lib = CellLibrary::tsmc65();

    // 1. Elaborate: the radix-4 Booth encoder of Table 1a.
    let enc = circuits::booth_encoder();
    println!("elaborated: {enc}");

    // 2. LEC: exhaustively equivalent to the behavioural recoder.
    equiv::assert_equiv(&enc, |bits| {
        let digit = Radix4Digit::encode(bits[0], bits[1], bits[2]).value();
        [0i8, 1, 2, -2, -1].iter().map(|&d| d == digit).collect()
    });
    println!("LEC       : equivalent to modsram_bigint::Radix4Digit (all 8 vectors)");

    // 3. Optimize: constant folding + CSE + dead-gate sweep.
    let (opt, stats) = optimize(&enc);
    println!(
        "optimize  : {} → {} cells ({:.0}% saved)",
        stats.cells_before,
        stats.cells_after,
        stats.savings() * 100.0
    );
    equiv::assert_equiv(&opt, |bits| enc.evaluate(bits));

    // 4. STA: critical path under the 65 nm cell library.
    let report = timing::analyze(&opt, &lib);
    println!(
        "STA       : {:.0} ps through {} levels → {:.0} MHz (ends at `{}`)",
        report.critical_ps,
        report.levels(),
        report.fmax_mhz,
        report.critical_output
    );
    let path: Vec<&str> = report.path.iter().map(|s| s.cell.as_str()).collect();
    println!("            path: {}", path.join(" → "));

    // 5. Export: structural Verilog + golden-vector testbench.
    let module = verilog::emit_module(&opt);
    let vectors = verilog::golden_vectors(&opt, 12, 0, 0);
    let bench = verilog::emit_testbench(&opt, &vectors);
    println!(
        "export    : {} lines of Verilog, {}-vector bench ({} lines)",
        module.lines().count(),
        vectors.len(),
        bench.lines().count()
    );

    // 6. The same flow covers the *control* path: the controller FSM
    //    walks the paper's schedule in gates.
    let mut ctrl = fsm::controller_fsm();
    let trace = fsm::run_schedule(&mut ctrl, 128);
    println!(
        "\ncontroller: one-hot FSM, {} cells; k = 128 schedule = {} cycles (Table 3: 767)",
        ctrl.comb().cell_count(),
        trace.len()
    );
    let seq_module = verilog::emit_seq_module(&ctrl);
    println!(
        "export    : clocked module with {} always-block register bank ({} lines)",
        ctrl.state_bits(),
        seq_module.lines().count()
    );

    // Run `cargo run -p modsram-bench --bin rtl` to export every block
    // to results/rtl/.
    println!("\n(cargo run -p modsram-bench --bin rtl writes all blocks to results/rtl/)");
}
