//! Quickstart: the prepare/execute engine API, then the same
//! multiplication cycle-accurately inside the simulated ModSRAM macro.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use modsram::arch::ModSram;
use modsram::bigint::UBig;
use modsram::modmul::{ModMulEngine, MontgomeryEngine, R4CsaLutEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The secp256k1 field prime — a 256-bit modulus, the paper's target.
    let p = UBig::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")?;

    let a = UBig::from_hex("7234567812345678123456781234567812345678123456781234567812345678")?;
    let b = UBig::from_hex("0fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654321")?;

    // ---- Phase 1: prepare -------------------------------------------------
    // All per-modulus precomputation happens once. The returned context
    // is immutable and Send + Sync: one context per prime serves any
    // number of threads.
    let ctx = R4CsaLutEngine::new().prepare(&p)?;

    // ---- Phase 2: execute -------------------------------------------------
    let c = ctx.mod_mul(&a, &b)?;
    println!("A           = 0x{}", a.to_hex());
    println!("B           = 0x{}", b.to_hex());
    println!("A*B mod p   = 0x{}", c.to_hex());
    assert_eq!(c, &(&a * &b) % &p, "must match big-integer arithmetic");

    // Streams go through the batch entry point, which hoists the
    // per-call overhead; results are identical.
    let pairs: Vec<(UBig, UBig)> = (1u64..=4)
        .map(|i| (&(&a >> i as usize) + &UBig::from(i), b.clone()))
        .collect();
    let batch = ctx.mod_mul_batch(&pairs)?;
    for ((x, y), got) in pairs.iter().zip(&batch) {
        assert_eq!(got, &(&(x * y) % &p));
    }
    println!("\nbatch of {} through the same context: ok", batch.len());

    // Montgomery amortisation, the reason the API is split: the R²/−p⁻¹
    // constants are computed once, so the context multiplies in two REDC
    // passes instead of the four the per-call engine spells out.
    let mont = MontgomeryEngine::new().prepare(&p)?;
    assert_eq!(mont.mod_mul(&a, &b)?, c);
    println!("montgomery context agrees: ok");

    // ---- The accelerator as a prepared context ---------------------------
    // The cycle-accurate device offers the same two-phase shape; its
    // context holds a modulus-loaded 64x256 8T macro (Table 2 wordlines
    // written once — the paper's §3.2 data-reuse claim).
    let device_ctx = ModSram::for_modulus(&p)?.prepare(&p)?;
    assert_eq!(device_ctx.mod_mul(&a, &b)?, c);
    println!("prepared ModSRAM device agrees: ok");

    // For run statistics, drive the device directly.
    let mut device = ModSram::for_modulus(&p)?;
    let (c2, stats) = device.mod_mul(&a, &b)?;
    assert_eq!(c2, c);
    println!("\nrun statistics:");
    println!("  cycles           : {} (paper Table 3: 767)", stats.cycles);
    println!("  iterations       : {} radix-4 digits", stats.iterations);
    println!("  SRAM activations : {}", stats.activations);
    println!("  SRAM row writes  : {}", stats.row_writes);
    println!("  register writes  : {}", stats.register_writes);
    println!("  energy (modelled): {:.1} pJ", stats.energy_pj);
    println!("  latency @420 MHz : {:.2} us", stats.latency_us(420.0));

    // The LUTs are reused while B and p stay the same (the paper's
    // data-reuse claim): a second multiplication does no precompute.
    let before = device.precompute_total.clone();
    let (_, stats2) = device.mod_mul(&UBig::from(12345u64), &b)?;
    assert_eq!(device.precompute_total, before);
    println!(
        "\nsecond multiply reused the LUTs: {} cycles",
        stats2.cycles
    );
    Ok(())
}
