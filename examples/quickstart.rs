//! Quickstart: multiply two 256-bit numbers inside the simulated
//! ModSRAM macro and inspect the run statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use modsram::arch::ModSram;
use modsram::bigint::UBig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The secp256k1 field prime — a 256-bit modulus, the paper's target.
    let p = UBig::from_hex(
        "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f",
    )?;

    // Build the device (64x256 8T array) and load the modulus; this
    // fills the Table 2 overflow LUT wordlines once.
    let mut device = ModSram::for_modulus(&p)?;

    let a = UBig::from_hex(
        "7234567812345678123456781234567812345678123456781234567812345678",
    )?;
    let b = UBig::from_hex(
        "0fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654321",
    )?;

    // One in-SRAM modular multiplication, cycle-accurately simulated and
    // verified in lock-step against the word-level functional model.
    let (c, stats) = device.mod_mul(&a, &b)?;

    println!("A           = 0x{}", a.to_hex());
    println!("B           = 0x{}", b.to_hex());
    println!("A*B mod p   = 0x{}", c.to_hex());
    assert_eq!(c, &(&a * &b) % &p, "must match big-integer arithmetic");

    println!("\nrun statistics:");
    println!("  cycles           : {} (paper Table 3: 767)", stats.cycles);
    println!("  iterations       : {} radix-4 digits", stats.iterations);
    println!("  SRAM activations : {}", stats.activations);
    println!("  SRAM row writes  : {}", stats.row_writes);
    println!("  register writes  : {}", stats.register_writes);
    println!("  energy (modelled): {:.1} pJ", stats.energy_pj);
    println!(
        "  latency @420 MHz : {:.2} us",
        stats.latency_us(420.0)
    );

    // The LUTs are reused while B and p stay the same (the paper's
    // data-reuse claim): a second multiplication does no precompute.
    let before = device.precompute_total.clone();
    let (_, stats2) = device.mod_mul(&UBig::from(12345u64), &b)?;
    assert_eq!(device.precompute_total, before);
    println!("\nsecond multiply reused the LUTs: {} cycles", stats2.cycles);
    Ok(())
}
