//! Quickstart: stream multiplications through a single-tile
//! `ModSramService`, scale the same traffic out to a multi-tile
//! `ServiceCluster`, serve it to remote callers over the TCP wire
//! protocol, then drop down to the prepare/execute engine API and the
//! cycle-accurate ModSRAM macro underneath it all.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use modsram::arch::ModSram;
use modsram::bigint::UBig;
use modsram::modmul::{CarryFreeEngine, ModMulEngine, MontgomeryEngine, R4CsaLutEngine};
use modsram::net::{
    NetBackend, TenantLimits, TenantRegistry, WireClient, WireConfig, WireResponse, WireServer,
};
use modsram::{
    AutoTuner, ClusterConfig, ModSramService, MulJob, ServiceCluster, ServiceConfig, TunePolicy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The secp256k1 field prime — a 256-bit modulus, the paper's target.
    let p = UBig::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")?;

    let a = UBig::from_hex("7234567812345678123456781234567812345678123456781234567812345678")?;
    let b = UBig::from_hex("0fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654321")?;

    // ---- The streaming service: the serving entry point ------------------
    // A ModSramService owns a bounded submission queue, a coalescing
    // batcher (knobs: `max_batch` jobs per batch, flushed at latest
    // every `flush_interval`), and the dispatch workers that execute
    // each batch. Producers hold cloneable handles and never stage
    // batches themselves.
    let service = ModSramService::for_engine_name(
        "r4csa-lut", // the paper's engine; any registry engine works
        ServiceConfig {
            workers: 4,
            queue_capacity: 1024,
            max_batch: 256,
            flush_interval: Duration::from_micros(100),
            ..Default::default()
        },
    )?;

    // Four producer threads stream jobs and redeem tickets.
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let handle = service.handle();
            let p = p.clone();
            let b = b.clone();
            scope.spawn(move || {
                for i in 0..50u64 {
                    let a = UBig::from(t * 1_000_003 + i * 17 + 1);
                    // Blocking submit: waits when the queue is full
                    // (use try_submit to shed load instead).
                    let ticket = handle
                        .submit(MulJob::new(a.clone(), b.clone(), p.clone()))
                        .expect("service running");
                    let c = ticket.wait().expect("valid modulus");
                    assert_eq!(c, &(&a * &b) % &p);
                }
            });
        }
    });

    // Graceful shutdown drains every in-flight ticket and returns the
    // final statistics — including latency percentiles in both
    // wall-clock time and modelled device cycles.
    let stats = service.shutdown();
    println!("streaming service:");
    println!("  jobs completed   : {}", stats.completed);
    println!(
        "  coalesced        : {:.1} jobs/batch over {} batches",
        stats.coalesce_mean, stats.batches
    );
    println!(
        "  latency p50/p99  : {:.1}/{:.1} us wall, {}/{} modelled cycles",
        stats.wall_p50_ns as f64 / 1000.0,
        stats.wall_p99_ns as f64 / 1000.0,
        stats.modelled_p50_cycles,
        stats.modelled_p99_cycles
    );

    // ---- Scale-out: the same traffic across a cluster of tiles -----------
    // A ServiceCluster owns N tiles and routes each job to its
    // modulus's rendezvous home tile, so per-modulus coalescing (and
    // the paper's LUT reuse) survives the sharding. On backpressure
    // jobs spill to the least-loaded tile (SpillPolicy::Spill), and a
    // tile whose executor keeps panicking is routed around.
    let cluster = ServiceCluster::for_engine_name("r4csa-lut", 2, ClusterConfig::default())?;
    let moduli = [p.clone(), UBig::from(0xffff_fffb_u64)];
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let handle = cluster.handle();
            let moduli = &moduli;
            scope.spawn(move || {
                for i in 0..25u64 {
                    let p = &moduli[((t + i) % 2) as usize];
                    let a = UBig::from(t * 999_979 + i * 13 + 1);
                    let b = UBig::from(i / 8 + 2); // multiplicand reuse runs
                    let ticket = handle
                        .submit(MulJob::new(a.clone(), b.clone(), p.clone()))
                        .expect("cluster running");
                    assert_eq!(ticket.wait().expect("valid modulus"), &(&a * &b) % p);
                }
            });
        }
    });
    let cstats = cluster.shutdown();
    println!("\nservice cluster (2 tiles):");
    println!("  jobs completed   : {}", cstats.completed);
    println!(
        "  affinity         : {:.1}% home-tile hits, {} spilled",
        cstats.affinity_hit_rate() * 100.0,
        cstats.spilled
    );
    for (i, tile) in cstats.tiles.iter().enumerate() {
        println!(
            "  tile {i}           : {} routed, {} spilled in, {} modelled cycles",
            tile.routed, tile.spilled_in, tile.service.modelled_cycles_total
        );
    }

    // ---- Elasticity: change tile membership at runtime -------------------
    // Membership is an epoch-versioned snapshot, so tiles can be
    // drained for maintenance (admissions pause, the queue delivers
    // every accepted ticket, and ONLY the drained tile's moduli
    // re-home — each re-homed modulus pays one cold LUT fill on its
    // new tile, everyone else's warmth is untouched), re-admitted by
    // health probation, and added live for capacity.
    let cluster = ServiceCluster::for_engine_name(
        "r4csa-lut",
        3,
        ClusterConfig {
            probation_after: 2, // consecutive clean probes to re-admit
            ..Default::default()
        },
    )?;
    // Route once so the router tracks the modulus (re-home accounting
    // covers the moduli the cluster has actually seen).
    cluster
        .submit(MulJob::new(a.clone(), b.clone(), p.clone()))?
        .wait()
        .expect("valid modulus");
    let victim = cluster.home_tile(&p).expect("a routable tile homes p");
    let report = cluster.drain_tile(victim)?; // live: safe under traffic
    println!("\nelasticity:");
    println!(
        "  drained tile {victim}   : epoch {}, {} moduli re-homed, {} tiles active",
        report.epoch, report.rehomed_moduli, report.active_tiles
    );
    assert_ne!(cluster.home_tile(&p), Some(victim), "modulus failed over");
    let ticket = cluster.submit(MulJob::new(a.clone(), b.clone(), p.clone()))?;
    ticket
        .wait()
        .expect("survivors serve the drained tile's moduli");
    // Probation: the drained tile passes `probation_after` consecutive
    // health probes and re-enters the routable set; its moduli return
    // (and pay one LUT refill coming home).
    cluster.probe_tiles();
    let probe = cluster.probe_tiles();
    println!("  re-admitted      : tiles {:?}", probe.readmitted);
    assert_eq!(cluster.home_tile(&p), Some(victim), "modulus came home");
    // Growth: a brand-new tile joins at the next index and wins only
    // the moduli it out-scores everywhere.
    let extra = ModSramService::for_engine_name("r4csa-lut", ServiceConfig::default())?;
    let added = cluster.add_tile(extra)?;
    println!(
        "  added tile {}     : epoch {}, {} moduli re-homed onto it",
        added.tile, added.epoch, added.rehomed_moduli
    );
    // ---- Weighted routing: heterogeneous tiles ---------------------------
    // Tiles need not be equal. A capacity weight inside the membership
    // snapshot gives a bigger macro a proportionally larger modulus
    // share: doubling tile 0's weight is one atomic epoch publish plus
    // the same minimal re-home pass a drain runs — only moduli pulled
    // ONTO tile 0 move (each pays one LUT fill there), and a weight-1
    // republish moves nothing. Under sustained single-modulus overload
    // the cluster also replicates: a modulus whose home keeps
    // saturating is promoted (at the probe_tiles cadence) to its top-k
    // rendezvous tiles — each replica pays one LUT refill for it — and
    // demoted again once the pressure subsides.
    let reweigh = cluster.set_tile_weight(0, 2)?;
    println!(
        "  tile 0 weight 2  : epoch {}, {} moduli pulled onto it",
        reweigh.epoch, reweigh.rehomed_moduli
    );
    let wstats = cluster.stats();
    println!(
        "  tile weights     : {:?} ({} moduli replicated)",
        wstats.tiles.iter().map(|t| t.weight).collect::<Vec<_>>(),
        wstats.replicated_moduli
    );
    cluster.shutdown();

    // ---- Serving over the wire: the TCP front-end ------------------------
    // A WireServer fronts the same tile/cluster handles with a
    // length-prefixed binary protocol. Tenants authenticate with an
    // API key, admission control answers backpressure with typed
    // retry-after frames instead of stalling the socket, and
    // responses stream back in completion order under
    // client-assigned request ids — the blocking WireClient files
    // out-of-order arrivals locally, so callers redeem ids in any
    // order they like.
    let cluster = ServiceCluster::for_engine_name("r4csa-lut", 2, ClusterConfig::default())?;
    let registry = Arc::new(TenantRegistry::new());
    registry.register(
        "acme",
        0xACE,
        TenantLimits {
            max_inflight: 64,
            ..Default::default()
        },
    );
    let server = WireServer::bind(
        "127.0.0.1:0",
        NetBackend::Cluster(cluster.handle()),
        registry,
        WireConfig::default(),
    )?;
    let mut client = WireClient::connect(server.local_addr(), "acme", 0xACE)?;
    let jobs: Vec<MulJob> = (1..=8u64)
        .map(|i| MulJob::new(UBig::from(i * 104_729), b.clone(), p.clone()))
        .collect();
    let ids: Vec<u64> = client.submit_batch(jobs.clone())?.collect();
    // Redeem in reverse submission order — arrival order is the
    // server's business, not the caller's.
    for (&id, job) in ids.iter().zip(&jobs).rev() {
        match client.wait(id)? {
            WireResponse::Done(product) => assert_eq!(product, &(&job.a * &job.b) % &job.modulus),
            other => panic!("admission refused a tiny batch: {other:?}"),
        }
    }
    let delivered = client.close()?;
    let net = server.shutdown();
    cluster.shutdown();
    println!("\nwire front-end:");
    println!(
        "  delivered        : {} responses over TCP ({} said by the server's Bye)",
        net.completed,
        delivered.expect("clean goodbye"),
    );
    println!(
        "  frames in/out    : {}/{} ({}/{} bytes)",
        net.frames_in, net.frames_out, net.bytes_in, net.bytes_out
    );
    println!(
        "  wire p50/p99     : {:.1}/{:.1} us request-to-response",
        net.wire_p50_ns as f64 / 1000.0,
        net.wire_p99_ns as f64 / 1000.0
    );

    // ---- Self-tuning engine selection -------------------------------------
    // Instead of naming an engine, let the service measure: under
    // TunePolicy::Race the first prepare of each modulus races every
    // parity-legal engine on a deterministic, oracle-checked
    // calibration batch and pins the winner (montgomery is skipped
    // for even moduli automatically). The measured table is an
    // EngineProfile keyed by (bit_width, parity).
    let service = ModSramService::auto(TunePolicy::race(), ServiceConfig::default());
    let even = UBig::from(1_000_006u64);
    for p in [&p, &even] {
        let ticket = service.submit(MulJob::new(a.clone(), b.clone(), p.clone()))?;
        assert_eq!(ticket.wait().expect("valid modulus"), &(&a * &b) % p);
    }
    let stats = service.shutdown();
    let tuning = stats.autotune.expect("auto service reports tuning stats");
    println!("\nself-tuning service:");
    println!(
        "  policy {}: {} moduli tuned in {} races ({:.2} ms calibration)",
        tuning.policy,
        tuning.tuned_moduli,
        tuning.races_run,
        tuning.calibration_ns as f64 / 1e6
    );
    for (engine, wins) in &tuning.engine_wins {
        println!("  winner           : {engine} x{wins}");
    }

    // Day two: warm a Profile pool from the table the races filled in
    // — the same winners, no races paid. (bin/autotune persists such
    // a table to results/engine_profile.json; EngineProfile::load
    // warm-starts from disk.)
    let race_tuner = AutoTuner::new(TunePolicy::race());
    race_tuner.prepare(&p)?;
    let chosen = race_tuner
        .chosen_engine(&p)
        .expect("race committed a choice");
    let warmed = AutoTuner::with_profile(TunePolicy::Profile, race_tuner.profile_snapshot());
    warmed.prepare(&p)?;
    assert_eq!(warmed.chosen_engine(&p).expect("table hit"), chosen);
    assert_eq!(warmed.stats().races_run, 0, "profile pools never race");
    println!("  profile warm-start re-picks {chosen} without racing: ok");

    // ---- The engine layer: prepare once, execute hot -----------------------
    let ctx = R4CsaLutEngine::new().prepare(&p)?;
    let c = ctx.mod_mul(&a, &b)?;
    println!("\nA*B mod p   = 0x{}", c.to_hex());
    assert_eq!(c, &(&a * &b) % &p, "must match big-integer arithmetic");

    // Montgomery amortisation, the reason the API is split: the R²/−p⁻¹
    // constants are computed once, so the context multiplies in two REDC
    // passes instead of the four the per-call engine spells out.
    let mont = MontgomeryEngine::new().prepare(&p)?;
    assert_eq!(mont.mod_mul(&a, &b)?, c);
    println!("montgomery context agrees: ok");

    // The carry-free engine accumulates in carry-save form and reduces
    // by inspecting overflow bits, so carries propagate only in the
    // final normalize — and unlike Montgomery it accepts any modulus
    // parity, covering the even moduli REDC must refuse.
    let cf = CarryFreeEngine::new().prepare(&p)?;
    assert_eq!(cf.mod_mul(&a, &b)?, c);
    let even = UBig::from(1_000_000u64);
    let cf_even = CarryFreeEngine::new().prepare(&even)?;
    assert_eq!(cf_even.mod_mul(&a, &b)?, &(&a * &b) % &even);
    println!("carryfree context agrees (odd and even moduli): ok");

    // When does laning win? mod_mul_batch transposes batches of
    // LANE_MIN_PAIRS (4) or more pairs into structure-of-arrays lanes,
    // advancing eight multiplications per limb pass; shorter batches
    // run scalar because the transpose doesn't amortise. The win is
    // several-fold on the bit/digit-serial engines (r4csa-lut,
    // carryfree) and >= 1.3x on montgomery/barrett at 256 bits —
    // `cargo run --release --bin hotpath` sweeps it on your host.
    let pairs: Vec<(UBig, UBig)> = (1..=16u64)
        .map(|i| (UBig::from(i * 7919), b.clone()))
        .collect();
    let batch = mont.mod_mul_batch(&pairs)?; // 16 pairs: the laned path
    for ((x, y), got) in pairs.iter().zip(&batch) {
        assert_eq!(got, &(&(x * y) % &p));
    }
    println!("laned batch of {} agrees: ok", pairs.len());

    // ---- The accelerator as a prepared context ---------------------------
    // The cycle-accurate device offers the same two-phase shape; its
    // context holds a modulus-loaded 64x256 8T macro (Table 2 wordlines
    // written once — the paper's §3.2 data-reuse claim).
    let device_ctx = ModSram::for_modulus(&p)?.prepare(&p)?;
    assert_eq!(device_ctx.mod_mul(&a, &b)?, c);
    println!("prepared ModSRAM device agrees: ok");

    // For run statistics, drive the device directly.
    let mut device = ModSram::for_modulus(&p)?;
    let (c2, run) = device.mod_mul(&a, &b)?;
    assert_eq!(c2, c);
    println!("\ndevice run statistics:");
    println!("  cycles           : {} (paper Table 3: 767)", run.cycles);
    println!("  iterations       : {} radix-4 digits", run.iterations);
    println!("  SRAM activations : {}", run.activations);
    println!("  energy (modelled): {:.1} pJ", run.energy_pj);
    println!("  latency @420 MHz : {:.2} us", run.latency_us(420.0));

    // The LUTs are reused while B and p stay the same (the paper's
    // data-reuse claim): a second multiplication does no precompute.
    let before = device.precompute_total.clone();
    let (_, run2) = device.mod_mul(&UBig::from(12345u64), &b)?;
    assert_eq!(device.precompute_total, before);
    println!("\nsecond multiply reused the LUTs: {} cycles", run2.cycles);

    // ---- Keeping the stack honest ----------------------------------------
    // Everything above leans on concurrency invariants (no-panic hot
    // paths, a declared lock hierarchy, Acquire/Release on data-gating
    // atomics) that `cargo test` cannot see. The in-repo analyzer
    // checks them statically — CI runs it as a tier-1 step, and any
    // intentional exception must carry a reasoned
    // `// analyzer: allow(rule, reason)` annotation:
    //
    //     cargo run -p modsram_analyzer --release -- --deny
    println!(
        "\n(invariants are machine-checked: cargo run -p modsram_analyzer --release -- --deny)"
    );
    Ok(())
}
