//! Figure 3 reproduction: the paper's 5-bit worked example
//! (A = 10101₂ = 21, B = 10010₂ = 18, p = 11000₂ = 24) traced cycle by
//! cycle through the simulated array.
//!
//! ```sh
//! cargo run --example dataflow_trace
//! ```

use modsram::arch::{ModSram, ModSramConfig};
use modsram::bigint::UBig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = ModSram::new(ModSramConfig {
        n_bits: 5,
        trace: true,
        ..Default::default()
    })?;
    device.load_modulus(&UBig::from(0b11000u64))?;

    println!("Figure 3: R4CSA-LUT dataflow, A=10101 B=10010 p=11000\n");
    let (c, stats) = device.mod_mul(&UBig::from(0b10101u64), &UBig::from(0b10010u64))?;

    for snap in &device.last_trace {
        println!("{}", snap.render(6));
    }
    println!("\nresult  : {c} (= 21*18 mod 24 = 18)");
    println!(
        "cycles  : {} (= 6*3 - 1 for three radix-4 digits)",
        stats.cycles
    );
    println!("max ov  : {}", stats.max_ov_index);
    assert_eq!(c, UBig::from(18u64));
    Ok(())
}
